//! The 16 real-world overload cases (paper Table 2).
//!
//! Each case builds a `(ServerConfig, WorkloadSpec)` pair twice — once
//! with the noisy/culprit classes ("overload") and once without
//! ("baseline") — so every run can be normalized against the same
//! application's unperturbed performance, exactly as the paper normalizes
//! its figures. The timing compresses the paper's multi-minute
//! reproductions into ~12 s of virtual time: noisy requests are injected
//! after warmup and recur for the rest of the run.

use atropos_app::apps::kvstore::{KvStore, KvStoreConfig};
use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
use atropos_app::apps::search::{SearchApp, SearchConfig};
use atropos_app::apps::webserver::{WebServer, WebServerConfig};
use atropos_app::ids::{ClassId, ClientId, PoolId};
use atropos_app::server::ServerConfig;
use atropos_app::workload::WorkloadSpec;
use atropos_sim::SimTime;

/// Parameters shared by all case builders.
#[derive(Debug, Clone)]
pub struct CaseParams {
    /// RNG seed.
    pub seed: u64,
    /// Scales the open-loop arrival rate (1.0 = the case's default load).
    pub load_scale: f64,
    /// Virtual time at which noisy classes start appearing.
    pub disturb_at: SimTime,
    /// Run length (injections repeat until here).
    pub duration: SimTime,
}

impl Default for CaseParams {
    fn default() -> Self {
        Self {
            seed: 42,
            load_scale: 1.0,
            disturb_at: SimTime::from_millis(2_500),
            duration: SimTime::from_secs(12),
        }
    }
}

/// Hints controllers need about a built case.
#[derive(Debug, Clone, Default)]
pub struct CaseHints {
    /// Noisy classes without a latency SLO (exempt from Protego's shed
    /// set; see `baselines::protego`).
    pub slo_exempt: Vec<ClassId>,
    /// Quota-capable pools (for pBox and PARTIES).
    pub pools: Vec<PoolId>,
    /// Worker count (for DARC's reservation sizing).
    pub workers: usize,
}

/// A built case: server + workload + controller hints.
pub struct BuiltCase {
    /// Server configuration (resources + traced groups).
    pub server: ServerConfig,
    /// The workload (with or without the noisy classes).
    pub workload: WorkloadSpec,
    /// Controller hints.
    pub hints: CaseHints,
}

type Builder = fn(&CaseParams, bool) -> BuiltCase;

/// Static description + builder for one case.
#[derive(Clone)]
pub struct CaseDef {
    /// Case id, `c1`..`c16`.
    pub id: &'static str,
    /// Application (Table 2 column 2).
    pub app: &'static str,
    /// Resource type (Table 2 column 3).
    pub resource_type: &'static str,
    /// Resource detail (Table 2 column 4).
    pub resource: &'static str,
    /// Overload triggering condition (Table 2 column 5).
    pub trigger: &'static str,
    /// Default open-loop load in qps.
    pub base_qps: f64,
    builder: Builder,
}

impl std::fmt::Debug for CaseDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaseDef").field("id", &self.id).finish()
    }
}

impl CaseDef {
    /// Builds the case; `overload = false` omits the noisy classes.
    pub fn build(&self, params: &CaseParams, overload: bool) -> BuiltCase {
        (self.builder)(params, overload)
    }
}

/// Repeats an injection of `class` every `every` from `params.disturb_at`
/// until the end of the run.
fn inject_repeating(
    mut wl: WorkloadSpec,
    params: &CaseParams,
    class: ClassId,
    every: SimTime,
) -> WorkloadSpec {
    let mut at = params.disturb_at;
    while at < params.duration {
        wl = wl.inject(at, class);
        at += every;
    }
    wl
}

fn sec_ms(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

// ---- MySQL-like cases (minidb) ----

fn minidb_base(seed: u64) -> MiniDb {
    MiniDb::new(MiniDbConfig {
        seed,
        ..Default::default()
    })
}

fn minidb_hints(db: &MiniDb, exempt: Vec<ClassId>) -> CaseHints {
    CaseHints {
        slo_exempt: exempt,
        pools: vec![db.pool],
        workers: db.cfg.workers,
    }
}

/// c1 — backup behind a long scan convoys all tables.
fn c1(params: &CaseParams, overload: bool) -> BuiltCase {
    let db = minidb_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            db.point_select(0.65),
            db.row_update(0.35),
            db.table_scan(0.0, 3_000_000_000).with_client(ClientId(100)),
            db.backup(40_000_000).with_client(ClientId(101)),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        wl = inject_repeating(wl, params, ClassId(2), sec_ms(5_000));
        let mut at = params.disturb_at + sec_ms(400);
        while at < params.duration {
            wl = wl.inject(at, ClassId(3));
            at += sec_ms(5_000);
        }
    }
    BuiltCase {
        server: db.server_config(),
        hints: minidb_hints(&db, vec![ClassId(2), ClassId(3)]),
        workload: wl,
    }
}

/// c2 — slow queries monopolize the InnoDB concurrency tickets.
fn c2(params: &CaseParams, overload: bool) -> BuiltCase {
    let db = minidb_base(params.seed);
    // ~2.4 slow queries/s, each pinning a concurrency ticket for ~2 s:
    // enough to keep all four tickets occupied on average, "exceeding the
    // concurrency limit" as the case report describes.
    let slow_weight = if overload { 0.0003 } else { 0.0 };
    let wl = WorkloadSpec::new(
        vec![
            db.point_select(0.65),
            db.row_update(0.35),
            db.slow_query(slow_weight, 2_000_000_000)
                .with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    BuiltCase {
        server: db.server_config(),
        hints: minidb_hints(&db, vec![ClassId(2)]),
        workload: wl,
    }
}

/// The c2 shape, injection-driven: slow queries arrive on a schedule
/// instead of by sampling weight, so a controller that cancels them
/// visibly interrupts the ticket convoy. Used by the chaos differential
/// (the ticket-queue family), not part of the 16-case suite.
fn c2_ticket_queue_chaos(params: &CaseParams, overload: bool) -> BuiltCase {
    let db = minidb_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            db.point_select(0.65),
            db.row_update(0.35),
            db.slow_query(0.0, 2_000_000_000).with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        // One slow query every 400 ms, each pinning a ticket for ~2 s:
        // ~5 concurrent hogs in steady state, more than the pool's
        // tickets, so admission starves until one is canceled.
        wl = inject_repeating(wl, params, ClassId(2), sec_ms(400));
    }
    BuiltCase {
        server: db.server_config(),
        hints: minidb_hints(&db, vec![ClassId(2)]),
        workload: wl,
    }
}

/// The [`CaseDef`] for the injection-driven ticket-queue chaos case.
/// Deliberately not in [`all_cases`]: the golden 16-case suite is pinned.
pub fn chaos_ticket_queue_case() -> CaseDef {
    CaseDef {
        id: "c2tq",
        app: "MySQL",
        resource_type: "Thread pool",
        resource: "InnoDB queue",
        trigger: "Scheduled slow queries drain the InnoDB ticket queue dry.",
        base_qps: 8_000.0,
        builder: c2_ticket_queue_chaos,
    }
}

/// c3 — background purge blocks the undo log.
fn c3(params: &CaseParams, overload: bool) -> BuiltCase {
    let db = minidb_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            db.point_select(0.65),
            db.row_update(0.35),
            db.purge(500_000_000),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        wl = wl.recurring(ClassId(2), params.disturb_at, sec_ms(1_500));
    }
    BuiltCase {
        server: db.server_config(),
        hints: minidb_hints(&db, vec![ClassId(2)]),
        workload: wl,
    }
}

/// c4 — SELECT FOR UPDATE blocks other clients' writes.
fn c4(params: &CaseParams, overload: bool) -> BuiltCase {
    let db = minidb_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            db.point_select(0.65),
            db.row_update(0.35),
            db.select_for_update(3_000_000_000)
                .with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        wl = inject_repeating(wl, params, ClassId(2), sec_ms(4_500));
    }
    BuiltCase {
        server: db.server_config(),
        hints: minidb_hints(&db, vec![ClassId(2)]),
        workload: wl,
    }
}

/// c5 — dump queries thrash the buffer pool.
fn c5(params: &CaseParams, overload: bool) -> BuiltCase {
    let db = minidb_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            db.point_select(0.65),
            db.row_update(0.35),
            db.dump(0.0, 120_000).with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        wl = inject_repeating(wl, params, ClassId(2), sec_ms(3_000));
    }
    BuiltCase {
        server: db.server_config(),
        hints: minidb_hints(&db, vec![ClassId(2)]),
        workload: wl,
    }
}

// ---- PostgreSQL-like cases (minidb) ----

/// c6 — a bulk MVCC write slows readers of its table.
fn c6(params: &CaseParams, overload: bool) -> BuiltCase {
    let db = minidb_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            db.point_select(0.65),
            db.row_update(0.35),
            db.bulk_write(2_500_000_000).with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        wl = inject_repeating(wl, params, ClassId(2), sec_ms(4_500));
    }
    BuiltCase {
        server: db.server_config(),
        hints: minidb_hints(&db, vec![ClassId(2)]),
        workload: wl,
    }
}

/// c7 — the background WAL writer convoys group commit.
fn c7(params: &CaseParams, overload: bool) -> BuiltCase {
    let db = minidb_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            db.point_select(0.55),
            db.row_update(0.45),
            db.wal_writer(120_000_000),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        wl = wl.recurring(ClassId(2), params.disturb_at, sec_ms(4_000));
    }
    BuiltCase {
        server: db.server_config(),
        hints: minidb_hints(&db, vec![ClassId(2)]),
        workload: wl,
    }
}

/// c8 — vacuum saturates the IO device.
fn c8(params: &CaseParams, overload: bool) -> BuiltCase {
    let db = minidb_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            db.select_with_io(0.7, 60_000),
            db.row_update(0.3),
            db.vacuum(250, 10_000_000),
        ],
        6_000.0 * params.load_scale,
    );
    if overload {
        wl = wl.recurring(ClassId(2), params.disturb_at, sec_ms(4_000));
    }
    BuiltCase {
        server: db.server_config(),
        hints: minidb_hints(&db, vec![ClassId(2)]),
        workload: wl,
    }
}

// ---- Apache-like case (webserver) ----

/// c9 — slow scripts exhaust the MaxClients worker pool.
fn c9(params: &CaseParams, overload: bool) -> BuiltCase {
    let ws = WebServer::new(WebServerConfig {
        seed: params.seed,
        ..Default::default()
    });
    let slow_weight = if overload { 0.0005 } else { 0.0 };
    let wl = WorkloadSpec::new(
        vec![
            ws.http_request(1.0),
            ws.slow_script(slow_weight, 20_000_000_000)
                .with_client(ClientId(100)),
        ],
        5_000.0 * params.load_scale,
    );
    BuiltCase {
        server: ws.server_config(),
        hints: CaseHints {
            slo_exempt: vec![ClassId(1)],
            pools: vec![],
            workers: ws.cfg.max_clients * 8,
        },
        workload: wl,
    }
}

// ---- Elasticsearch-like cases (search) ----

fn search_base(seed: u64) -> SearchApp {
    SearchApp::new(SearchConfig {
        seed,
        ..Default::default()
    })
}

fn search_hints(app: &SearchApp, exempt: Vec<ClassId>) -> CaseHints {
    CaseHints {
        slo_exempt: exempt,
        pools: vec![app.cache],
        workers: app.cfg.workers,
    }
}

/// c10 — a large search evicts the query cache working set.
fn c10(params: &CaseParams, overload: bool) -> BuiltCase {
    let app = search_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            app.search(1.0),
            app.big_search(0.0, 30_000).with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        wl = inject_repeating(wl, params, ClassId(1), sec_ms(3_500));
    }
    BuiltCase {
        server: app.server_config(),
        hints: search_hints(&app, vec![ClassId(1)]),
        workload: wl,
    }
}

/// c11 — nested aggregations exhaust the heap and storm the GC.
fn c11(params: &CaseParams, overload: bool) -> BuiltCase {
    let app = search_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            app.search(1.0),
            app.nested_agg(0.0, 2_800 << 20, 30)
                .with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        wl = inject_repeating(wl, params, ClassId(1), sec_ms(3_500));
    }
    BuiltCase {
        server: app.server_config(),
        hints: search_hints(&app, vec![ClassId(1)]),
        workload: wl,
    }
}

/// c12 — long-running queries monopolize the CPU cores.
fn c12(params: &CaseParams, overload: bool) -> BuiltCase {
    let app = search_base(params.seed);
    let weight = if overload { 0.00025 } else { 0.0 };
    let wl = WorkloadSpec::new(
        vec![
            app.search(1.0),
            app.long_query(weight, 4_000_000_000)
                .with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    BuiltCase {
        server: app.server_config(),
        hints: search_hints(&app, vec![ClassId(1)]),
        workload: wl,
    }
}

/// c13 — a large update holds the document lock.
fn c13(params: &CaseParams, overload: bool) -> BuiltCase {
    let app = search_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            app.search(0.7),
            app.index_doc(0.3),
            app.big_update(0.0, 2_200_000_000)
                .with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        wl = inject_repeating(wl, params, ClassId(2), sec_ms(4_500));
    }
    BuiltCase {
        server: app.server_config(),
        hints: search_hints(&app, vec![ClassId(2)]),
        workload: wl,
    }
}

// ---- Solr-like cases (search) ----

/// c14 — a complex boolean query holds the index lock.
fn c14(params: &CaseParams, overload: bool) -> BuiltCase {
    let app = search_base(params.seed);
    let mut wl = WorkloadSpec::new(
        vec![
            app.search(1.0),
            app.complex_boolean(0.0, 2_000_000_000)
                .with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    if overload {
        wl = inject_repeating(wl, params, ClassId(1), sec_ms(4_500));
    }
    BuiltCase {
        server: app.server_config(),
        hints: search_hints(&app, vec![ClassId(1)]),
        workload: wl,
    }
}

/// c15 — nested range queries occupy the search thread pool.
fn c15(params: &CaseParams, overload: bool) -> BuiltCase {
    let app = search_base(params.seed);
    let weight = if overload { 0.0007 } else { 0.0 };
    let wl = WorkloadSpec::new(
        vec![
            app.search(1.0),
            app.nested_range(weight, 3_000_000_000)
                .with_client(ClientId(100)),
        ],
        8_000.0 * params.load_scale,
    );
    BuiltCase {
        server: app.server_config(),
        hints: search_hints(&app, vec![ClassId(1)]),
        workload: wl,
    }
}

// ---- etcd-like case (kvstore) ----

/// c16 — a complex range read blocks writers (and, via FIFO, readers).
fn c16(params: &CaseParams, overload: bool) -> BuiltCase {
    let kv = KvStore::new(KvStoreConfig {
        seed: params.seed,
        ..Default::default()
    });
    let mut wl = WorkloadSpec::new(
        vec![
            kv.kv_get(0.8),
            kv.kv_put(0.2),
            kv.range_read(0.0, 2_500_000_000).with_client(ClientId(100)),
        ],
        3_000.0 * params.load_scale,
    );
    if overload {
        wl = inject_repeating(wl, params, ClassId(2), sec_ms(4_500));
    }
    BuiltCase {
        server: kv.server_config(),
        hints: CaseHints {
            slo_exempt: vec![ClassId(2)],
            pools: vec![],
            workers: kv.cfg.workers,
        },
        workload: wl,
    }
}

/// All 16 cases of Table 2, in order.
pub fn all_cases() -> Vec<CaseDef> {
    vec![
        CaseDef {
            id: "c1",
            app: "MySQL",
            resource_type: "Synchronization",
            resource: "Backup lock",
            trigger:
                "A subtle interaction causes backup queries to hold write locks for long time.",
            base_qps: 8_000.0,
            builder: c1,
        },
        CaseDef {
            id: "c2",
            app: "MySQL",
            resource_type: "Thread pool",
            resource: "InnoDB queue",
            trigger: "Slow queries monopolize the InnoDB queue, exceeding its concurrency limit.",
            base_qps: 8_000.0,
            builder: c2,
        },
        CaseDef {
            id: "c3",
            app: "MySQL",
            resource_type: "Synchronization",
            resource: "Undo log",
            trigger: "Background purge task blocks causes contention on the undo log.",
            base_qps: 8_000.0,
            builder: c3,
        },
        CaseDef {
            id: "c4",
            app: "MySQL",
            resource_type: "Synchronization",
            resource: "Table lock",
            trigger: "SELECT FOR UPDATE query blocks other clients' insert query.",
            base_qps: 8_000.0,
            builder: c4,
        },
        CaseDef {
            id: "c5",
            app: "MySQL",
            resource_type: "Memory",
            resource: "Buffer pool",
            trigger:
                "Scan query monopolizes the buffer pool and causes contention with other queries.",
            base_qps: 8_000.0,
            builder: c5,
        },
        CaseDef {
            id: "c6",
            app: "PostgreSQL",
            resource_type: "Synchronization",
            resource: "Table lock",
            trigger: "The write operation slows down the other query due to MVCC.",
            base_qps: 8_000.0,
            builder: c6,
        },
        CaseDef {
            id: "c7",
            app: "PostgreSQL",
            resource_type: "Synchronization",
            resource: "Write ahead log",
            trigger: "The background WAL task causes group insertion and blocks other queries.",
            base_qps: 8_000.0,
            builder: c7,
        },
        CaseDef {
            id: "c8",
            app: "PostgreSQL",
            resource_type: "System",
            resource: "System IO",
            trigger: "The vacuum process causes contention on IO and slows down other queries.",
            base_qps: 6_000.0,
            builder: c8,
        },
        CaseDef {
            id: "c9",
            app: "Apache",
            resource_type: "Thread pool",
            resource: "Thread pool",
            trigger:
                "Slow request blocks other clients' requests when the max client limit is reached.",
            base_qps: 5_000.0,
            builder: c9,
        },
        CaseDef {
            id: "c10",
            app: "Elasticsearch",
            resource_type: "Memory",
            resource: "Query cache",
            trigger: "A large search slows down other queries due to cache contention.",
            base_qps: 8_000.0,
            builder: c10,
        },
        CaseDef {
            id: "c11",
            app: "Elasticsearch",
            resource_type: "Memory",
            resource: "Buffer memory",
            trigger:
                "The nested aggregation exhausts heap memory causing frequent garbage collection.",
            base_qps: 8_000.0,
            builder: c11,
        },
        CaseDef {
            id: "c12",
            app: "Elasticsearch",
            resource_type: "System",
            resource: "CPU",
            trigger: "The long running queries cause CPU contention and slow down other requests.",
            base_qps: 8_000.0,
            builder: c12,
        },
        CaseDef {
            id: "c13",
            app: "Elasticsearch",
            resource_type: "Synchronization",
            resource: "Document lock",
            trigger: "A large update blocks other requests.",
            base_qps: 8_000.0,
            builder: c13,
        },
        CaseDef {
            id: "c14",
            app: "Solr",
            resource_type: "Synchronization",
            resource: "Index lock",
            trigger: "Complex boolean request slows down other requests.",
            base_qps: 8_000.0,
            builder: c14,
        },
        CaseDef {
            id: "c15",
            app: "Solr",
            resource_type: "Thread pool",
            resource: "Solr queue",
            trigger: "Nested range queries occupy thread pool and block other requests.",
            base_qps: 8_000.0,
            builder: c15,
        },
        CaseDef {
            id: "c16",
            app: "etcd",
            resource_type: "Synchronization",
            resource: "Key-value lock",
            trigger: "Complex read query blocks other queries.",
            base_qps: 3_000.0,
            builder: c16,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_cases_in_order() {
        let cases = all_cases();
        assert_eq!(cases.len(), 16);
        for (i, c) in cases.iter().enumerate() {
            assert_eq!(c.id, format!("c{}", i + 1));
        }
    }

    #[test]
    fn resource_type_mix_matches_table_2() {
        let cases = all_cases();
        let count = |t: &str| cases.iter().filter(|c| c.resource_type == t).count();
        assert_eq!(count("Synchronization"), 8);
        assert_eq!(count("Thread pool"), 3);
        assert_eq!(count("Memory"), 3);
        assert_eq!(count("System"), 2);
    }

    #[test]
    fn every_case_builds_both_variants() {
        let params = CaseParams::default();
        for case in all_cases() {
            for overload in [false, true] {
                let built = case.build(&params, overload);
                assert!(
                    !built.workload.classes.is_empty(),
                    "{} has no classes",
                    case.id
                );
                assert!(built.hints.workers > 0, "{} workers", case.id);
                if !overload {
                    // Baselines have no injections/recurring noise.
                    assert!(
                        built.workload.injections.is_empty()
                            && built.workload.background.is_empty(),
                        "{} baseline is disturbed",
                        case.id
                    );
                }
            }
        }
    }

    #[test]
    fn overload_variants_add_noise() {
        let params = CaseParams::default();
        for case in all_cases() {
            let over = case.build(&params, true);
            let noisy = !over.workload.injections.is_empty()
                || !over.workload.background.is_empty()
                || over
                    .workload
                    .classes
                    .iter()
                    .zip(case.build(&params, false).workload.classes.iter())
                    .any(|(a, b)| a.weight != b.weight);
            assert!(noisy, "{} overload variant adds no noise", case.id);
        }
    }
}
