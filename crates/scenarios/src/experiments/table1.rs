//! Table 1 — prevalence of task cancellation in 151 popular applications.

use atropos_metrics::Table;
use serde_json::json;

use super::{ExpOptions, ExpReport};

/// Runs the experiment (summarizes the survey dataset).
pub fn run(_opts: &ExpOptions) -> ExpReport {
    let rows = atropos_study::summarize();
    let mut table = Table::new(vec![
        "Language",
        "Applications",
        "Supporting Cancel",
        "With Initiator",
    ]);
    for r in &rows {
        table.row(vec![
            r.language.clone(),
            r.applications.to_string(),
            r.supporting_cancel.to_string(),
            r.with_initiator.to_string(),
        ]);
    }
    ExpReport {
        id: "table1".into(),
        title: "Table 1: Prevalence of task cancellation support in 151 applications".into(),
        text: table.render(),
        data: json!({ "rows": rows }),
    }
}
