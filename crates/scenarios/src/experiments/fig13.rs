//! Figure 13 — comparison of cancellation policies (the §5.4 ablation).
//!
//! All 16 cases run under Atropos with (a) the multi-objective policy,
//! (b) the single-resource greedy heuristic, and (c) the multi-objective
//! policy over current usage instead of future-scaled gain. The metric is
//! normalized throughput. Expected shape: multi-objective ≥ the others,
//! winning clearly on cases where overload spans multiple resources or
//! where nearly-finished hogs would fool the current-usage policy.

use atropos_metrics::Table;
use serde_json::json;

use super::{r2, ExpOptions, ExpReport};
use crate::cases::all_cases;
use crate::runner::{calibrate, parallel_map, run_with, ControllerKind};

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let rc = opts.run_config();
    let kinds = [
        ControllerKind::Atropos,
        ControllerKind::AtroposHeuristic,
        ControllerKind::AtroposCurrentUsage,
    ];
    let cases = all_cases();
    let results = parallel_map(cases, move |case| {
        let baseline = calibrate(&case, &rc);
        let per_kind: Vec<_> = kinds
            .iter()
            .map(|&k| (k, run_with(&case, k, &rc, &baseline)))
            .collect();
        (case.id, per_kind)
    });

    let mut table = Table::new(vec![
        "case",
        "Multi-Objective",
        "Heuristic",
        "Current Usage",
    ]);
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    for (id, per_kind) in &results {
        let mut row = vec![id.to_string()];
        for (i, (k, r)) in per_kind.iter().enumerate() {
            row.push(r2(r.normalized.throughput));
            sums[i] += r.normalized.throughput;
            rows.push(json!({
                "case": id, "policy": k.label(),
                "norm_throughput": r.normalized.throughput,
                "norm_p99": r.normalized.p99,
            }));
        }
        table.row(row);
    }
    let n = results.len() as f64;
    table.row(vec![
        "average".into(),
        r2(sums[0] / n),
        r2(sums[1] / n),
        r2(sums[2] / n),
    ]);
    ExpReport {
        id: "fig13".into(),
        title: "Figure 13: Comparison of different cancellation policies".into(),
        text: table.render(),
        data: json!({ "points": rows }),
    }
}
