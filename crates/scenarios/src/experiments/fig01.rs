//! Figure 1 — the design space for mitigating application resource
//! overload.
//!
//! The paper's opening figure places existing systems on two axes: SLO
//! attainment and request loss rate, with Atropos targeting the
//! high-attainment / low-loss corner that neither admission control
//! (SEDA, Breakwater, DAGOR, Protego) nor performance isolation (pBox,
//! PARTIES, resource containers) reaches. This experiment materializes
//! that scatter: every implemented controller runs the same resource
//! overload (case c1) and reports its position.

use atropos_metrics::Table;
use serde_json::json;

use super::{pct3, r2, ExpOptions, ExpReport};
use crate::cases::all_cases;
use crate::runner::{calibrate, parallel_map, run_with, ControllerKind};

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let kinds = [
        ControllerKind::None,
        ControllerKind::Seda,
        ControllerKind::Breakwater,
        ControllerKind::Dagor,
        ControllerKind::Protego,
        ControllerKind::PBox,
        ControllerKind::Darc,
        ControllerKind::Parties,
        ControllerKind::Atropos,
    ];
    let case = all_cases().into_iter().next().expect("c1");
    let rc = opts.run_config();
    let baseline = calibrate(&case, &rc);
    let results = parallel_map(kinds.to_vec(), |kind| {
        let r = run_with(&case, kind, &rc, &baseline);
        (kind, r)
    });

    let mut table = Table::new(vec![
        "system",
        "SLO attainment (norm tput)",
        "norm p99",
        "request loss",
    ]);
    let mut rows = Vec::new();
    for (kind, r) in &results {
        table.row(vec![
            kind.label().into(),
            r2(r.normalized.throughput),
            r2(r.normalized.p99),
            pct3(r.normalized.drop_rate),
        ]);
        rows.push(json!({
            "system": kind.label(),
            "norm_throughput": r.normalized.throughput,
            "norm_p99": r.normalized.p99,
            "drop_rate": r.normalized.drop_rate,
        }));
    }
    ExpReport {
        id: "fig1".into(),
        title: "Figure 1: Design space — every controller on the c1 resource overload".into(),
        text: table.render(),
        data: json!({ "points": rows }),
    }
}
