//! Ablation — the cancellation min-interval trade-off (§5.3 discussion).
//!
//! The paper attributes its two missed-SLO cases to the "small time
//! interval between consecutive cancellations" that prevents excessive
//! termination. This ablation sweeps the interval on a storm case (c3,
//! many recurring noisy tasks) and a one-shot case (c4): a shorter
//! interval recovers faster (lower latency increase) but issues more
//! cancellations.

use atropos_metrics::Table;
use serde_json::json;

use super::{ExpOptions, ExpReport};
use crate::cases::all_cases;
use crate::runner::{calibrate, parallel_map, run_with, ControllerKind};

const INTERVALS_MS: [u64; 4] = [10, 50, 200, 1000];

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let cases: Vec<_> = all_cases()
        .into_iter()
        .filter(|c| c.id == "c3" || c.id == "c4")
        .collect();
    let mut jobs = Vec::new();
    for case in cases {
        for &ms in &INTERVALS_MS {
            jobs.push((case.clone(), ms));
        }
    }
    let base_rc = opts.run_config();
    let results = parallel_map(jobs, move |(case, ms)| {
        let mut rc = base_rc.clone();
        rc.cancel_min_interval_ns = Some(ms * 1_000_000);
        let baseline = calibrate(&case, &rc);
        let r = run_with(&case, ControllerKind::Atropos, &rc, &baseline);
        (case.id, ms, r)
    });

    let mut table = Table::new(vec![
        "case",
        "interval",
        "norm tput",
        "latency increase",
        "cancels",
    ]);
    let mut rows = Vec::new();
    for (id, ms, r) in &results {
        table.row(vec![
            id.to_string(),
            format!("{ms}ms"),
            format!("{:.2}", r.normalized.throughput),
            format!("{:.1}%", r.normalized.latency_increase() * 100.0),
            r.summary.canceled.to_string(),
        ]);
        rows.push(json!({
            "case": id, "interval_ms": ms,
            "norm_throughput": r.normalized.throughput,
            "latency_increase": r.normalized.latency_increase(),
            "canceled": r.summary.canceled,
        }));
    }
    ExpReport {
        id: "ablation-interval".into(),
        title: "Ablation: cancellation min-interval (aggressiveness vs recovery)".into(),
        text: table.render(),
        data: json!({ "points": rows }),
    }
}
