//! Table 2 — the 16 reproduced overload cases.

use atropos_metrics::Table;
use serde_json::json;

use super::{ExpOptions, ExpReport};
use crate::cases::all_cases;

/// Runs the experiment (prints the case registry).
pub fn run(_opts: &ExpOptions) -> ExpReport {
    let cases = all_cases();
    let mut table = Table::new(vec![
        "Id",
        "Application",
        "Resource Type",
        "Resource Detail",
        "Overload Triggering Condition",
    ]);
    let mut rows = Vec::new();
    for c in &cases {
        table.row(vec![
            c.id.into(),
            c.app.into(),
            c.resource_type.into(),
            c.resource.into(),
            c.trigger.into(),
        ]);
        rows.push(json!({
            "id": c.id, "app": c.app, "resource_type": c.resource_type,
            "resource": c.resource, "trigger": c.trigger,
            "base_qps": c.base_qps,
        }));
    }
    ExpReport {
        id: "table2".into(),
        title: "Table 2: The 16 reproduced application resource overload cases".into(),
        text: table.render(),
        data: json!({ "cases": rows }),
    }
}
