//! §5.3 — maintaining the SLO under resource overload.
//!
//! All 16 cases run under Atropos with the default SLO of a 20% latency
//! increase. The paper reports the SLO met in 14 of 16 cases, with c3
//! (23%) and c12 (26%) narrowly missing due to the interval enforced
//! between consecutive cancellations.

use atropos_metrics::Table;
use serde_json::json;

use super::{ExpOptions, ExpReport};
use crate::cases::all_cases;
use crate::runner::{calibrate, parallel_map, run_with, ControllerKind};

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let mut rc = opts.run_config();
    rc.slo_threshold = 0.2;
    let cases = all_cases();
    let results = parallel_map(cases, move |case| {
        let baseline = calibrate(&case, &rc);
        let r = run_with(&case, ControllerKind::Atropos, &rc, &baseline);
        (case.id, r)
    });

    let mut table = Table::new(vec!["case", "latency increase", "SLO (20%) met", "cancels"]);
    let mut met = 0;
    let mut rows = Vec::new();
    for (id, r) in &results {
        let inc = r.normalized.latency_increase();
        let ok = inc <= 0.2;
        if ok {
            met += 1;
        }
        table.row(vec![
            id.to_string(),
            format!("{:.1}%", inc * 100.0),
            if ok { "yes" } else { "NO" }.into(),
            r.summary.canceled.to_string(),
        ]);
        rows.push(json!({
            "case": id,
            "latency_increase": inc,
            "slo_met": ok,
            "canceled": r.summary.canceled,
        }));
    }
    let summary = format!("SLO met in {met} of {} cases\n", results.len());
    ExpReport {
        id: "slo".into(),
        title: "§5.3: SLO attainment at the 20% threshold".into(),
        text: format!("{}{}", table.render(), summary),
        data: json!({ "cases": rows, "met": met }),
    }
}
