//! Figure 10 — mitigation effectiveness across the 16 cases.
//!
//! Each case runs uncontrolled ("Overload") and under Atropos; both are
//! normalized against the undisturbed baseline. Expected shape: the
//! overload line sits well below 1.0 throughput (or far above 1.0 p99)
//! while Atropos stays near 1.0 on both, with drop rate ≈ 0.

use atropos_metrics::Table;
use serde_json::json;

use super::{pct3, r2, ExpOptions, ExpReport};
use crate::cases::all_cases;
use crate::runner::{calibrate, parallel_map, run_with, ControllerKind};

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let rc = opts.run_config();
    let cases = all_cases();
    let results = parallel_map(cases, move |case| {
        let baseline = calibrate(&case, &rc);
        let none = run_with(&case, ControllerKind::None, &rc, &baseline);
        let atropos = run_with(&case, ControllerKind::Atropos, &rc, &baseline);
        (case.id, baseline, none, atropos)
    });

    let mut table = Table::new(vec![
        "case",
        "overload tput",
        "atropos tput",
        "overload p99",
        "atropos p99",
        "atropos drop",
        "cancels",
    ]);
    let mut rows = Vec::new();
    let (mut sum_t, mut sum_p) = (0.0, 0.0);
    for (id, baseline, none, atropos) in &results {
        table.row(vec![
            id.to_string(),
            r2(none.normalized.throughput),
            r2(atropos.normalized.throughput),
            r2(none.normalized.p99),
            r2(atropos.normalized.p99),
            pct3(atropos.normalized.drop_rate),
            atropos.summary.canceled.to_string(),
        ]);
        sum_t += atropos.normalized.throughput;
        sum_p += atropos.normalized.p99;
        rows.push(json!({
            "case": id,
            "baseline_qps": baseline.summary.throughput_qps(),
            "overload": {
                "norm_throughput": none.normalized.throughput,
                "norm_p99": none.normalized.p99,
            },
            "atropos": {
                "norm_throughput": atropos.normalized.throughput,
                "norm_p99": atropos.normalized.p99,
                "drop_rate": atropos.normalized.drop_rate,
                "canceled": atropos.summary.canceled,
            },
        }));
    }
    let n = results.len() as f64;
    table.row(vec![
        "average".into(),
        String::new(),
        r2(sum_t / n),
        String::new(),
        r2(sum_p / n),
        String::new(),
        String::new(),
    ]);
    ExpReport {
        id: "fig10".into(),
        title: "Figure 10: Mitigation effectiveness of Atropos across 16 cases".into(),
        text: table.render(),
        data: json!({ "cases": rows }),
    }
}
