//! Figure 3 — performance impact of table lock contention.
//!
//! The paper's §2.1 case 2: a mixed lightweight workload, three long table
//! scans injected early, and a backup query injected afterwards. Series:
//! *Lock Contention* runs both scans and backup; *Drop Scan* omits the
//! scans; *Drop Backup* omits the backup. The expected shape: only the
//! combination collapses throughput — removing either the scans or the
//! backup restores it, showing the overload comes from the interaction.

use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
use atropos_app::ids::ClassId;
use atropos_app::server::SimServer;
use atropos_app::workload::WorkloadSpec;
use atropos_app::NoControl;
use atropos_metrics::Table;
use atropos_sim::SimTime;
use serde_json::json;

use super::{ExpOptions, ExpReport};
use crate::runner::parallel_map;

#[derive(Clone, Copy, PartialEq)]
enum Series {
    LockContention,
    DropScan,
    DropBackup,
}

impl Series {
    fn label(self) -> &'static str {
        match self {
            Series::LockContention => "Lock Contention",
            Series::DropScan => "Drop Scan",
            Series::DropBackup => "Drop Backup",
        }
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let (loads, duration, warmup) = if opts.quick {
        (vec![8_000.0, 16_000.0, 24_000.0], 8u64, 2u64)
    } else {
        ((1..=8).map(|i| i as f64 * 4_000.0).collect(), 12, 2)
    };
    let series = [Series::LockContention, Series::DropScan, Series::DropBackup];
    let mut jobs = Vec::new();
    for &load in &loads {
        for &s in &series {
            jobs.push((load, s));
        }
    }
    let seed = opts.seed;
    let results = parallel_map(jobs, move |(load, s)| {
        let db = MiniDb::new(MiniDbConfig {
            seed,
            ..Default::default()
        });
        let mut wl = WorkloadSpec::new(
            vec![
                db.point_select(0.65),
                db.row_update(0.35),
                db.table_scan(0.0, 3_000_000_000), // 3 s in-memory scan
                db.backup(40_000_000),
            ],
            load,
        );
        // Paper schedule compressed: scans at 3/4/5 s, backup at 6 s.
        if s != Series::DropScan {
            wl = wl
                .inject(SimTime::from_secs(3), ClassId(2))
                .inject(SimTime::from_secs(4), ClassId(2))
                .inject(SimTime::from_secs(5), ClassId(2));
        }
        if s != Series::DropBackup {
            wl = wl.inject(SimTime::from_secs(6), ClassId(3));
        }
        let m = SimServer::new(db.server_config(), wl, Box::new(NoControl))
            .run(SimTime::from_secs(duration), SimTime::from_secs(warmup));
        let measured = (duration - warmup) as f64;
        (
            load,
            s,
            m.completed as f64 / measured,
            m.latency.p99() as f64 / 1e6,
        )
    });

    let mut table = Table::new(vec![
        "offered (kQPS)",
        "contention tput",
        "drop-scan tput",
        "drop-backup tput",
        "contention p99",
        "drop-scan p99",
        "drop-backup p99",
    ]);
    let find = |load: f64, s: Series| {
        results
            .iter()
            .find(|(l, ser, _, _)| *l == load && *ser == s)
            .expect("point exists")
    };
    for &load in &loads {
        let a = find(load, Series::LockContention);
        let b = find(load, Series::DropScan);
        let c = find(load, Series::DropBackup);
        table.row(vec![
            format!("{:.0}", load / 1000.0),
            format!("{:.1}k", a.2 / 1000.0),
            format!("{:.1}k", b.2 / 1000.0),
            format!("{:.1}k", c.2 / 1000.0),
            format!("{:.1}ms", a.3),
            format!("{:.1}ms", b.3),
            format!("{:.1}ms", c.3),
        ]);
    }
    let data = json!({
        "points": results.iter().map(|(l, s, t, p)| json!({
            "load_qps": l, "series": s.label(), "throughput_qps": t, "p99_ms": p,
        })).collect::<Vec<_>>(),
    });
    ExpReport {
        id: "fig3".into(),
        title: "Figure 3: Performance impact of table lock contention".into(),
        text: table.render(),
        data,
    }
}
