//! The experiment harness: one module per figure/table of the paper.
//!
//! Each experiment regenerates the corresponding figure or table as (a) an
//! ASCII table with the same rows/series the paper plots and (b) a JSON
//! payload for post-processing, bundled in an [`ExpReport`]. The `repro`
//! binary in `atropos-bench` drives these and records the outputs in
//! `EXPERIMENTS.md`.

pub mod ablation_interval;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod slo_attainment;
pub mod table1;
pub mod table2;
pub mod table3;

use serde_json::Value;

use crate::runner::RunConfig;

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Shorter runs and sparser sweeps.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 42,
        }
    }
}

impl ExpOptions {
    /// The run configuration these options imply.
    pub fn run_config(&self) -> RunConfig {
        if self.quick {
            RunConfig::quick(self.seed)
        } else {
            RunConfig::full(self.seed)
        }
    }
}

/// The output of one experiment.
#[derive(Debug, Clone)]
pub struct ExpReport {
    /// Short id (`fig2`, `table1`, …).
    pub id: String,
    /// Human title matching the paper's caption.
    pub title: String,
    /// Rendered ASCII table(s).
    pub text: String,
    /// Structured results.
    pub data: Value,
}

/// All experiment ids, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "table1",
        "table2",
        "table3",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "slo",
        "ablation-interval",
    ]
}

/// Runs an experiment by id.
pub fn run_by_id(id: &str, opts: &ExpOptions) -> Option<ExpReport> {
    let report = match id {
        "fig1" => fig01::run(opts),
        "fig2" => fig02::run(opts),
        "fig3" => fig03::run(opts),
        "fig4" => fig04::run(opts),
        "table1" => table1::run(opts),
        "table2" => table2::run(opts),
        "table3" => table3::run(opts),
        "fig9" => fig09::run(opts),
        "fig10" => fig10::run(opts),
        "fig11" => fig11::run(opts),
        "fig12" => fig12::run(opts),
        "fig13" => fig13::run(opts),
        "fig14" => fig14::run(opts),
        "slo" => slo_attainment::run(opts),
        "ablation-interval" => ablation_interval::run(opts),
        _ => return None,
    };
    Some(report)
}

/// Formats a normalized ratio with two decimals.
pub(crate) fn r2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a drop rate as a percentage with three decimals.
pub(crate) fn pct3(x: f64) -> String {
    format!("{:.3}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_experiments_resolve() {
        // Only the static (non-simulating) experiments are exercised here;
        // the simulating ones are covered by the harness smoke test.
        for id in ["table1", "table2", "table3"] {
            assert!(run_by_id(id, &ExpOptions::default()).is_some(), "{id}");
        }
        assert!(run_by_id("nope", &ExpOptions::default()).is_none());
        assert_eq!(all_ids().len(), 15);
    }
}
