//! Figure 12 — SLO maintenance under different thresholds.
//!
//! Six cases (c1, c2, c10, c11, c14, c15) run under Atropos with SLO
//! goals of 10%, 20%, 40% and 60% latency increase. The reported metric
//! is the achieved latency increase (normalized p99 − 1). Expected shape:
//! the achieved increase stays at or below the goal in every case, with
//! more cancellations issued as the goal tightens.

use atropos_metrics::Table;
use serde_json::json;

use super::{ExpOptions, ExpReport};
use crate::cases::all_cases;
use crate::runner::{calibrate, parallel_map, run_with, ControllerKind};

const FIG12_CASES: [&str; 6] = ["c1", "c2", "c10", "c11", "c14", "c15"];
const GOALS: [f64; 4] = [0.1, 0.2, 0.4, 0.6];

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let cases: Vec<_> = all_cases()
        .into_iter()
        .filter(|c| FIG12_CASES.contains(&c.id))
        .collect();
    let mut jobs = Vec::new();
    for case in cases {
        for &goal in &GOALS {
            jobs.push((case.clone(), goal));
        }
    }
    let base_rc = opts.run_config();
    let results = parallel_map(jobs, move |(case, goal)| {
        let mut rc = base_rc.clone();
        rc.slo_threshold = goal;
        let baseline = calibrate(&case, &rc);
        let r = run_with(&case, ControllerKind::Atropos, &rc, &baseline);
        (case.id, goal, r)
    });

    let mut table = Table::new(vec![
        "case",
        "goal 10%",
        "goal 20%",
        "goal 40%",
        "goal 60%",
        "cancels (10%..60%)",
    ]);
    let mut rows = Vec::new();
    for id in FIG12_CASES {
        let per_goal: Vec<_> = GOALS
            .iter()
            .map(|&g| {
                results
                    .iter()
                    .find(|(cid, goal, _)| *cid == id && *goal == g)
                    .expect("result exists")
            })
            .collect();
        let mut row = vec![id.to_string()];
        for (_, _, r) in &per_goal {
            row.push(format!("{:.1}%", r.normalized.latency_increase() * 100.0));
        }
        row.push(
            per_goal
                .iter()
                .map(|(_, _, r)| r.summary.canceled.to_string())
                .collect::<Vec<_>>()
                .join("/"),
        );
        table.row(row);
        for (_, g, r) in per_goal {
            rows.push(json!({
                "case": id,
                "slo_goal": g,
                "latency_increase": r.normalized.latency_increase(),
                "canceled": r.summary.canceled,
            }));
        }
    }
    ExpReport {
        id: "fig12".into(),
        title: "Figure 12: SLO maintenance under different thresholds".into(),
        text: table.render(),
        data: json!({ "points": rows }),
    }
}
