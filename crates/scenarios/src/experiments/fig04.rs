//! Figure 4 — Protego, pBox and Atropos under the table-lock overload.
//!
//! The paper evaluates case 2 (our case c1) across offered loads and
//! reports throughput, p99 latency (both normalized by the non-overloaded
//! performance at the same load) and drop rate. Expected shape: Atropos
//! stays near 1.0 normalized throughput with ~zero drops; Protego bounds
//! latency but loses throughput and drops heavily; pBox cannot release
//! the held locks and recovers only partially.

use atropos_metrics::Table;
use serde_json::json;

use super::{pct3, r2, ExpOptions, ExpReport};
use crate::cases::all_cases;
use crate::runner::{calibrate, parallel_map, run_with, ControllerKind};

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let scales: Vec<f64> = if opts.quick {
        vec![0.5, 1.0, 2.0]
    } else {
        vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
    };
    let kinds = [
        ControllerKind::Protego,
        ControllerKind::PBox,
        ControllerKind::Atropos,
    ];
    let case = all_cases().into_iter().next().expect("c1 exists");
    let base_rc = opts.run_config();
    let jobs: Vec<f64> = scales.clone();
    let results = parallel_map(jobs, |scale| {
        let mut rc = base_rc.clone();
        rc.load_scale = scale;
        let baseline = calibrate(&case, &rc);
        let per_kind: Vec<_> = kinds
            .iter()
            .map(|&k| (k, run_with(&case, k, &rc, &baseline)))
            .collect();
        (scale, baseline, per_kind)
    });

    let mut table = Table::new(vec![
        "offered (kQPS)",
        "system",
        "norm tput",
        "norm p99",
        "drop rate",
    ]);
    let mut rows = Vec::new();
    for (scale, baseline, per_kind) in &results {
        for (k, r) in per_kind {
            table.row(vec![
                format!("{:.0}", scale * case.base_qps / 1000.0),
                k.label().into(),
                r2(r.normalized.throughput),
                r2(r.normalized.p99),
                pct3(r.normalized.drop_rate),
            ]);
            rows.push(json!({
                "load_qps": scale * case.base_qps,
                "baseline_qps": baseline.summary.throughput_qps(),
                "system": k.label(),
                "norm_throughput": r.normalized.throughput,
                "norm_p99": r.normalized.p99,
                "drop_rate": r.normalized.drop_rate,
            }));
        }
    }
    ExpReport {
        id: "fig4".into(),
        title: "Figure 4: Protego, pBox and Atropos on the table-lock overload (case c1)".into(),
        text: table.render(),
        data: json!({ "points": rows }),
    }
}
