//! Figure 9 — Atropos vs Protego, pBox, DARC and PARTIES on all cases.
//!
//! Normalized throughput (9a) and normalized p99 latency (9b) of each
//! system across the reproduced cases. Expected shape (paper averages):
//! Atropos ≈ 0.96 normalized throughput; Protego ≈ 0.51, pBox ≈ 0.54,
//! DARC ≈ 0.36, PARTIES ≈ 0.38; Atropos bounds normalized p99 near 1,
//! Protego bounds it on synchronization/system cases only.

use atropos_metrics::Table;
use serde_json::json;

use super::{r2, ExpOptions, ExpReport};
use crate::cases::all_cases;
use crate::runner::{calibrate, parallel_map, run_with, CaseResult, ControllerKind};

/// Runs all cases × the five compared systems. Shared with Figure 11.
pub(crate) fn comparison_matrix(
    opts: &ExpOptions,
) -> Vec<(&'static str, Vec<(ControllerKind, CaseResult)>)> {
    let rc = opts.run_config();
    let cases = all_cases();
    parallel_map(cases, move |case| {
        let baseline = calibrate(&case, &rc);
        let per_kind: Vec<_> = ControllerKind::comparison_set()
            .iter()
            .map(|&k| (k, run_with(&case, k, &rc, &baseline)))
            .collect();
        (case.id, per_kind)
    })
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let matrix = comparison_matrix(opts);
    let kinds = ControllerKind::comparison_set();

    let mut tput = Table::new(
        std::iter::once("case".to_string())
            .chain(kinds.iter().map(|k| format!("{} tput", k.label())))
            .collect(),
    );
    let mut p99 = Table::new(
        std::iter::once("case".to_string())
            .chain(kinds.iter().map(|k| format!("{} p99", k.label())))
            .collect(),
    );
    let mut sums = vec![(0.0f64, 0.0f64); kinds.len()];
    let mut rows = Vec::new();
    for (id, per_kind) in &matrix {
        let mut trow = vec![id.to_string()];
        let mut prow = vec![id.to_string()];
        for (i, (k, r)) in per_kind.iter().enumerate() {
            trow.push(r2(r.normalized.throughput));
            prow.push(r2(r.normalized.p99));
            sums[i].0 += r.normalized.throughput;
            sums[i].1 += r.normalized.p99;
            rows.push(json!({
                "case": id, "system": k.label(),
                "norm_throughput": r.normalized.throughput,
                "norm_p99": r.normalized.p99,
                "drop_rate": r.normalized.drop_rate,
            }));
        }
        tput.row(trow);
        p99.row(prow);
    }
    let n = matrix.len() as f64;
    let mut avg_t = vec!["average".to_string()];
    let mut avg_p = vec!["average".to_string()];
    for (st, sp) in &sums {
        avg_t.push(r2(st / n));
        avg_p.push(r2(sp / n));
    }
    tput.row(avg_t);
    p99.row(avg_p);

    let text = format!(
        "(a) Normalized throughput\n{}\n(b) Normalized p99 latency\n{}",
        tput.render(),
        p99.render()
    );
    ExpReport {
        id: "fig9".into(),
        title: "Figure 9: Comparison with state-of-the-art systems".into(),
        text,
        data: json!({ "points": rows }),
    }
}
