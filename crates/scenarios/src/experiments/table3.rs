//! Table 3 — integration effort.
//!
//! The paper measures integration effort as the lines of code added to
//! each application (22–74 lines, ~20 resources in MySQL). The analog in
//! this reproduction: each simulated application declares its traced
//! resource groups in its `server_config()`, and the glue controller is
//! shared. We report, per application, the substrate size, the number of
//! traced resource groups, and the paper's original figures for
//! reference.

use atropos_app::apps::kvstore::{KvStore, KvStoreConfig};
use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
use atropos_app::apps::search::{SearchApp, SearchConfig};
use atropos_app::apps::webserver::{WebServer, WebServerConfig};
use atropos_metrics::Table;
use serde_json::json;

use super::{ExpOptions, ExpReport};

/// `(paper app, paper SLOC, paper SLOC added)` from Table 3.
const PAPER: [(&str, &str, u32); 6] = [
    ("MySQL", "2.1M", 74),
    ("PostgreSQL", "1.49M", 59),
    ("Apache", "1.98M", 30),
    ("Elasticsearch", "3.2M", 65),
    ("Solr", "961K", 47),
    ("etcd", "244K", 22),
];

fn loc(src: &str) -> usize {
    src.lines().filter(|l| !l.trim().is_empty()).count()
}

/// Runs the experiment.
pub fn run(_opts: &ExpOptions) -> ExpReport {
    // Substrate sizes (compile-time embedded sources).
    let minidb_loc = loc(include_str!("../../../appsim/src/apps/minidb.rs"));
    let web_loc = loc(include_str!("../../../appsim/src/apps/webserver.rs"));
    let search_loc = loc(include_str!("../../../appsim/src/apps/search.rs"));
    let kv_loc = loc(include_str!("../../../appsim/src/apps/kvstore.rs"));

    let groups = |n: usize| n;
    let minidb = MiniDb::new(MiniDbConfig::default()).server_config();
    let web = WebServer::new(WebServerConfig::default()).server_config();
    let search = SearchApp::new(SearchConfig::default()).server_config();
    let kv = KvStore::new(KvStoreConfig::default()).server_config();

    let repro: [(&str, usize, usize); 6] = [
        ("MySQL", minidb_loc, groups(minidb.groups.len())),
        ("PostgreSQL", minidb_loc, groups(minidb.groups.len())),
        ("Apache", web_loc, groups(web.groups.len())),
        ("Elasticsearch", search_loc, groups(search.groups.len())),
        ("Solr", search_loc, groups(search.groups.len())),
        ("etcd", kv_loc, groups(kv.groups.len())),
    ];

    let mut table = Table::new(vec![
        "Software",
        "Paper SLOC",
        "Paper SLOC added",
        "Substrate LoC (this repro)",
        "Traced resource groups",
    ]);
    let mut rows = Vec::new();
    for ((app, sloc, added), (_, subst, grps)) in PAPER.iter().zip(repro.iter()) {
        table.row(vec![
            app.to_string(),
            sloc.to_string(),
            added.to_string(),
            subst.to_string(),
            grps.to_string(),
        ]);
        rows.push(json!({
            "app": app, "paper_sloc": sloc, "paper_sloc_added": added,
            "substrate_loc": subst, "resource_groups": grps,
        }));
    }
    ExpReport {
        id: "table3".into(),
        title: "Table 3: Evaluated software and integration effort".into(),
        text: table.render(),
        data: json!({ "rows": rows }),
    }
}
