//! Figure 11 — drop rate of Atropos vs Protego.
//!
//! The paper plots the ten cases where Protego's victim shedding is
//! exercised (c1, c3, c4, c6, c7, c8, c9, c12, c13, c14). Expected shape:
//! Protego's drop rate averages ~25% while Atropos stays below 0.01–0.1%.

use atropos_metrics::Table;
use serde_json::json;

use super::{pct3, ExpOptions, ExpReport};
use crate::cases::all_cases;
use crate::runner::{calibrate, parallel_map, run_with, ControllerKind};

const FIG11_CASES: [&str; 10] = [
    "c1", "c3", "c4", "c6", "c7", "c8", "c9", "c12", "c13", "c14",
];

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let rc = opts.run_config();
    let cases: Vec<_> = all_cases()
        .into_iter()
        .filter(|c| FIG11_CASES.contains(&c.id))
        .collect();
    let results = parallel_map(cases, move |case| {
        let baseline = calibrate(&case, &rc);
        let atropos = run_with(&case, ControllerKind::Atropos, &rc, &baseline);
        let protego = run_with(&case, ControllerKind::Protego, &rc, &baseline);
        (case.id, atropos, protego)
    });

    let mut table = Table::new(vec!["case", "Atropos drop", "Protego drop"]);
    let mut rows = Vec::new();
    let (mut sum_a, mut sum_p) = (0.0, 0.0);
    for (id, a, p) in &results {
        table.row(vec![
            id.to_string(),
            pct3(a.normalized.drop_rate),
            pct3(p.normalized.drop_rate),
        ]);
        sum_a += a.normalized.drop_rate;
        sum_p += p.normalized.drop_rate;
        rows.push(json!({
            "case": id,
            "atropos_drop_rate": a.normalized.drop_rate,
            "protego_drop_rate": p.normalized.drop_rate,
        }));
    }
    let n = results.len() as f64;
    table.row(vec!["average".into(), pct3(sum_a / n), pct3(sum_p / n)]);
    ExpReport {
        id: "fig11".into(),
        title: "Figure 11: Drop rate of Atropos and Protego".into(),
        text: table.render(),
        data: json!({ "cases": rows }),
    }
}
