//! Figure 2 — impact of dump queries on buffer pool contention.
//!
//! The paper's §2.1 case study: a MySQL instance with a 512 MB buffer pool
//! over 2 GB of data, running a lightweight point-select/row-update mix,
//! with heavy dump queries mixed in at ratios of 0 (No dump), 1:100K
//! (0.001%), and 1:10K (0.01%). The experiment sweeps offered load and
//! reports throughput and p99 latency per series. Expected shape: even the
//! tiny dump ratios cut the saturation throughput far below the baseline
//! and blow up tail latency at much lower loads.

use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
use atropos_app::server::SimServer;
use atropos_app::workload::WorkloadSpec;
use atropos_app::NoControl;
use atropos_metrics::Table;
use atropos_sim::SimTime;
use serde_json::json;

use super::{ExpOptions, ExpReport};
use crate::runner::parallel_map;

/// 2 GB of 16 KB pages.
const DUMP_PAGES: u64 = 131_072;

struct Point {
    load: f64,
    ratio: f64,
    tput: f64,
    p99_ms: f64,
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let (loads, duration, warmup) = if opts.quick {
        (vec![10_000.0, 20_000.0, 30_000.0], 6u64, 2u64)
    } else {
        ((1..=8).map(|i| i as f64 * 5_000.0).collect(), 10, 2)
    };
    let ratios = [0.0, 1e-5, 1e-4];
    let mut jobs = Vec::new();
    for &load in &loads {
        for &ratio in &ratios {
            jobs.push((load, ratio));
        }
    }
    let seed = opts.seed;
    let points = parallel_map(jobs, move |(load, ratio)| {
        let db = MiniDb::new(MiniDbConfig {
            seed,
            ..Default::default()
        });
        // Weights are per-arrival probabilities: the dump ratio is applied
        // to the whole mix.
        let light = 1.0 - ratio;
        let wl = WorkloadSpec::new(
            vec![
                db.point_select(light * 0.65),
                db.row_update(light * 0.35),
                db.dump(ratio, DUMP_PAGES),
            ],
            load,
        );
        let m = SimServer::new(db.server_config(), wl, Box::new(NoControl))
            .run(SimTime::from_secs(duration), SimTime::from_secs(warmup));
        let measured = (duration - warmup) as f64;
        Point {
            load,
            ratio,
            tput: m.completed as f64 / measured,
            p99_ms: m.latency.p99() as f64 / 1e6,
        }
    });

    let mut table = Table::new(vec![
        "offered (kQPS)",
        "no-dump tput",
        "0.001% tput",
        "0.01% tput",
        "no-dump p99",
        "0.001% p99",
        "0.01% p99",
    ]);
    let find = |load: f64, ratio: f64| -> &Point {
        points
            .iter()
            .find(|p| p.load == load && p.ratio == ratio)
            .expect("point exists")
    };
    for &load in &loads {
        let (a, b, c) = (find(load, 0.0), find(load, 1e-5), find(load, 1e-4));
        table.row(vec![
            format!("{:.0}", load / 1000.0),
            format!("{:.1}k", a.tput / 1000.0),
            format!("{:.1}k", b.tput / 1000.0),
            format!("{:.1}k", c.tput / 1000.0),
            format!("{:.2}ms", a.p99_ms),
            format!("{:.2}ms", b.p99_ms),
            format!("{:.2}ms", c.p99_ms),
        ]);
    }
    let data = json!({
        "series": ratios,
        "points": points.iter().map(|p| json!({
            "load_qps": p.load, "dump_ratio": p.ratio,
            "throughput_qps": p.tput, "p99_ms": p.p99_ms,
        })).collect::<Vec<_>>(),
    });
    ExpReport {
        id: "fig2".into(),
        title: "Figure 2: Impact of dump queries on buffer pool contention".into(),
        text: table.render(),
        data,
    }
}
