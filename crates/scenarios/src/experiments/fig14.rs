//! Figure 14 — runtime overhead of Atropos.
//!
//! Five applications run read-intensive and write-intensive workloads,
//! each with and without resource overload, with Atropos tracing enabled
//! but **cancellation disabled** (isolating tracing + decision cost,
//! §5.5). Reported values are Atropos-to-uncontrolled ratios. Expected
//! shape: under normal load the sampled-timestamp mode keeps throughput
//! loss under ~2%; under overload the precise per-event mode costs more
//! (paper: ~7% throughput, up to ~16% p99).

use atropos::AtroposConfig;
use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
use atropos_app::apps::search::{SearchApp, SearchConfig};
use atropos_app::apps::webserver::{WebServer, WebServerConfig};
use atropos_app::glue::AtroposController;
use atropos_app::ids::ClassId;
use atropos_app::server::{ServerConfig, SimServer};
use atropos_app::workload::WorkloadSpec;
use atropos_app::NoControl;
use atropos_metrics::Table;
use atropos_sim::SimTime;
use serde_json::json;

use super::{ExpOptions, ExpReport};
use crate::runner::parallel_map;

const APPS: [&str; 5] = ["MySQL", "PostgreSQL", "Apache", "Elasticsearch", "Solr"];
const WORKLOADS: [&str; 4] = ["Read", "Write", "Read Overload", "Write Overload"];

fn build(app: &str, workload: &str, seed: u64, duration: SimTime) -> (ServerConfig, WorkloadSpec) {
    let overload = workload.contains("Overload");
    let write = workload.starts_with("Write");
    let inject_every = SimTime::from_millis(3_000);
    let disturb = SimTime::from_millis(2_500);
    let inject_all = |mut wl: WorkloadSpec, class: ClassId| {
        let mut at = disturb;
        while at < duration {
            wl = wl.inject(at, class);
            at += inject_every;
        }
        wl
    };
    match app {
        "MySQL" => {
            let db = MiniDb::new(MiniDbConfig {
                seed,
                ..Default::default()
            });
            let mix = if write {
                vec![
                    db.point_select(0.2),
                    db.row_update(0.8),
                    db.dump(0.0, 120_000),
                    db.select_for_update(2_000_000_000),
                ]
            } else {
                vec![
                    db.point_select(0.9),
                    db.row_update(0.1),
                    db.dump(0.0, 120_000),
                    db.select_for_update(2_000_000_000),
                ]
            };
            let mut wl = WorkloadSpec::new(mix, 8_000.0);
            if overload {
                wl = inject_all(wl, if write { ClassId(3) } else { ClassId(2) });
            }
            (db.server_config(), wl)
        }
        "PostgreSQL" => {
            let db = MiniDb::new(MiniDbConfig {
                seed,
                ..Default::default()
            });
            let mix = if write {
                vec![
                    db.select_with_io(0.2, 60_000),
                    db.row_update(0.8),
                    db.vacuum(250, 10_000_000),
                    db.bulk_write(2_000_000_000),
                ]
            } else {
                vec![
                    db.select_with_io(0.9, 60_000),
                    db.row_update(0.1),
                    db.vacuum(250, 10_000_000),
                    db.bulk_write(2_000_000_000),
                ]
            };
            let mut wl = WorkloadSpec::new(mix, 6_000.0);
            if overload {
                wl = if write {
                    inject_all(wl, ClassId(3))
                } else {
                    wl.recurring(ClassId(2), disturb, SimTime::from_millis(4_000))
                };
            }
            (db.server_config(), wl)
        }
        "Apache" => {
            let ws = WebServer::new(WebServerConfig {
                seed,
                ..Default::default()
            });
            let slow_weight = if overload { 0.0005 } else { 0.0 };
            let wl = WorkloadSpec::new(
                vec![
                    ws.http_request(1.0),
                    ws.slow_script(slow_weight, 20_000_000_000),
                ],
                5_000.0,
            );
            (ws.server_config(), wl)
        }
        "Elasticsearch" | "Solr" => {
            let app_ = SearchApp::new(SearchConfig {
                seed,
                ..Default::default()
            });
            let mix = if write {
                vec![
                    app_.search(0.3),
                    app_.index_doc(0.7),
                    app_.big_search(0.0, 30_000),
                    app_.big_update(0.0, 2_000_000_000),
                    app_.nested_range(0.0, 3_000_000_000),
                    app_.complex_boolean(0.0, 2_000_000_000),
                ]
            } else {
                vec![
                    app_.search(0.9),
                    app_.index_doc(0.1),
                    app_.big_search(0.0, 30_000),
                    app_.big_update(0.0, 2_000_000_000),
                    app_.nested_range(0.0, 3_000_000_000),
                    app_.complex_boolean(0.0, 2_000_000_000),
                ]
            };
            let mut wl = WorkloadSpec::new(mix, 8_000.0);
            if overload {
                let class = match (app, write) {
                    ("Elasticsearch", false) => ClassId(2), // big search
                    ("Elasticsearch", true) => ClassId(3),  // big update
                    (_, false) => ClassId(4),               // nested range (Solr)
                    (_, true) => ClassId(5),                // complex boolean
                };
                wl = inject_all(wl, class);
            }
            (app_.server_config(), wl)
        }
        other => panic!("unknown app {other}"),
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let rc = opts.run_config();
    let (duration, warmup) = (rc.duration, rc.warmup);
    let mut jobs = Vec::new();
    for app in APPS {
        for workload in WORKLOADS {
            jobs.push((app, workload));
        }
    }
    let seed = opts.seed;
    let results = parallel_map(jobs, move |(app, workload)| {
        let run_one = |with_atropos: bool| {
            let (cfg, wl) = build(app, workload, seed, duration);
            if with_atropos {
                // Cancellation disabled: tracing + decisions only (§5.5).
                SimServer::new_with(cfg, wl, |clock, groups| {
                    Box::new(AtroposController::new(
                        AtroposConfig::default().with_slo_ns(20_000_000),
                        clock,
                        groups,
                        false,
                    ))
                })
                .run(duration, warmup)
            } else {
                let (cfg, wl) = build(app, workload, seed, duration);
                SimServer::new(cfg, wl, Box::new(NoControl)).run(duration, warmup)
            }
        };
        let base = run_one(false);
        let traced = run_one(true);
        let tput_ratio = traced.completed as f64 / base.completed.max(1) as f64;
        let p99_ratio = traced.latency.p99() as f64 / base.latency.p99().max(1) as f64;
        (app, workload, tput_ratio, p99_ratio)
    });

    let mut table = Table::new(vec!["app", "workload", "tput ratio", "p99 ratio"]);
    let mut rows = Vec::new();
    let mut normal = Vec::new();
    let mut over = Vec::new();
    for (app, workload, t, p) in &results {
        table.row(vec![
            app.to_string(),
            workload.to_string(),
            format!("{t:.3}"),
            format!("{p:.3}"),
        ]);
        if workload.contains("Overload") {
            over.push(1.0 - t.min(1.0));
        } else {
            normal.push(1.0 - t.min(1.0));
        }
        rows.push(json!({
            "app": app, "workload": workload,
            "throughput_ratio": t, "p99_ratio": p,
        }));
    }
    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let summary = format!(
        "average throughput reduction: normal {:.2}%, overload {:.2}%\n",
        avg(&normal) * 100.0,
        avg(&over) * 100.0
    );
    ExpReport {
        id: "fig14".into(),
        title: "Figure 14: Overhead of Atropos (cancellation disabled)".into(),
        text: format!("{}{}", table.render(), summary),
        data: json!({ "cells": rows }),
    }
}
