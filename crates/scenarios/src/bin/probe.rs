//! Diagnostic probe: all 16 cases under NoControl vs Atropos, one row per
//! case — the fastest way to eyeball calibration after changing a case or
//! a framework default. `--quick` shortens the runs; `--episodes` runs
//! the Atropos side under the decision-trace observer and dumps each
//! case's folded episode log (why every cancellation was issued) after
//! the table.
//!
//! ```console
//! $ cargo run --release -p atropos-scenarios --bin probe
//! $ cargo run --release -p atropos-scenarios --bin probe -- --quick --episodes
//! ```

use atropos_scenarios::{
    all_cases, calibrate, run_atropos_observed, run_with, ControllerKind, RunConfig,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let episodes = std::env::args().any(|a| a == "--episodes");
    let rc = if quick {
        RunConfig::quick(42)
    } else {
        RunConfig::full(42)
    };
    let cases = all_cases();
    let results = atropos_scenarios::runner::parallel_map(cases, |case| {
        let baseline = calibrate(&case, &rc);
        let none = run_with(&case, ControllerKind::None, &rc, &baseline);
        if episodes {
            let obs = run_atropos_observed(&case, &rc, &baseline);
            let log = atropos_obs::render_episodes(&obs.episodes);
            (case.id, baseline, none, obs.result, log)
        } else {
            let atr = run_with(&case, ControllerKind::Atropos, &rc, &baseline);
            (case.id, baseline, none, atr, String::new())
        }
    });
    println!(
        "{:<5} {:>9} {:>8} | {:>6} {:>8} | {:>6} {:>8} {:>7} {:>5} {:>5}",
        "case",
        "base_qps",
        "base_p99",
        "n.tput",
        "n.p99",
        "a.tput",
        "a.p99",
        "a.drop",
        "canc",
        "retr"
    );
    for (id, b, n, a, _) in &results {
        println!(
            "{:<5} {:>9.0} {:>7.1}ms | {:>6.2} {:>8.1} | {:>6.2} {:>8.1} {:>6.3}% {:>5} {:>5}",
            id,
            b.summary.throughput_qps(),
            b.summary.p99_ns as f64 / 1e6,
            n.normalized.throughput,
            n.normalized.p99,
            a.normalized.throughput,
            a.normalized.p99,
            a.normalized.drop_rate * 100.0,
            a.summary.canceled,
            a.summary.retried
        );
    }
    if episodes {
        for (id, _, _, _, log) in &results {
            if log.is_empty() {
                println!("\n{id}: no decision episodes");
            } else {
                println!("\n{id}: decision episodes");
                for line in log.lines() {
                    println!("  {line}");
                }
            }
        }
    }
}
