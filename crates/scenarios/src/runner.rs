//! Case execution: calibration, controller construction, normalization.
//!
//! Mirrors the paper's methodology: each case first runs *without* the
//! noisy classes under no control to obtain the application's baseline
//! throughput and tail latency; the SLO is then set to tolerate a
//! configured latency increase over that baseline (20% by default, §5.3),
//! and the overloaded variant runs under the controller being evaluated.
//! All reported metrics are normalized against the baseline run.

use std::sync::Mutex;

use atropos::{AtroposConfig, PolicyKind};
use atropos_app::glue::{AtroposController, OverheadModel};
use atropos_app::server::SimServer;
use atropos_app::{Controller, NoControl};
use atropos_baselines::{
    breakwater::Breakwater,
    dagor::Dagor,
    darc::{Darc, DarcConfig},
    parties::{Parties, PartiesConfig},
    pbox::{PBox, PBoxConfig},
    protego::Protego,
    seda::Seda,
};
use atropos_metrics::{NormalizedSummary, RunSummary};
use atropos_sim::SimTime;

use crate::cases::{CaseDef, CaseHints, CaseParams};

/// Which controller a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// Uncontrolled (the "Overload" line of Figure 10).
    None,
    /// Atropos with the multi-objective policy (the paper's system).
    Atropos,
    /// Atropos with the §5.4 single-resource heuristic policy.
    AtroposHeuristic,
    /// Atropos with the §5.4 current-usage policy.
    AtroposCurrentUsage,
    /// Protego (victim shedding + admission control).
    Protego,
    /// pBox (isolation: throttling + quotas, no drops).
    PBox,
    /// DARC (request-type-aware worker reservation).
    Darc,
    /// PARTIES (client-level partition adjustment).
    Parties,
    /// Breakwater (credit-based admission control).
    Breakwater,
    /// SEDA (adaptive per-stage rate control).
    Seda,
    /// DAGOR (priority-based admission, WeChat).
    Dagor,
}

impl ControllerKind {
    /// Label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ControllerKind::None => "Overload",
            ControllerKind::Atropos => "Atropos",
            ControllerKind::AtroposHeuristic => "Heuristic",
            ControllerKind::AtroposCurrentUsage => "CurrentUsage",
            ControllerKind::Protego => "Protego",
            ControllerKind::PBox => "pBox",
            ControllerKind::Darc => "DARC",
            ControllerKind::Parties => "PARTIES",
            ControllerKind::Breakwater => "Breakwater",
            ControllerKind::Seda => "SEDA",
            ControllerKind::Dagor => "DAGOR",
        }
    }

    /// The five systems compared in Figure 9.
    pub fn comparison_set() -> [ControllerKind; 5] {
        [
            ControllerKind::Atropos,
            ControllerKind::Protego,
            ControllerKind::PBox,
            ControllerKind::Darc,
            ControllerKind::Parties,
        ]
    }
}

/// Per-run configuration shared by all experiments.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total virtual run time.
    pub duration: SimTime,
    /// Warmup excluded from metrics.
    pub warmup: SimTime,
    /// Arrival-rate scale (1.0 = the case's default).
    pub load_scale: f64,
    /// SLO latency-increase tolerance over baseline p99 (0.2 = 20%).
    pub slo_threshold: f64,
    /// Whether Atropos may actually invoke the initiator (disabled to
    /// isolate tracing overhead in Figure 14).
    pub cancellation_enabled: bool,
    /// Tracing-cost model; `None` uses the default.
    pub overhead: Option<OverheadModel>,
    /// Override for Atropos' minimum interval between cancellations
    /// (the §5.3 aggressiveness/recovery knob); `None` keeps the default.
    pub cancel_min_interval_ns: Option<u64>,
}

impl RunConfig {
    /// The full-length configuration used for recorded results.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            duration: SimTime::from_secs(12),
            warmup: SimTime::from_secs(2),
            load_scale: 1.0,
            slo_threshold: 0.2,
            cancellation_enabled: true,
            overhead: None,
            cancel_min_interval_ns: None,
        }
    }

    /// A shorter configuration for smoke tests / `--quick`.
    pub fn quick(seed: u64) -> Self {
        Self {
            duration: SimTime::from_secs(7),
            warmup: SimTime::from_millis(1_500),
            ..Self::full(seed)
        }
    }

    /// Case parameters derived from this run config.
    pub fn case_params(&self) -> CaseParams {
        CaseParams {
            seed: self.seed,
            load_scale: self.load_scale,
            disturb_at: SimTime::from_millis(2_500).max(self.warmup),
            duration: self.duration,
        }
    }

    fn measured_ns(&self) -> u64 {
        self.duration.saturating_sub(self.warmup).as_nanos()
    }
}

/// The calibrated baseline of a case.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Non-overloaded performance under no control.
    pub summary: RunSummary,
    /// Derived latency SLO (baseline p99 × (1 + threshold)).
    pub slo_ns: u64,
}

/// One controller run against a case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Raw run summary.
    pub summary: RunSummary,
    /// Normalized against the case baseline.
    pub normalized: NormalizedSummary,
}

fn summarize(
    label: &str,
    metrics: &atropos_app::server::ServerMetrics,
    duration_ns: u64,
) -> RunSummary {
    RunSummary::from_histogram(
        label,
        duration_ns,
        metrics.offered,
        metrics.dropped,
        metrics.canceled,
        metrics.retried,
        &metrics.latency,
    )
}

/// Runs the undisturbed case under no control and derives the SLO.
pub fn calibrate(case: &CaseDef, rc: &RunConfig) -> Baseline {
    let built = case.build(&rc.case_params(), false);
    let metrics = SimServer::new(built.server, built.workload, Box::new(NoControl))
        .run(rc.duration, rc.warmup);
    let summary = summarize("baseline", &metrics, rc.measured_ns());
    let slo_ns = (summary.p99_ns as f64 * (1.0 + rc.slo_threshold)) as u64;
    Baseline { summary, slo_ns }
}

fn build_plain_controller(
    kind: ControllerKind,
    slo_ns: u64,
    hints: &CaseHints,
) -> Box<dyn Controller> {
    match kind {
        ControllerKind::None => Box::new(NoControl),
        ControllerKind::Protego => Box::new(Protego::new(slo_ns).exempt(hints.slo_exempt.clone())),
        ControllerKind::PBox => Box::new(PBox::new(PBoxConfig::new(slo_ns, hints.pools.clone()))),
        ControllerKind::Darc => Box::new(Darc::new(DarcConfig::new(hints.workers))),
        ControllerKind::Parties => Box::new(Parties::new(PartiesConfig::new(
            slo_ns,
            hints.pools.clone(),
        ))),
        ControllerKind::Breakwater => Box::new(Breakwater::new(slo_ns)),
        ControllerKind::Seda => Box::new(Seda::new(slo_ns)),
        ControllerKind::Dagor => Box::new(Dagor::new(slo_ns / 2)),
        ControllerKind::Atropos
        | ControllerKind::AtroposHeuristic
        | ControllerKind::AtroposCurrentUsage => {
            unreachable!("Atropos controllers are built with the server clock")
        }
    }
}

fn atropos_policy(kind: ControllerKind) -> Option<PolicyKind> {
    match kind {
        ControllerKind::Atropos => Some(PolicyKind::MultiObjective),
        ControllerKind::AtroposHeuristic => Some(PolicyKind::Heuristic),
        ControllerKind::AtroposCurrentUsage => Some(PolicyKind::CurrentUsage),
        _ => None,
    }
}

/// Runs the overloaded case under the given controller.
pub fn run_with(
    case: &CaseDef,
    kind: ControllerKind,
    rc: &RunConfig,
    baseline: &Baseline,
) -> CaseResult {
    let built = case.build(&rc.case_params(), true);
    let metrics = if let Some(policy) = atropos_policy(kind) {
        let mut cfg = AtroposConfig::default()
            .with_slo_ns(baseline.slo_ns)
            .with_policy(policy);
        if let Some(interval) = rc.cancel_min_interval_ns {
            cfg.cancel_min_interval_ns = interval;
        }
        let enabled = rc.cancellation_enabled;
        let overhead = rc.overhead;
        SimServer::new_with(built.server, built.workload, |clock, groups| {
            let mut c = AtroposController::new(cfg, clock, groups, enabled);
            if let Some(o) = overhead {
                c = c.with_overhead(o);
            }
            Box::new(c)
        })
        .run(rc.duration, rc.warmup)
    } else {
        let controller = build_plain_controller(kind, baseline.slo_ns, &built.hints);
        SimServer::new(built.server, built.workload, controller).run(rc.duration, rc.warmup)
    };
    let summary = summarize(kind.label(), &metrics, rc.measured_ns());
    let normalized = summary.normalized_against(&baseline.summary);
    CaseResult {
        summary,
        normalized,
    }
}

/// Runs the overloaded case under Atropos and returns the runtime handle
/// alongside the result, for tests and diagnostics that inspect the
/// estimator's view (which resource was bottlenecked, how many candidate
/// overloads fired, cancellation counters).
pub fn run_atropos_with_handle(
    case: &CaseDef,
    rc: &RunConfig,
    baseline: &Baseline,
) -> (CaseResult, std::sync::Arc<atropos::AtroposRuntime>) {
    let built = case.build(&rc.case_params(), true);
    let cfg = AtroposConfig::default().with_slo_ns(baseline.slo_ns);
    let handle = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let h2 = handle.clone();
    let metrics = SimServer::new_with(built.server, built.workload, move |clock, groups| {
        let c = AtroposController::new(cfg, clock, groups, true);
        *h2.lock() = Some(c.runtime());
        Box::new(c)
    })
    .run(rc.duration, rc.warmup);
    let rt = handle.lock().take().expect("controller constructed");
    let summary = summarize("Atropos", &metrics, rc.measured_ns());
    let normalized = summary.normalized_against(&baseline.summary);
    (
        CaseResult {
            summary,
            normalized,
        },
        rt,
    )
}

/// An Atropos case run with the decision-trace observer attached: the
/// normalized result plus everything needed to *explain* the run — the
/// runtime handle, folded decision episodes, the metrics snapshot, and
/// the application-side cancel log (who was actually canceled, with
/// workload-class names resolved).
pub struct ObservedRun {
    /// Raw + normalized performance result.
    pub result: CaseResult,
    /// The Atropos runtime, for estimator/cancel introspection.
    pub runtime: std::sync::Arc<atropos::AtroposRuntime>,
    /// Decision episodes folded from the flight recorder.
    pub episodes: Vec<atropos_obs::DecisionEpisode>,
    /// Metrics registry snapshot at the end of the run.
    pub metrics: atropos_obs::MetricsSnapshot,
    /// Executed cancellations as `(class name, request id)` in issue order.
    pub cancel_log: Vec<(String, u64)>,
}

/// [`run_atropos_with_handle`] with an [`atropos_obs::Observer`]
/// installed: the same simulation plus a full decision trace. The ring is
/// sized generously (32768 events) so golden runs never overwrite.
pub fn run_atropos_observed(case: &CaseDef, rc: &RunConfig, baseline: &Baseline) -> ObservedRun {
    let built = case.build(&rc.case_params(), true);
    let class_names: Vec<String> = built
        .workload
        .classes
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let mut cfg = AtroposConfig::default().with_slo_ns(baseline.slo_ns);
    if let Some(interval) = rc.cancel_min_interval_ns {
        cfg.cancel_min_interval_ns = interval;
    }
    let handle = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let h2 = handle.clone();
    let metrics = SimServer::new_with(built.server, built.workload, move |clock, groups| {
        let c = AtroposController::new(cfg, clock, groups, true);
        let rt = c.runtime();
        let obs = atropos_obs::Observer::install(&rt, 32_768);
        *h2.lock() = Some((rt, obs));
        Box::new(c)
    })
    .run(rc.duration, rc.warmup);
    let (rt, obs) = handle.lock().take().expect("controller constructed");
    let names = atropos_obs::ResourceNames::from_snapshot(&rt.debug_snapshot());
    let episodes = obs.drain_episodes(&names);
    let cancel_log = metrics
        .cancel_log
        .iter()
        .map(|r| {
            let class = class_names
                .get(r.class.0 as usize)
                .cloned()
                .unwrap_or_else(|| format!("class-{}", r.class.0));
            (class, r.req.0)
        })
        .collect();
    let summary = summarize("Atropos", &metrics, rc.measured_ns());
    let normalized = summary.normalized_against(&baseline.summary);
    ObservedRun {
        result: CaseResult {
            summary,
            normalized,
        },
        runtime: rt,
        episodes,
        metrics: obs.metrics(),
        cancel_log,
    }
}

/// Runs `f` over `items` on up to `available_parallelism` worker threads,
/// preserving input order. Results are deterministic because each item's
/// simulation is self-contained and seeded.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let work: Mutex<Vec<Option<T>>> = Mutex::new(items.into_iter().map(Some).collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work.lock().expect("work lock")[i].take().expect("item");
                let r = f(item);
                results.lock().expect("results lock")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("results")
        .into_iter()
        .map(|r| r.expect("all items processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::all_cases;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..64).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn calibration_produces_healthy_baseline() {
        let cases = all_cases();
        let rc = RunConfig::quick(7);
        let b = calibrate(&cases[0], &rc);
        assert!(b.summary.throughput_qps() > 7_000.0);
        assert_eq!(b.summary.dropped, 0);
        assert!(b.slo_ns > b.summary.p99_ns);
    }

    /// The headline claim on case c1: Atropos beats the uncontrolled run
    /// and Protego on throughput while dropping (nearly) nothing.
    #[test]
    fn c1_atropos_beats_uncontrolled_and_protego() {
        let case = &all_cases()[0];
        let rc = RunConfig::quick(7);
        let baseline = calibrate(case, &rc);
        let none = run_with(case, ControllerKind::None, &rc, &baseline);
        let atropos = run_with(case, ControllerKind::Atropos, &rc, &baseline);
        let protego = run_with(case, ControllerKind::Protego, &rc, &baseline);
        // In the short quick-mode window, the uncontrolled convoy's damage
        // lands on whichever axis the scan straddles: completions can be
        // suppressed (throughput collapse) or merely delayed into a
        // catch-up burst (p99 blow-up with intact throughput). Atropos
        // must strictly beat the uncontrolled run on the damaged axis
        // without giving up the other.
        let tput_gain = atropos.normalized.throughput - none.normalized.throughput;
        let p99_ratio = none.normalized.p99 / atropos.normalized.p99.max(1e-9);
        assert!(
            tput_gain > 0.05 || (tput_gain > -0.02 && p99_ratio > 5.0),
            "atropos tput {:.2} vs none {:.2}, p99 {:.1}x vs {:.1}x",
            atropos.normalized.throughput,
            none.normalized.throughput,
            atropos.normalized.p99,
            none.normalized.p99
        );
        assert!(
            atropos.normalized.throughput > 0.85,
            "atropos kept only {:.2}",
            atropos.normalized.throughput
        );
        assert!(atropos.normalized.drop_rate < 0.01);
        assert!(
            protego.normalized.drop_rate > atropos.normalized.drop_rate,
            "protego {:.3} vs atropos {:.3}",
            protego.normalized.drop_rate,
            atropos.normalized.drop_rate
        );
    }

    /// Scenario-level determinism contract for the sharded ingest path:
    /// a full case replay under sharded, batch-drained tracing produces
    /// exactly the numbers the direct global-lock path produces, so every
    /// experiment's pass/fail pattern is independent of the ingest mode.
    #[test]
    fn ingest_mode_does_not_change_case_results() {
        let case = &all_cases()[0];
        let rc = RunConfig::quick(7);
        let baseline = calibrate(case, &rc);
        let run_mode = |mode: atropos::IngestMode| {
            let built = case.build(&rc.case_params(), true);
            let mut cfg = AtroposConfig::default().with_slo_ns(baseline.slo_ns);
            cfg.ingest_mode = mode;
            SimServer::new_with(built.server, built.workload, |clock, groups| {
                Box::new(AtroposController::new(cfg, clock, groups, true))
            })
            .run(rc.duration, rc.warmup)
        };
        let direct = run_mode(atropos::IngestMode::Direct);
        for mode in [atropos::IngestMode::Sharded, atropos::IngestMode::LockFree] {
            let buffered = run_mode(mode);
            assert_eq!(direct.completed, buffered.completed, "{mode:?}");
            assert_eq!(direct.dropped, buffered.dropped, "{mode:?}");
            assert_eq!(direct.canceled, buffered.canceled, "{mode:?}");
            assert_eq!(direct.offered, buffered.offered, "{mode:?}");
            assert_eq!(direct.latency.p99(), buffered.latency.p99(), "{mode:?}");
        }
    }
}
