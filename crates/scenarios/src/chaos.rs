//! Chaos variants of the case studies.
//!
//! The chaos harness (`atropos-chaos`) stresses the runtime with injected
//! protocol faults and cross-checks the simulator against the live
//! harness. Both uses need the same thing from this crate: a *named
//! subset* of the Table 2 cases whose culprit has a live-harness analog,
//! with the culprit's workload classes identified so a decision trace
//! ("who was canceled, in what order") can be classified as
//! culprit-targeted or victim-harming.
//!
//! Three case families qualify:
//!
//! - **lock hog** — c1's backup-behind-scan convoy (a long scan holds the
//!   table locks; `atropos-live` reproduces it as `CulpritKind::LockHog`),
//! - **buffer scan** — c5's full-table dump sweeping the buffer pool
//!   (`CulpritKind::Scan` in the live harness, the paper's Figure 2 bug),
//! - **ticket queue** — the c2/c9 shape, scheduled slow queries draining
//!   the InnoDB concurrency tickets (`CulpritKind::TicketHog` live).

use std::sync::Arc;

use atropos::AtroposRuntime;
use atropos_app::ids::ClassId;
use atropos_app::server::ServerMetrics;
use atropos_app::SimServer;
use atropos_sim::SimTime;

use crate::cases::{all_cases, chaos_ticket_queue_case, CaseDef};
use crate::runner::{calibrate, RunConfig};

/// Which live-harness culprit a chaos variant corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosCulprit {
    /// A long-running task sitting on a synchronization resource
    /// (`atropos_live::CulpritKind::LockHog`).
    LockHog,
    /// A cold sweep evicting the hot set of a memory resource
    /// (`atropos_live::CulpritKind::Scan`).
    BufferScan,
    /// A hog draining a bounded ticket queue dry
    /// (`atropos_live::CulpritKind::TicketHog`).
    TicketQueue,
}

/// One chaos-ready case: the base case plus culprit identity.
#[derive(Debug, Clone)]
pub struct ChaosVariant {
    /// The underlying Table 2 case.
    pub case: CaseDef,
    /// Live-harness culprit analog.
    pub culprit: ChaosCulprit,
    /// Workload classes that *are* the culprit: a correct decision trace
    /// cancels only these.
    pub culprit_classes: Vec<ClassId>,
}

impl ChaosVariant {
    /// True if `class` belongs to the culprit.
    pub fn is_culprit_class(&self, class: ClassId) -> bool {
        self.culprit_classes.contains(&class)
    }
}

/// The chaos-ready variants of the case suite.
pub fn chaos_variants() -> Vec<ChaosVariant> {
    let case = |id: &str| {
        all_cases()
            .into_iter()
            .find(|c| c.id == id)
            .unwrap_or_else(|| panic!("case {id} not defined"))
    };
    vec![
        ChaosVariant {
            case: case("c1"),
            culprit: ChaosCulprit::LockHog,
            // ClassId(2) = the 3 s table scan, ClassId(3) = the backup it
            // convoys; both are the disturbance, neither is a victim.
            culprit_classes: vec![ClassId(2), ClassId(3)],
        },
        ChaosVariant {
            case: case("c5"),
            culprit: ChaosCulprit::BufferScan,
            // ClassId(2) = the full-table dump sweeping the buffer pool.
            culprit_classes: vec![ClassId(2)],
        },
        ChaosVariant {
            case: chaos_ticket_queue_case(),
            culprit: ChaosCulprit::TicketQueue,
            // ClassId(2) = the scheduled slow query pinning a ticket.
            culprit_classes: vec![ClassId(2)],
        },
    ]
}

/// The variant matching a culprit kind.
pub fn variant_for(culprit: ChaosCulprit) -> ChaosVariant {
    chaos_variants()
        .into_iter()
        .find(|v| v.culprit == culprit)
        .expect("every culprit kind has a variant")
}

/// Result of one seeded chaos-variant run under Atropos.
pub struct ChaosRun {
    /// Full server metrics, including the cancellation decision trace
    /// (`metrics.cancel_log`).
    pub metrics: ServerMetrics,
    /// The Atropos runtime, for `debug_snapshot()` inspection.
    pub runtime: Arc<AtroposRuntime>,
    /// The SLO the run was calibrated to.
    pub slo_ns: u64,
    /// When the disturbance (culprit injection) began.
    pub disturb_at: SimTime,
}

/// Runs a chaos variant under Atropos on `seed` and returns the decision
/// trace alongside the runtime handle.
///
/// Uses the quick run configuration (7 s of virtual time): chaos and
/// differential tests care about decision identity and invariants, not
/// about figure-grade latency curves.
pub fn run_variant(variant: &ChaosVariant, seed: u64) -> ChaosRun {
    let rc = RunConfig::quick(seed);
    let baseline = calibrate(&variant.case, &rc);
    let params = rc.case_params();
    let disturb_at = params.disturb_at;
    let built = variant.case.build(&params, true);
    let cfg = atropos::AtroposConfig::default().with_slo_ns(baseline.slo_ns);
    let handle = Arc::new(parking_lot::Mutex::new(None));
    let h2 = handle.clone();
    let metrics = SimServer::new_with(built.server, built.workload, move |clock, groups| {
        let c = atropos_app::glue::AtroposController::new(cfg, clock, groups, true);
        *h2.lock() = Some(c.runtime());
        Box::new(c)
    })
    .run(rc.duration, rc.warmup);
    let runtime = handle.lock().take().expect("controller constructed");
    ChaosRun {
        metrics,
        runtime,
        slo_ns: baseline.slo_ns,
        disturb_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_cover_every_culprit_kind() {
        let vs = chaos_variants();
        assert_eq!(vs.len(), 3);
        assert!(vs.iter().any(|v| v.culprit == ChaosCulprit::LockHog));
        assert!(vs.iter().any(|v| v.culprit == ChaosCulprit::BufferScan));
        assert!(vs.iter().any(|v| v.culprit == ChaosCulprit::TicketQueue));
        let hog = variant_for(ChaosCulprit::LockHog);
        assert_eq!(hog.case.id, "c1");
        assert!(hog.is_culprit_class(ClassId(2)));
        assert!(!hog.is_culprit_class(ClassId(0)));
        let tq = variant_for(ChaosCulprit::TicketQueue);
        assert_eq!(tq.case.id, "c2tq");
        assert!(tq.is_culprit_class(ClassId(2)));
    }
}
