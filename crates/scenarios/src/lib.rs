#![warn(missing_docs)]

//! The 16 reproduced overload cases and the experiment harness.
//!
//! This crate is the reproduction's "evaluation section": it defines the
//! 16 real-world overload scenarios of Table 2 over the simulated
//! applications ([`cases`]), runs them under any of the compared
//! controllers with SLO calibration against a non-overloaded baseline
//! ([`runner`]), and regenerates every figure and table of the paper
//! ([`experiments`]).

pub mod cases;
pub mod chaos;
pub mod experiments;
pub mod runner;

pub use cases::{all_cases, CaseDef, CaseHints, CaseParams};
pub use chaos::{chaos_variants, ChaosCulprit, ChaosVariant};
pub use runner::{
    calibrate, run_atropos_observed, run_with, Baseline, CaseResult, ControllerKind, ObservedRun,
    RunConfig,
};
