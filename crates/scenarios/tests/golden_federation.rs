//! Golden decision-trace regression suite over the federation scenarios.
//!
//! Each federated cascading-overload scenario runs quiet (no armed node
//! faults — the edge faults the kind itself defines stay on) at two
//! pinned seeds, and the run is reduced to a stable fingerprint: which
//! roots were canceled end to end, which node-qualified resources the
//! episodes blamed, how many cancellations crossed upstream (bucketed),
//! and the window the culprit root's cancel reached the frontend. The
//! fingerprints are compared against checked-in
//! `tests/golden/fed_<kind>.json` files.
//!
//! To regenerate after an intentional detector/policy/edge change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -q -p atropos-scenarios golden_federation
//! ```

use std::path::PathBuf;

use atropos_fed::{run_fed_scenario, FedScenarioKind};
use serde::{Deserialize, Serialize};

/// Same pinned seeds as the single-node golden suite.
const SEEDS: [u64; 2] = [7, 20250806];

/// One seed's federation fingerprint for one scenario kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenEntry {
    seed: u64,
    /// Root keys canceled end to end at the frontend (sorted).
    canceled_roots: Vec<u64>,
    /// Node-qualified resources episodes blamed, e.g. `"n1/shard_lock"`
    /// (sorted, deduped).
    blamed_resources: Vec<String>,
    /// Bucketed count of upstream cancellations across all edges:
    /// "0", "1", "2-3", "4-7", or "8+".
    upstream_bucket: String,
    /// Window the culprit root's cancellation reached the frontend.
    root_cancel_window: Option<u64>,
}

/// The checked-in snapshot for one scenario kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenCase {
    case: String,
    entries: Vec<GoldenEntry>,
}

fn bucket(n: u64) -> String {
    match n {
        0 => "0",
        1 => "1",
        2..=3 => "2-3",
        4..=7 => "4-7",
        _ => "8+",
    }
    .to_string()
}

fn fingerprint(kind: FedScenarioKind, seed: u64) -> GoldenEntry {
    let out = run_fed_scenario(kind, seed, false);
    assert!(
        out.violation.is_none(),
        "{} seed {seed}: {:?}",
        kind.name(),
        out.violation
    );
    let mut roots: Vec<u64> = out.canceled_roots.iter().map(|(_, k)| *k).collect();
    roots.sort_unstable();
    GoldenEntry {
        seed,
        canceled_roots: roots,
        blamed_resources: out.blamed_resources.clone(),
        upstream_bucket: bucket(out.edge_stats.iter().map(|s| s.upstream_cancels).sum()),
        root_cancel_window: out.root_cancel_window,
    }
}

fn golden_path(kind: FedScenarioKind) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("fed_{}.json", kind.name()))
}

#[test]
fn golden_federation_across_the_3_scenarios() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let mut failures = Vec::new();
    for kind in FedScenarioKind::ALL {
        let actual = GoldenCase {
            case: format!("fed_{}", kind.name()),
            entries: SEEDS.iter().map(|&s| fingerprint(kind, s)).collect(),
        };
        let path = golden_path(kind);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, serde_json::to_string_pretty(&actual).unwrap()).unwrap();
            continue;
        }
        let Ok(raw) = std::fs::read_to_string(&path) else {
            failures.push(format!(
                "{}: no golden snapshot at {} (run with UPDATE_GOLDEN=1 to create)",
                actual.case,
                path.display()
            ));
            continue;
        };
        let expected: GoldenCase = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("{}: bad golden JSON: {e}", actual.case));
        if expected != actual {
            failures.push(format!(
                "{}: federation trace diverged from golden snapshot\n  expected: {expected:?}\n  actual:   {actual:?}\n  (if intentional, regenerate with UPDATE_GOLDEN=1)",
                actual.case
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}
