//! Per-case fidelity: Atropos must not only mitigate each case but
//! identify it as a *resource* overload (not regular demand overload) and
//! actually issue cancellations — the distinguishing behaviour Table 2
//! is built to exercise.

use atropos_scenarios::runner::run_atropos_with_handle;
use atropos_scenarios::{all_cases, calibrate, RunConfig};

#[test]
fn every_case_is_classified_as_resource_overload_and_canceled() {
    let rc = RunConfig::full(7);
    let results = atropos_scenarios::runner::parallel_map(all_cases(), |case| {
        let baseline = calibrate(&case, &rc);
        let (result, rt) = run_atropos_with_handle(&case, &rc, &baseline);
        (case.id, result, rt.stats())
    });
    for (id, result, stats) in results {
        assert!(
            stats.candidates > 0,
            "{id}: the detector never flagged a candidate overload"
        );
        assert!(
            stats.resource_overloads > 0,
            "{id}: no candidate was confirmed as a resource overload \
             (regular: {})",
            stats.regular_overloads
        );
        assert!(stats.cancel.issued > 0, "{id}: no cancellation was issued");
        // The framework traced real usage for this case.
        assert!(
            stats.trace_events > 1_000,
            "{id}: only {} trace events",
            stats.trace_events
        );
        // And the mitigation held (coarse bound; the tight bounds live in
        // the workspace-level end-to-end tests).
        assert!(
            result.normalized.throughput > 0.85,
            "{id}: normalized throughput {:.2}",
            result.normalized.throughput
        );
    }
}

/// Confirmed overloads must be attributed to the resource type Table 2
/// declares for the case — or to a documented downstream resource that
/// backs up behind it (victims of a held table lock occupy the InnoDB
/// tickets, so the ticket queue is the *proximate* bottleneck of a lock
/// convoy; the policy still cancels the lock holder because only it has
/// running gains).
#[test]
fn sampled_cases_bottleneck_the_declared_resource_type() {
    use atropos::ResourceType::{Lock, Memory, Queue, System};
    let idx = |t: atropos::ResourceType| match t {
        Lock => 0usize,
        Memory => 1,
        Queue => 2,
        System => 3,
    };
    let picks: [(&str, &[atropos::ResourceType]); 4] = [
        ("c4", &[Lock, Queue]),   // table lock (+ tickets behind it)
        ("c5", &[Memory, Queue]), // buffer pool (+ tickets under thrash)
        ("c9", &[Queue]),         // Apache client pool
        ("c8", &[System, Queue]), // vacuum IO (+ worker pool behind it)
    ];
    let rc = RunConfig::full(7);
    let cases: Vec<_> = all_cases()
        .into_iter()
        .filter(|c| picks.iter().any(|(id, _)| *id == c.id))
        .collect();
    let results = atropos_scenarios::runner::parallel_map(cases, |case| {
        let baseline = calibrate(&case, &rc);
        let (_, rt) = run_atropos_with_handle(&case, &rc, &baseline);
        (case.id, rt.stats().overloads_by_type)
    });
    for (id, by_type) in results {
        let allowed = picks
            .iter()
            .find(|(cid, _)| *cid == id)
            .map(|(_, t)| *t)
            .expect("picked case");
        let total: u64 = by_type.iter().sum();
        assert!(total > 0, "{id}: no resource overloads confirmed");
        let attributed: u64 = allowed.iter().map(|&t| by_type[idx(t)]).sum();
        assert!(
            attributed * 2 > total,
            "{id}: confirmed overloads by type {by_type:?} are not \
             dominated by the declared resources {allowed:?}"
        );
    }
}
