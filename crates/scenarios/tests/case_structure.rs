//! Structural checks over the case registry that don't require any
//! simulation: injection schedules, noisy-class client isolation, and
//! controller hints.

use atropos_app::ids::ClientId;
use atropos_scenarios::{all_cases, CaseParams};

#[test]
fn overload_builds_are_deterministic_in_structure() {
    let params = CaseParams::default();
    for case in all_cases() {
        let a = case.build(&params, true);
        let b = case.build(&params, true);
        assert_eq!(
            a.workload.injections.len(),
            b.workload.injections.len(),
            "{}",
            case.id
        );
        assert_eq!(
            a.workload.background.len(),
            b.workload.background.len(),
            "{}",
            case.id
        );
        assert_eq!(a.workload.classes.len(), b.workload.classes.len());
        assert_eq!(a.server.workers, b.server.workers);
    }
}

#[test]
fn injections_happen_after_the_disturb_time_and_before_the_end() {
    let params = CaseParams::default();
    for case in all_cases() {
        let built = case.build(&params, true);
        for inj in &built.workload.injections {
            assert!(inj.at >= params.disturb_at, "{}: early injection", case.id);
            assert!(inj.at < params.duration, "{}: late injection", case.id);
        }
        for bg in &built.workload.background {
            assert!(
                bg.start >= params.disturb_at,
                "{}: early background",
                case.id
            );
        }
    }
}

#[test]
fn noisy_foreground_classes_have_dedicated_clients() {
    // Client-level isolation baselines (pBox quotas, PARTIES partitions)
    // must be able to target the offender without collateral damage.
    let params = CaseParams::default();
    for case in all_cases() {
        let built = case.build(&params, true);
        for class_id in &built.hints.slo_exempt {
            let spec = &built.workload.classes[class_id.0 as usize];
            if spec.background {
                continue; // background jobs carry no client latency
            }
            assert!(
                matches!(spec.client, Some(ClientId(c)) if c >= 100),
                "{}: noisy class {} shares a client with the victims",
                case.id,
                spec.name
            );
        }
    }
}

#[test]
fn hints_reference_valid_classes_and_pools() {
    let params = CaseParams::default();
    for case in all_cases() {
        let built = case.build(&params, true);
        for class_id in &built.hints.slo_exempt {
            assert!(
                (class_id.0 as usize) < built.workload.classes.len(),
                "{}: exempt class out of range",
                case.id
            );
        }
        for pool in &built.hints.pools {
            assert!(
                (pool.0 as usize) < built.server.pools.len(),
                "{}: hint pool out of range",
                case.id
            );
        }
        assert_eq!(built.hints.workers, built.server.workers, "{}", case.id);
    }
}

#[test]
fn baseline_variant_omits_every_noisy_trigger() {
    let params = CaseParams::default();
    for case in all_cases() {
        let built = case.build(&params, false);
        assert!(built.workload.injections.is_empty(), "{}", case.id);
        assert!(built.workload.background.is_empty(), "{}", case.id);
        for spec in &built.workload.classes {
            // Noisy classes exist in the baseline class list (so ids are
            // stable) but must carry zero weight.
            if spec.background {
                assert_eq!(spec.weight, 0.0, "{}: weighted background", case.id);
            }
        }
        let total: f64 = built.workload.classes.iter().map(|c| c.weight).sum();
        assert!(total > 0.9, "{}: baseline mix underweighted", case.id);
    }
}
