//! Golden decision-trace regression suite over the 16 Table-2 cases.
//!
//! Each case runs under Atropos with the decision-trace observer at two
//! pinned seeds; the folded episodes and the application-side cancel log
//! are reduced to a stable fingerprint — *which op classes were blamed,
//! on which resources, and how many cancellations were issued* (bucketed,
//! so cosmetic timing shifts don't churn the snapshots) — and compared
//! against checked-in `tests/golden/<case>.json` files.
//!
//! To regenerate after an intentional detector/policy change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -q -p atropos-scenarios golden
//! ```

use std::path::PathBuf;

use atropos_scenarios::{
    all_cases, calibrate, run_atropos_observed, runner::parallel_map, RunConfig,
};
use serde::{Deserialize, Serialize};

/// The two pinned seeds the suite (and the CI `golden` job) runs on.
const SEEDS: [u64; 2] = [7, 20250806];

/// One seed's decision fingerprint for one case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenEntry {
    seed: u64,
    /// Distinct workload classes whose requests were canceled (sorted).
    culprit_classes: Vec<String>,
    /// Distinct resources episodes assigned blame on (sorted).
    blamed_resources: Vec<String>,
    /// Bucketed count of delivered cancellations: "0", "1", "2-3",
    /// "4-7", or "8+".
    cancel_bucket: String,
}

/// The checked-in snapshot for one case: one entry per pinned seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenCase {
    case: String,
    entries: Vec<GoldenEntry>,
}

fn bucket(n: usize) -> String {
    match n {
        0 => "0",
        1 => "1",
        2..=3 => "2-3",
        4..=7 => "4-7",
        _ => "8+",
    }
    .to_string()
}

fn sorted_dedup(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v.dedup();
    v
}

fn fingerprint(case_idx: usize, seed: u64) -> GoldenEntry {
    let case = &all_cases()[case_idx];
    let rc = RunConfig::quick(seed);
    let baseline = calibrate(case, &rc);
    let run = run_atropos_observed(case, &rc, &baseline);
    GoldenEntry {
        seed,
        culprit_classes: sorted_dedup(run.cancel_log.iter().map(|(c, _)| c.clone()).collect()),
        blamed_resources: sorted_dedup(
            run.episodes
                .iter()
                .filter(|e| e.culprit_key.is_some())
                .map(|e| e.resource.clone())
                .collect(),
        ),
        cancel_bucket: bucket(run.cancel_log.len()),
    }
}

fn golden_path(case_id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{case_id}.json"))
}

#[test]
fn golden_episodes_across_the_16_cases() {
    let cases = all_cases();
    assert_eq!(cases.len(), 16, "Table 2 has 16 cases");
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");

    // One work item per (case, seed); runs saturate the worker pool.
    let items: Vec<(usize, u64)> = (0..cases.len())
        .flat_map(|i| SEEDS.iter().map(move |&s| (i, s)))
        .collect();
    let entries = parallel_map(items, |(i, seed)| (i, fingerprint(i, seed)));

    let mut failures = Vec::new();
    for (idx, case) in cases.iter().enumerate() {
        let actual = GoldenCase {
            case: case.id.to_string(),
            entries: entries
                .iter()
                .filter(|(i, _)| *i == idx)
                .map(|(_, e)| e.clone())
                .collect(),
        };
        let path = golden_path(case.id);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, serde_json::to_string_pretty(&actual).unwrap()).unwrap();
            continue;
        }
        let Ok(raw) = std::fs::read_to_string(&path) else {
            failures.push(format!(
                "{}: no golden snapshot at {} (run with UPDATE_GOLDEN=1 to create)",
                case.id,
                path.display()
            ));
            continue;
        };
        let expected: GoldenCase = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("{}: bad golden JSON: {e}", case.id));
        if expected != actual {
            let mut diff = format!(
                "{}: decision trace diverged from golden snapshot\n",
                case.id
            );
            for (exp, act) in expected.entries.iter().zip(actual.entries.iter()) {
                if exp != act {
                    diff.push_str(&format!(
                        "  seed {}:\n    expected: classes={:?} resources={:?} cancels={}\n    actual:   classes={:?} resources={:?} cancels={}\n",
                        exp.seed,
                        exp.culprit_classes,
                        exp.blamed_resources,
                        exp.cancel_bucket,
                        act.culprit_classes,
                        act.blamed_resources,
                        act.cancel_bucket,
                    ));
                }
            }
            diff.push_str("  (if intentional, regenerate with UPDATE_GOLDEN=1)");
            failures.push(diff);
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}
