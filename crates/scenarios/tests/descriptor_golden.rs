//! Structural golden suite: the descriptor corpus must round-trip to the
//! exact legacy configurations, for all 16 Table-2 cases plus the chaos
//! ticket-queue variant, at both pinned seeds.
//!
//! Where `golden_episodes.rs` pins what the controller *decides*, this
//! suite pins what the descriptors *build*: the full `ServerConfig`, the
//! workload observables (mix weights, client pins, expanded injection and
//! background schedules), the controller hints, and a seeded sample of
//! every class's `Plan` (hashed — scan plans run to thousands of ops).
//! Any drift in the parser or the `build_case` interpreter shows up as a
//! diff against `tests/golden/descriptor_cases.json`, which was generated
//! from the hard-coded legacy builders' output and is never regenerated
//! implicitly.
//!
//! To regenerate after an intentional descriptor/interpreter change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -q -p atropos-scenarios --test descriptor_golden
//! ```

use std::path::PathBuf;

use atropos_scenarios::cases::{all_cases, chaos_ticket_queue_case, CaseDef, CaseParams};
use atropos_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Same pinned seeds as the decision-trace golden suite.
const SEEDS: [u64; 2] = [7, 20250806];

/// FNV-1a over a string: stable across runs, platforms and toolchains
/// (unlike `DefaultHasher`, whose algorithm is unspecified).
fn fnv1a(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct VariantFingerprint {
    seed: u64,
    overload: bool,
    /// FNV-1a of the full `ServerConfig` Debug rendering.
    server: String,
    qps: f64,
    /// One line per class: name, weight, client pin, flags.
    classes: Vec<String>,
    /// Expanded injection schedule, `<ns>:<class>` per entry, in order.
    injections: Vec<String>,
    /// Background jobs, `<class>:<start_ns>:<interval_ns>`.
    background: Vec<String>,
    workers: usize,
    slo_exempt: Vec<u16>,
    pools: Vec<u32>,
    /// Per class: `<name>:<op_count>:<fnv of the Plan Debug rendering>`,
    /// sampled from a fresh `SimRng` at this seed.
    plans: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenCase {
    case: String,
    variants: Vec<VariantFingerprint>,
}

fn fingerprint(def: &CaseDef, seed: u64, overload: bool) -> VariantFingerprint {
    let params = CaseParams {
        seed,
        ..CaseParams::default()
    };
    let built = def.build(&params, overload);
    let wl = &built.workload;
    VariantFingerprint {
        seed,
        overload,
        server: fnv1a(&format!("{:?}", built.server)),
        qps: wl.arrival_qps,
        classes: wl
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{} w={} client={:?} cancellable={} background={}",
                    c.name, c.weight, c.client, c.cancellable, c.background
                )
            })
            .collect(),
        injections: wl
            .injections
            .iter()
            .map(|i| format!("{}:{}", i.at.as_nanos(), i.class.0))
            .collect(),
        background: wl
            .background
            .iter()
            .map(|b| {
                format!(
                    "{}:{}:{}",
                    b.class.0,
                    b.start.as_nanos(),
                    b.interval.as_nanos()
                )
            })
            .collect(),
        workers: built.hints.workers,
        slo_exempt: built.hints.slo_exempt.iter().map(|c| c.0).collect(),
        pools: built.hints.pools.iter().map(|p| p.0).collect(),
        plans: wl
            .classes
            .iter()
            .map(|c| {
                let plan = (c.make_plan)(&mut SimRng::new(seed));
                format!(
                    "{}:{}:{}",
                    c.name,
                    plan.ops.len(),
                    fnv1a(&format!("{plan:?}"))
                )
            })
            .collect(),
    }
}

fn snapshot() -> Vec<GoldenCase> {
    let mut defs = all_cases();
    defs.push(chaos_ticket_queue_case());
    defs.iter()
        .map(|def| GoldenCase {
            case: def.id.to_string(),
            variants: SEEDS
                .iter()
                .flat_map(|&seed| [false, true].map(|overload| fingerprint(def, seed, overload)))
                .collect(),
        })
        .collect()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("descriptor_cases.json")
}

#[test]
fn corpus_round_trips_to_the_legacy_configs() {
    let current = snapshot();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let body = serde_json::to_string_pretty(&current).unwrap();
        std::fs::write(&path, body + "\n").unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let pinned: Vec<GoldenCase> = serde_json::from_str(&body).expect("parse golden");
    assert_eq!(
        pinned.len(),
        current.len(),
        "case count drifted (got {}, golden {})",
        current.len(),
        pinned.len()
    );
    for (p, c) in pinned.iter().zip(&current) {
        assert_eq!(
            p, c,
            "case `{}` no longer round-trips to its pinned legacy config \
             (if the change is intentional, regenerate with UPDATE_GOLDEN=1)",
            p.case
        );
    }
}

#[test]
fn fingerprints_are_deterministic() {
    // The suite is only meaningful if rebuilding is bit-stable.
    let a = snapshot();
    let b = snapshot();
    assert_eq!(a, b);
}
