//! Identifiers for cancellable tasks and application resources.

use serde::{Deserialize, Serialize};

/// Framework-assigned identifier of a cancellable task.
///
/// Task ids are unique for the lifetime of a runtime; freeing a task does
/// not recycle its id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

/// Developer-provided key identifying a task to the *application*.
///
/// This is what the cancellation initiator receives — e.g. the MySQL thread
/// id passed to `sql_kill` in the paper's Figure 7. If the developer does
/// not provide a key, the framework generates one (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskKey(pub u64);

/// Identifier of a registered application resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// Index into per-task resource stat vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kinds of application resource Atropos unifies (paper §3.2).
///
/// - `Lock`: resources protected by synchronization primitives (table
///   locks, undo-log mutexes, WAL, document/index locks),
/// - `Memory`: application-managed pools and caches (buffer pool, query
///   cache, heap),
/// - `Queue`: application-managed task queues (InnoDB tickets, worker
///   pools),
/// - `System`: system resources (CPU, IO) attributed to tasks — the paper
///   traces these with cgroups; our simulator reports them through the same
///   wait/use event protocol as `Lock`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceType {
    /// Synchronization resources (wait → acquire → release).
    Lock,
    /// Memory resources (acquire/release units, evictions as slow events).
    Memory,
    /// Queue resources (wait in queue → start executing → finish).
    Queue,
    /// System resources (CPU, IO) traced with the wait/use protocol.
    System,
}

impl ResourceType {
    /// All resource types, for exhaustive iteration in tests and benches.
    pub const ALL: [ResourceType; 4] = [
        ResourceType::Lock,
        ResourceType::Memory,
        ResourceType::Queue,
        ResourceType::System,
    ];
}

impl std::fmt::Display for ResourceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ResourceType::Lock => "LOCK",
            ResourceType::Memory => "MEMORY",
            ResourceType::Queue => "QUEUE",
            ResourceType::System => "SYSTEM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_enum_names() {
        assert_eq!(ResourceType::Lock.to_string(), "LOCK");
        assert_eq!(ResourceType::Memory.to_string(), "MEMORY");
        assert_eq!(ResourceType::Queue.to_string(), "QUEUE");
        assert_eq!(ResourceType::System.to_string(), "SYSTEM");
    }

    #[test]
    fn all_contains_each_variant_once() {
        let mut set = std::collections::HashSet::new();
        for t in ResourceType::ALL {
            assert!(set.insert(t));
        }
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn resource_id_index_roundtrip() {
        assert_eq!(ResourceId(7).index(), 7);
    }
}
