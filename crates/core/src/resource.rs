//! The application-resource registry (§3.2).
//!
//! Applications register each resource they want Atropos to manage —
//! MySQL's buffer pool, its table-lock namespace, the InnoDB ticket queue —
//! once at startup. Registration returns a dense [`ResourceId`] used to
//! index per-task usage vectors on the hot path.

use crate::ids::{ResourceId, ResourceType};

/// Metadata about one registered application resource.
#[derive(Debug, Clone)]
pub struct ResourceInfo {
    /// Dense identifier.
    pub id: ResourceId,
    /// Human-readable name (used in experiment output).
    pub name: String,
    /// Which contention model applies.
    pub rtype: ResourceType,
}

/// Registry of application resources.
#[derive(Debug, Default)]
pub struct ResourceRegistry {
    resources: Vec<ResourceInfo>,
}

impl ResourceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource and returns its id.
    pub fn register(&mut self, name: impl Into<String>, rtype: ResourceType) -> ResourceId {
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(ResourceInfo {
            id,
            name: name.into(),
            rtype,
        });
        id
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// True if no resources are registered.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Looks up a resource by id.
    pub fn get(&self, id: ResourceId) -> Option<&ResourceInfo> {
        self.resources.get(id.index())
    }

    /// Iterates over all resources in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ResourceInfo> {
        self.resources.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut r = ResourceRegistry::new();
        let a = r.register("buffer_pool", ResourceType::Memory);
        let b = r.register("table_lock", ResourceType::Lock);
        assert_eq!(a, ResourceId(0));
        assert_eq!(b, ResourceId(1));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn lookup_returns_metadata() {
        let mut r = ResourceRegistry::new();
        let id = r.register("innodb_queue", ResourceType::Queue);
        let info = r.get(id).unwrap();
        assert_eq!(info.name, "innodb_queue");
        assert_eq!(info.rtype, ResourceType::Queue);
        assert!(r.get(ResourceId(99)).is_none());
    }

    #[test]
    fn iter_preserves_registration_order() {
        let mut r = ResourceRegistry::new();
        r.register("a", ResourceType::Lock);
        r.register("b", ResourceType::Memory);
        let names: Vec<&str> = r.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
