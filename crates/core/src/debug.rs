//! Runtime introspection for invariant checkers.
//!
//! [`AtroposRuntime::debug_snapshot`] exposes a consistent point-in-time
//! view of the runtime's internal state — per-task resource accounting,
//! detector counters, and cancel-manager bookkeeping — that the chaos
//! harness (`atropos-chaos`) asserts invariants over after every tick:
//! resource-unit conservation, no negative holds, cancel decisions only
//! targeting live tasks, blame bounded by observed waiting time.
//!
//! The snapshot is deliberately a plain-data copy: taking one drains any
//! buffered trace events first (so counts are exact at the call point) and
//! never hands out references into the locked state, so a checker can hold
//! it across further runtime calls.
//!
//! [`AtroposRuntime::debug_snapshot`]: crate::runtime::AtroposRuntime::debug_snapshot

use crate::cancel::CancelStats;
use crate::ids::{ResourceId, ResourceType, TaskId, TaskKey};
use crate::runtime::RuntimeStats;
use crate::task::{RemoteBlame, RemoteOrigin};

/// A consistent copy of the runtime's internals at one instant.
#[derive(Debug, Clone)]
pub struct DebugSnapshot {
    /// Clock reading when the snapshot was taken (ns).
    pub now_ns: u64,
    /// Registered resources, ordered by [`ResourceId`].
    pub resources: Vec<ResourceDebug>,
    /// Live (registered) tasks, ordered by [`TaskId`].
    pub tasks: Vec<TaskDebug>,
    /// Detector counters.
    pub detector: DetectorDebug,
    /// Cancel-manager bookkeeping.
    pub cancel: CancelDebug,
    /// Aggregate runtime counters (exact: buffered events are drained
    /// before the snapshot is built).
    pub stats: RuntimeStats,
}

impl DebugSnapshot {
    /// The live task registered under `key`, if any.
    pub fn task_by_key(&self, key: TaskKey) -> Option<&TaskDebug> {
        self.tasks.iter().find(|t| t.key == key)
    }
}

/// One registered resource.
#[derive(Debug, Clone)]
pub struct ResourceDebug {
    /// Dense identifier.
    pub id: ResourceId,
    /// Registered name.
    pub name: String,
    /// Contention model.
    pub rtype: ResourceType,
}

/// One live task and its accounting state.
#[derive(Debug, Clone)]
pub struct TaskDebug {
    /// Framework-assigned id.
    pub id: TaskId,
    /// Application-visible key.
    pub key: TaskKey,
    /// True once the cancel initiator was invoked for this task.
    pub cancel_requested: bool,
    /// Whether the policy may select this task.
    pub cancellable: bool,
    /// Background (no-SLO) task.
    pub background: bool,
    /// Reported GetNext progress fraction, if any.
    pub progress: Option<f64>,
    /// Cross-node provenance, if this task proxies a remote root (§4).
    pub origin: Option<RemoteOrigin>,
    /// Cumulative per-resource usage, indexed by [`ResourceId::index`].
    pub usage: Vec<UsageDebug>,
}

/// Cumulative usage counters for one `(task, resource)` pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct UsageDebug {
    /// Units acquired over the task's lifetime.
    pub acquired: u64,
    /// Units freed over the task's lifetime.
    pub freed: u64,
    /// Units currently held.
    pub held: u64,
    /// `slow_by` events observed.
    pub slow_events: u64,
    /// Cumulative `slow_by` amount.
    pub slow_amount: u64,
    /// Cumulative closed waiting time (ns).
    pub total_wait_ns: u64,
    /// Cumulative closed holding time (ns).
    pub total_hold_ns: u64,
}

/// Detector counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectorDebug {
    /// `evaluate` calls (one per tick).
    pub evaluations: u64,
    /// Evaluations that reported a candidate overload.
    pub candidates: u64,
}

/// Cancel-manager bookkeeping.
#[derive(Debug, Clone)]
pub struct CancelDebug {
    /// Every key canceled so far with the runtime-clock time the
    /// initiator was invoked, in issue order (propagated child keys carry
    /// time 0).
    pub canceled_keys: Vec<(TaskKey, u64)>,
    /// Canceled tasks parked awaiting re-execution.
    pub pending_reexec: usize,
    /// The serialized re-execution currently in flight, if any.
    pub outstanding_reexec: Option<TaskKey>,
    /// Cross-node blame attributions (§4): cancels issued here against
    /// tasks proxying a remote root, in issue order.
    pub remote_blame: Vec<RemoteBlame>,
    /// Cancellation counters.
    pub stats: CancelStats,
}
