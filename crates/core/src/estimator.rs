//! Resource-overload estimation (§3.4–§3.5).
//!
//! When the detector reports a candidate overload, the estimator turns the
//! runtime manager's per-task usage windows into two unit-less metrics:
//!
//! - **contention level** per resource — memory: eviction ratio
//!   `ΣEᵢ / ΣMᵢ`; synchronization: wait/use time ratio; queue: queue-wait /
//!   run time ratio — plus the *normalized* form `C_r = D_r / T_exec`
//!   (fraction of window execution time lost to resource `r`) used as the
//!   scalarization weight;
//! - **resource gain** per `(task, resource)` — the usage that cancelling
//!   the task would free, scaled to *future* demand by the GetNext progress
//!   multiplier `(1 − p) / p` (§3.4), so nearly-finished long tasks are not
//!   preferred over just-started hogs.
//!
//! The pass is factored into per-task term derivation
//! ([`derive_task_terms`]) and a global-sum reduction
//! ([`resource_snapshots_from_sums`]) so the incremental
//! [`PolicyIndex`](crate::policy::PolicyIndex) can maintain exactly the
//! same quantities task-by-task instead of rebuilding the snapshot; both
//! engines share these helpers, which is what makes their outputs
//! bit-identical.

use crate::accounting::WindowUsage;
use crate::config::AtroposConfig;
use crate::ids::{ResourceId, ResourceType, TaskId, TaskKey};
use crate::resource::ResourceRegistry;
use crate::task::TaskRecord;

/// Cap applied to raw contention ratios so a zero denominator cannot
/// produce an unusable infinity.
const CONTENTION_CAP: f64 = 1e6;

/// Cap applied to contention when used as a scalarization weight, so one
/// enormous wait/use ratio cannot fully mute every other resource.
const WEIGHT_CAP: f64 = 20.0;

/// Per-resource contention figures for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSnapshot {
    /// Resource id.
    pub id: ResourceId,
    /// Resource type.
    pub rtype: ResourceType,
    /// Raw contention level (eviction ratio or wait/use ratio).
    pub contention: f64,
    /// Normalized contention `C_r = D_r / T_exec` in the window.
    pub normalized: f64,
    /// Scalarization weight: `normalized` rescaled so weights sum to 1
    /// across resources with non-zero contention.
    pub weight: f64,
    /// Total waiting time attributed to this resource in the window (ns).
    pub wait_ns: u64,
    /// Total holding/usage time in the window (ns).
    pub hold_ns: u64,
    /// Units acquired in the window.
    pub acquired: u64,
    /// Slow-by amount in the window (e.g. evictions).
    pub slow_amount: u64,
}

/// Per-task gains for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGainSnapshot {
    /// Task id.
    pub task: TaskId,
    /// Application key.
    pub key: TaskKey,
    /// Whether the policy may cancel this task.
    pub cancellable: bool,
    /// Future-scaled resource gain per resource, normalized to `[0, 1]` by
    /// the per-resource maximum (indexed by `ResourceId::index()`).
    pub gains: Vec<f64>,
    /// Current-usage gain per resource (the §5.4 ablation), normalized the
    /// same way.
    pub current: Vec<f64>,
    /// Reported progress, if any.
    pub progress: Option<f64>,
}

/// Output of one estimation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorSnapshot {
    /// Per-resource contention, indexed by `ResourceId::index()`.
    pub resources: Vec<ResourceSnapshot>,
    /// Per-task gains (only tasks with any window activity).
    pub tasks: Vec<TaskGainSnapshot>,
    /// Total task execution time in the window (ns).
    pub t_exec_ns: u64,
}

impl EstimatorSnapshot {
    /// Resources whose raw contention exceeds `min_contention`, most
    /// contended first.
    pub fn bottlenecked(&self, min_contention: f64) -> Vec<ResourceId> {
        let mut hot: Vec<&ResourceSnapshot> = self
            .resources
            .iter()
            .filter(|r| r.contention >= min_contention)
            .collect();
        hot.sort_by(|a, b| {
            b.contention
                .partial_cmp(&a.contention)
                .expect("contention is finite")
        });
        hot.iter().map(|r| r.id).collect()
    }
}

/// One task's contribution to the estimation pass: its published window
/// per resource (feeding the global contention sums) and its un-normalized
/// gain terms. This is the unit the [`PolicyIndex`](crate::policy::PolicyIndex)
/// caches per slot and the naive pass derives on the fly.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TaskTerms {
    /// Application key.
    pub key: TaskKey,
    /// Whether the policy may cancel this task.
    pub cancellable: bool,
    /// Active execution time in the window (ns).
    pub window_active_ns: u64,
    /// Published window per resource, indexed by `ResourceId::index()`.
    pub windows: Vec<WindowUsage>,
    /// Un-normalized future-scaled gain per resource.
    pub raw_future: Vec<f64>,
    /// Un-normalized current-usage gain per resource.
    pub raw_current: Vec<f64>,
    /// Reported progress, if any.
    pub progress: Option<f64>,
    /// Whether the task had any window activity (inactive tasks are
    /// omitted from the snapshot's task list but still feed global sums).
    pub active: bool,
}

impl TaskTerms {
    /// The terms of a task with no activity at all: what a freshly
    /// allocated index slot holds before its first derivation.
    pub fn zero(n: usize) -> Self {
        TaskTerms {
            key: TaskKey(0),
            cancellable: false,
            window_active_ns: 0,
            windows: vec![WindowUsage::default(); n],
            raw_future: vec![0.0; n],
            raw_current: vec![0.0; n],
            progress: None,
            active: false,
        }
    }

    /// True if these terms are indistinguishable from [`TaskTerms::zero`]
    /// as far as sums, gains and activity go (key/cancellable/progress may
    /// differ): once a task reaches this state it contributes nothing
    /// until a new event arrives.
    pub fn is_zero(&self) -> bool {
        !self.active
            && self.window_active_ns == 0
            && self.windows.iter().all(|w| *w == WindowUsage::default())
    }
}

/// Derives one task's [`TaskTerms`] from its most recently closed window.
/// This is the only place gain terms are computed; the batch
/// [`estimate`] and the incremental index both call it, so the two
/// engines cannot diverge on per-task arithmetic.
pub(crate) fn derive_task_terms(
    t: &TaskRecord,
    resources: &ResourceRegistry,
    cfg: &AtroposConfig,
) -> TaskTerms {
    let n = resources.len();
    let mult = t
        .progress
        .future_multiplier(cfg.progress_floor, cfg.default_progress);
    let mut windows = vec![WindowUsage::default(); n];
    for (i, u) in t.usage.iter().enumerate().take(n) {
        windows[i] = u.window();
    }
    let mut raw_future = vec![0.0; n];
    let mut raw_current = vec![0.0; n];
    let window_active = t.window_active_ns();
    let mut active = window_active > 0;
    // Time this task spent blocked on synchronization/queue/system
    // resources in the window. A task holds e.g. a worker slot or a
    // ticket *while blocked on a lock*, but it is not consuming those
    // resources' service ("expected future thread time", §3.4) — it is
    // a victim. Its attributed usage is discounted by the blocked
    // share so victims do not outscore the culprit that blocks them.
    // Memory stalls (evictions) are excluded: the evictor's stall is
    // its own productive resource consumption.
    let mut blocked_ns: u64 = 0;
    for (i, w) in windows.iter().enumerate() {
        let info = resources.get(ResourceId(i as u32)).expect("registered");
        if info.rtype != ResourceType::Memory {
            blocked_ns += w.wait_ns;
        }
    }
    let running_frac = if window_active == 0 {
        1.0
    } else {
        1.0 - (blocked_ns.min(window_active) as f64 / window_active as f64)
    };
    for (i, w) in windows.iter().enumerate() {
        let info = resources.get(ResourceId(i as u32)).expect("registered");
        // Current usage: what cancelling frees *right now*.
        let current = match info.rtype {
            ResourceType::Memory => w.held_at_end as f64,
            ResourceType::Lock | ResourceType::Queue | ResourceType::System => w.hold_ns as f64,
        } * running_frac;
        raw_current[i] = current;
        raw_future[i] = current * mult;
        if current > 0.0 || w.wait_ns > 0 || w.acquired > 0 {
            active = true;
        }
    }
    TaskTerms {
        key: t.key,
        cancellable: t.cancellable,
        window_active_ns: window_active,
        windows,
        raw_future,
        raw_current,
        progress: t.progress.progress(cfg.progress_floor),
        active,
    }
}

/// Builds the per-resource contention snapshots from the global window
/// sums. Shared by [`estimate`] (which sums over tasks on the fly) and
/// the index (which maintains the sums incrementally).
pub(crate) fn resource_snapshots_from_sums(
    resources: &ResourceRegistry,
    wait: &[u64],
    hold: &[u64],
    acquired: &[u64],
    slow_amount: &[u64],
    t_exec: u64,
) -> Vec<ResourceSnapshot> {
    let n = resources.len();
    let mut snaps: Vec<ResourceSnapshot> = Vec::with_capacity(n);
    let t_exec_div = t_exec.max(1) as f64;
    for i in 0..n {
        let info = resources.get(ResourceId(i as u32)).expect("registered");
        let contention = match info.rtype {
            ResourceType::Memory => {
                if slow_amount[i] == 0 {
                    0.0
                } else {
                    (slow_amount[i] as f64 / acquired[i].max(1) as f64).min(CONTENTION_CAP)
                }
            }
            ResourceType::Lock | ResourceType::Queue | ResourceType::System => {
                if wait[i] == 0 {
                    0.0
                } else {
                    (wait[i] as f64 / hold[i].max(1) as f64).min(CONTENTION_CAP)
                }
            }
        };
        // Contention-induced delay D_r (§3.5): measured waiting time for
        // sync/queue resources; eviction stall time weighted by contention
        // for memory resources.
        let delay = match info.rtype {
            ResourceType::Memory => wait[i] as f64 * contention.min(1.0),
            _ => wait[i] as f64,
        };
        let normalized = (delay / t_exec_div).min(CONTENTION_CAP);
        snaps.push(ResourceSnapshot {
            id: ResourceId(i as u32),
            rtype: info.rtype,
            contention,
            normalized,
            weight: 0.0,
            wait_ns: wait[i],
            hold_ns: hold[i],
            acquired: acquired[i],
            slow_amount: slow_amount[i],
        });
    }
    // Scalarization weights come from the *capped raw* contention levels
    // (the paper's §3.5 example weights — 0.6 for a 60% eviction ratio,
    // 0.4 for a 40% wait ratio — are the per-resource contention ratios).
    // Weighting by victim-wait volume instead would let a resource with
    // many queued victims (a worker queue behind a stalled heap) drown
    // out the resource the culprit actually monopolizes.
    let total_w: f64 = snaps.iter().map(|r| r.contention.min(WEIGHT_CAP)).sum();
    if total_w > 0.0 {
        for r in &mut snaps {
            r.weight = r.contention.min(WEIGHT_CAP) / total_w;
        }
    }
    snaps
}

/// Normalizes one raw gain by the per-resource maximum: the exact
/// division both engines must share, since `raw_a < raw_b` does not imply
/// `raw_a/max < raw_b/max` after rounding.
#[inline]
pub(crate) fn normalize_gain(g: f64, max: f64) -> f64 {
    if max > 0.0 {
        g / max
    } else {
        0.0
    }
}

/// Converts cached [`TaskTerms`] into the published [`TaskGainSnapshot`],
/// normalizing per-resource by the supplied maxima.
pub(crate) fn gain_snapshot(
    task: TaskId,
    terms: &TaskTerms,
    max_future: &[f64],
    max_current: &[f64],
) -> TaskGainSnapshot {
    TaskGainSnapshot {
        task,
        key: terms.key,
        cancellable: terms.cancellable,
        gains: terms
            .raw_future
            .iter()
            .enumerate()
            .map(|(i, &g)| normalize_gain(g, max_future[i]))
            .collect(),
        current: terms
            .raw_current
            .iter()
            .enumerate()
            .map(|(i, &g)| normalize_gain(g, max_current[i]))
            .collect(),
        progress: terms.progress,
    }
}

/// Computes contention levels and resource gains from the most recently
/// closed window of every task.
pub fn estimate<'a>(
    tasks: impl Iterator<Item = &'a TaskRecord>,
    resources: &ResourceRegistry,
    cfg: &AtroposConfig,
) -> EstimatorSnapshot {
    let n = resources.len();
    let mut wait = vec![0u64; n];
    let mut hold = vec![0u64; n];
    let mut acquired = vec![0u64; n];
    let mut slow_amount = vec![0u64; n];
    let mut t_exec: u64 = 0;
    let mut raw_tasks: Vec<(TaskId, TaskTerms)> = Vec::new();

    for t in tasks {
        let terms = derive_task_terms(t, resources, cfg);
        t_exec += terms.window_active_ns;
        for i in 0..n {
            let w = &terms.windows[i];
            wait[i] += w.wait_ns;
            hold[i] += w.hold_ns;
            acquired[i] += w.acquired;
            slow_amount[i] += w.slow_amount;
        }
        if terms.active {
            raw_tasks.push((t.id, terms));
        }
    }

    let snaps =
        resource_snapshots_from_sums(resources, &wait, &hold, &acquired, &slow_amount, t_exec);

    // Normalize gains per resource so units (pages vs ns) are comparable
    // across resources during scalarization.
    let mut max_future = vec![0.0f64; n];
    let mut max_current = vec![0.0f64; n];
    for (_, rt) in &raw_tasks {
        for i in 0..n {
            max_future[i] = max_future[i].max(rt.raw_future[i]);
            max_current[i] = max_current[i].max(rt.raw_current[i]);
        }
    }
    let tasks_out = raw_tasks
        .iter()
        .map(|(id, rt)| gain_snapshot(*id, rt, &max_future, &max_current))
        .collect();

    EstimatorSnapshot {
        resources: snaps,
        tasks: tasks_out,
        t_exec_ns: t_exec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskId;

    fn registry() -> ResourceRegistry {
        let mut r = ResourceRegistry::new();
        r.register("pool", ResourceType::Memory); // id 0
        r.register("lock", ResourceType::Lock); // id 1
        r.register("queue", ResourceType::Queue); // id 2
        r
    }

    fn cfg() -> AtroposConfig {
        AtroposConfig::default()
    }

    fn task(id: u64, n: usize) -> TaskRecord {
        TaskRecord::new(TaskId(id), TaskKey(id), 0, n)
    }

    #[test]
    fn memory_contention_is_eviction_ratio() {
        let reg = registry();
        let mut t = task(1, 3);
        // 100 pages acquired, 20 evictions.
        t.usage[0].on_get(10, 100);
        for k in 0..20 {
            t.usage[0].on_slow(20 + k, 1);
            t.usage[0].on_get(21 + k, 0);
        }
        t.on_unit_start(0);
        t.roll_window(1000);
        let tasks = [t];
        let s = estimate(tasks.iter(), &reg, &cfg());
        assert!((s.resources[0].contention - 0.2).abs() < 1e-9);
    }

    #[test]
    fn lock_contention_is_wait_over_hold() {
        let reg = registry();
        let mut holder = task(1, 3);
        holder.usage[1].on_get(0, 1); // holds the lock the whole window
        let mut waiter = task(2, 3);
        waiter.usage[1].on_slow(0, 1); // waits the whole window
        holder.on_unit_start(0);
        waiter.on_unit_start(0);
        holder.roll_window(1000);
        waiter.roll_window(1000);
        let tasks = [holder, waiter];
        let s = estimate(tasks.iter(), &reg, &cfg());
        assert!((s.resources[1].contention - 1.0).abs() < 1e-9);
        assert_eq!(s.resources[1].wait_ns, 1000);
        assert_eq!(s.resources[1].hold_ns, 1000);
    }

    #[test]
    fn idle_resources_have_zero_contention() {
        let reg = registry();
        let mut t = task(1, 3);
        t.on_unit_start(0);
        t.roll_window(1000);
        let tasks = [t];
        let s = estimate(tasks.iter(), &reg, &cfg());
        for r in &s.resources {
            assert_eq!(r.contention, 0.0);
            assert_eq!(r.weight, 0.0);
        }
        assert!(s.bottlenecked(0.01).is_empty());
    }

    #[test]
    fn weights_sum_to_one_over_contended_resources() {
        let reg = registry();
        let mut a = task(1, 3);
        a.usage[0].on_get(0, 10);
        a.usage[0].on_slow(10, 5);
        a.usage[0].on_get(20, 0);
        a.usage[1].on_get(0, 1);
        let mut b = task(2, 3);
        b.usage[1].on_slow(0, 1);
        a.on_unit_start(0);
        b.on_unit_start(0);
        a.roll_window(1000);
        b.roll_window(1000);
        let tasks = [a, b];
        let s = estimate(tasks.iter(), &reg, &cfg());
        let total: f64 = s.resources.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn future_gain_prefers_early_task_over_finished_one() {
        let reg = registry();
        // Query A: 90% done, holds 300 pages. Query B: 10% done, 200 pages.
        let mut a = task(1, 3);
        a.usage[0].on_get(0, 300);
        a.progress.report(90, 100);
        let mut b = task(2, 3);
        b.usage[0].on_get(0, 200);
        b.progress.report(10, 100);
        a.roll_window(1000);
        b.roll_window(1000);
        let tasks = [a, b];
        let s = estimate(tasks.iter(), &reg, &cfg());
        let ga = s.tasks.iter().find(|t| t.task == TaskId(1)).unwrap();
        let gb = s.tasks.iter().find(|t| t.task == TaskId(2)).unwrap();
        // Future-scaled: B dominates. Current usage: A dominates.
        assert!(gb.gains[0] > ga.gains[0]);
        assert!(ga.current[0] > gb.current[0]);
        assert_eq!(gb.gains[0], 1.0); // normalized per-resource max
    }

    #[test]
    fn bottlenecked_sorts_by_normalized_contention() {
        let reg = registry();
        let mut a = task(1, 3);
        // Lock: waits dominate.
        a.usage[1].on_slow(0, 1);
        // Queue: small wait.
        a.usage[2].on_slow(900, 1);
        a.on_unit_start(0);
        a.roll_window(1000);
        let tasks = [a];
        let s = estimate(tasks.iter(), &reg, &cfg());
        let hot = s.bottlenecked(0.0001);
        assert_eq!(hot.first(), Some(&ResourceId(1)));
        assert!(hot.contains(&ResourceId(2)));
    }

    #[test]
    fn tasks_with_no_activity_are_omitted() {
        let reg = registry();
        let idle = task(1, 3);
        let tasks = [idle];
        let s = estimate(tasks.iter(), &reg, &cfg());
        assert!(s.tasks.is_empty());
    }

    #[test]
    fn blocked_victims_have_discounted_gains() {
        // Two tasks hold the queue slot for the full window; one is
        // blocked on the lock the whole time (a victim), the other runs.
        let reg = registry();
        let mut culprit = task(1, 3);
        culprit.usage[2].on_get(0, 1); // holds the queue slot, running
        culprit.usage[1].on_get(0, 1); // and the lock
        let mut victim = task(2, 3);
        victim.usage[2].on_get(0, 1); // holds a queue slot…
        victim.usage[1].on_slow(0, 1); // …but is blocked on the lock
        culprit.on_unit_start(0);
        victim.on_unit_start(0);
        culprit.roll_window(1000);
        victim.roll_window(1000);
        let tasks = [culprit, victim];
        let s = estimate(tasks.iter(), &reg, &cfg());
        let g_culprit = s.tasks.iter().find(|t| t.task == TaskId(1)).unwrap();
        let g_victim = s.tasks.iter().find(|t| t.task == TaskId(2)).unwrap();
        assert!(
            g_culprit.gains[2] > 0.9,
            "culprit queue gain {:?}",
            g_culprit.gains
        );
        assert_eq!(g_victim.gains[2], 0.0, "victim gains {:?}", g_victim.gains);
    }

    #[test]
    fn eviction_stalls_do_not_discount_the_evictor() {
        // Memory stalls are the evictor's own productive work (§6.2 of
        // DESIGN.md): a dump mid-eviction keeps its full gains.
        let reg = registry();
        let mut dump = task(1, 3);
        dump.usage[0].on_get(0, 500);
        dump.usage[0].on_slow(10, 100); // evicting for the whole window
        dump.on_unit_start(0);
        dump.roll_window(1000);
        let tasks = [dump];
        let s = estimate(tasks.iter(), &reg, &cfg());
        let g = &s.tasks[0];
        assert!(g.gains[0] > 0.9, "evictor memory gain {:?}", g.gains);
    }

    #[test]
    fn weights_are_capped_raw_contention_shares() {
        let reg = registry();
        // Lock: extreme wait/use ratio (caps at 20); memory: ratio 1.
        let mut holder = task(1, 3);
        holder.usage[1].on_get(999, 1);
        holder.usage[1].on_free(1000, 1); // held 1 ns
        holder.usage[0].on_get(0, 100);
        for k in 0..100u64 {
            holder.usage[0].on_slow(k, 1);
            holder.usage[0].on_get(k, 0);
        }
        let mut waiter = task(2, 3);
        waiter.usage[1].on_slow(0, 1); // waits the whole window
        holder.on_unit_start(0);
        waiter.on_unit_start(0);
        holder.roll_window(1000);
        waiter.roll_window(1000);
        let tasks = [holder, waiter];
        let s = estimate(tasks.iter(), &reg, &cfg());
        // Lock raw contention is enormous but its weight share is capped
        // at 20/(20 + 1): the memory resource keeps a voice.
        assert!(s.resources[1].contention > 100.0);
        assert!(
            s.resources[0].weight > 0.04,
            "memory weight {}",
            s.resources[0].weight
        );
        let total: f64 = s.resources.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn t_exec_sums_active_time() {
        let reg = registry();
        let mut a = task(1, 3);
        a.on_unit_start(0);
        let mut b = task(2, 3);
        b.on_unit_start(500);
        a.roll_window(1000);
        b.roll_window(1000);
        let tasks = [a, b];
        let s = estimate(tasks.iter(), &reg, &cfg());
        assert_eq!(s.t_exec_ns, 1500);
    }

    #[test]
    fn estimate_is_a_pure_function_of_the_rolled_state() {
        // Factored helpers must reproduce the batch pass exactly.
        let reg = registry();
        let mut a = task(1, 3);
        a.usage[0].on_get(0, 300);
        a.usage[1].on_get(0, 1);
        a.progress.report(30, 100);
        let mut b = task(2, 3);
        b.usage[1].on_slow(0, 1);
        a.on_unit_start(0);
        b.on_unit_start(0);
        a.roll_window(1000);
        b.roll_window(1000);
        let tasks = [a, b];
        let s1 = estimate(tasks.iter(), &reg, &cfg());
        let s2 = estimate(tasks.iter(), &reg, &cfg());
        assert_eq!(s1, s2);
    }
}
