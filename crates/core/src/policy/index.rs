//! Incremental, indexed evaluation of Algorithm 1 (the `Indexed` policy
//! engine).
//!
//! The naive engine rebuilds an [`EstimatorSnapshot`] from every task on
//! every candidate tick: O(n·R) derivation work even when almost nothing
//! changed since the last decision. `PolicyIndex` caches each task's
//! derived [`TaskTerms`] in a slot and maintains, incrementally:
//!
//! - the **global window sums** (wait/hold/acquired/slow-amount per
//!   resource, plus `T_exec`) by subtracting a slot's old window and
//!   adding the new one, so the per-resource contention snapshot is a
//!   pure O(R) function of the sums;
//! - **postings lists** — per resource, the set of slots with a positive
//!   raw gain (future or current) on it — so selection scans only tasks
//!   that can matter to a contended resource, not the population;
//! - **per-resource gain maxima** (for gain normalization) with lazy
//!   invalidation: a max is recomputed from the resource's postings list
//!   only when its argmax slot shrank or was removed.
//!
//! The refresh protocol leans on task-side quiescence: `decide` rolls
//! every task's window each tick, and a task whose roll published an
//! all-zero window with nothing open reports
//! [`window_quiescent`](crate::task::TaskRecord::window_quiescent). Such
//! a task's derived terms cannot have changed, so `refresh` re-derives a
//! slot only when the task is non-quiescent, the slot has not yet cached
//! the all-zero fixpoint (`settled`), or out-of-band state changed
//! (progress reports and cancellability flips are marked dirty; task
//! removal and resource registration have their own hooks). The common
//! steady-state cost per tick is O(busy tasks · R), not O(n·R).
//!
//! Selection reuses the skyline arguments (see
//! [`skyline`](super::skyline)): candidates are the union of postings
//! lists over positive-weight resources — any task scoring > 0 has a
//! positive raw gain on a positive-weight resource, so no winner is ever
//! pruned — scored with the shared [`weighted_score`] term order and
//! normalized with the shared division, which keeps results bit-identical
//! to the naive oracle.

use std::collections::{HashMap, HashSet};

use super::{dominates, Selection};
use crate::config::{AtroposConfig, PolicyKind};
use crate::estimator::{
    derive_task_terms, gain_snapshot, normalize_gain, resource_snapshots_from_sums,
    EstimatorSnapshot, ResourceSnapshot, TaskTerms,
};
use crate::ids::{TaskId, TaskKey};
use crate::record::{GainTerm, MAX_GAIN_TERMS};
use crate::resource::ResourceRegistry;
use crate::task::TaskRecord;

/// One task's cached state.
#[derive(Debug)]
struct Slot {
    task: TaskId,
    terms: TaskTerms,
    /// True when `terms` is the all-zero fixpoint of a quiescent task:
    /// together with [`TaskRecord::window_quiescent`] this licenses
    /// skipping the slot at refresh. A quiescent task whose cache still
    /// holds its last non-zero window needs exactly one more derivation
    /// to settle.
    settled: bool,
}

/// Running maximum over one resource's raw gains, with lazy invalidation.
///
/// Invariant: when `valid`, `(val, slot)` is the exact maximum and its
/// argmax; when invalid, `val` is an upper bound (the argmax slot shrank
/// or left). Invalid entries are recomputed from the postings list at the
/// end of every refresh, so reads between refreshes are exact.
#[derive(Debug, Clone, Copy)]
struct MaxTrack {
    val: f64,
    slot: u32,
    valid: bool,
}

impl Default for MaxTrack {
    fn default() -> Self {
        MaxTrack {
            val: 0.0,
            slot: u32::MAX,
            valid: true,
        }
    }
}

impl MaxTrack {
    fn update(&mut self, slot: u32, v: f64) {
        if v >= self.val {
            // At least every other slot's value (≤ the old max/upper
            // bound), so exact again.
            self.val = v;
            self.slot = slot;
            self.valid = true;
        } else if slot == self.slot {
            // The argmax shrank: `val` degrades to an upper bound.
            self.valid = false;
        }
    }

    fn note_removed(&mut self, slot: u32) {
        if slot == self.slot {
            self.valid = false;
        }
    }
}

/// Incrementally maintained policy-evaluation state; see the module docs.
#[derive(Debug, Default)]
pub struct PolicyIndex {
    /// Registered resource count this index was built for.
    n: usize,
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    by_task: HashMap<TaskId, u32>,
    /// Per resource: slots with a positive raw gain (future or current).
    postings: Vec<HashSet<u32>>,
    max_future: Vec<MaxTrack>,
    max_current: Vec<MaxTrack>,
    // Global window sums across all slots (including inactive tasks,
    // which can still publish e.g. a freed-this-window hold interval).
    wait: Vec<u64>,
    hold: Vec<u64>,
    acquired: Vec<u64>,
    slow: Vec<u64>,
    t_exec: u64,
    /// Cached per-resource contention snapshot, rebuilt (O(R)) at the end
    /// of every refresh.
    resources: Vec<ResourceSnapshot>,
    /// Tasks whose non-window state (progress, cancellability) changed
    /// since the last refresh.
    dirty: HashSet<TaskId>,
    /// Force a full rebuild at the next refresh (initial state, or the
    /// resource set changed under us).
    stale: bool,
}

impl PolicyIndex {
    /// An empty index; the first [`PolicyIndex::refresh`] performs a full
    /// build.
    pub fn new() -> Self {
        PolicyIndex {
            stale: true,
            ..Default::default()
        }
    }

    /// Marks one task's out-of-band state (progress, cancellability) as
    /// changed, forcing re-derivation at the next refresh.
    pub fn mark_dirty(&mut self, task: TaskId) {
        self.dirty.insert(task);
    }

    /// Removes a task's slot, unwinding its contribution to the global
    /// sums and postings. No-op for unknown tasks.
    pub fn remove_task(&mut self, task: TaskId) {
        self.dirty.remove(&task);
        let Some(slot) = self.by_task.remove(&task) else {
            return;
        };
        let old = self.slots[slot as usize].take().expect("live slot");
        self.free.push(slot);
        self.t_exec -= old.terms.window_active_ns;
        for i in 0..self.n {
            let w = &old.terms.windows[i];
            self.wait[i] -= w.wait_ns;
            self.hold[i] -= w.hold_ns;
            self.acquired[i] -= w.acquired;
            self.slow[i] -= w.slow_amount;
            if old.terms.raw_future[i] > 0.0 || old.terms.raw_current[i] > 0.0 {
                self.postings[i].remove(&slot);
            }
            self.max_future[i].note_removed(slot);
            self.max_current[i].note_removed(slot);
        }
    }

    /// Marks the whole index stale (e.g. a resource was registered, which
    /// changes every per-task vector length); the next refresh rebuilds.
    pub fn invalidate_all(&mut self) {
        self.stale = true;
    }

    /// Brings the index up to date with the task registry. Must be called
    /// after the tick's window rolls and before
    /// [`select`](PolicyIndex::select) /
    /// [`materialize`](PolicyIndex::materialize) /
    /// [`gain_terms`](PolicyIndex::gain_terms); those read cached state
    /// and are only exact immediately after a refresh.
    pub fn refresh(
        &mut self,
        tasks: &HashMap<TaskId, TaskRecord>,
        resources: &ResourceRegistry,
        cfg: &AtroposConfig,
    ) {
        if self.stale || resources.len() != self.n {
            self.rebuild(tasks, resources, cfg);
            return;
        }
        for (id, t) in tasks {
            let needs = match self.by_task.get(id) {
                None => true,
                Some(&s) => {
                    !t.window_quiescent()
                        || !self.slots[s as usize].as_ref().expect("live slot").settled
                        || self.dirty.contains(id)
                }
            };
            if needs {
                self.update_task(*id, t, resources, cfg);
            }
        }
        self.dirty.clear();
        debug_assert_eq!(
            self.by_task.len(),
            tasks.len(),
            "slot for a removed task survived (missing remove_task hook?)"
        );
        self.fix_max_tracks();
        self.resources = resource_snapshots_from_sums(
            resources,
            &self.wait,
            &self.hold,
            &self.acquired,
            &self.slow,
            self.t_exec,
        );
    }

    fn rebuild(
        &mut self,
        tasks: &HashMap<TaskId, TaskRecord>,
        resources: &ResourceRegistry,
        cfg: &AtroposConfig,
    ) {
        self.n = resources.len();
        self.slots.clear();
        self.free.clear();
        self.by_task.clear();
        self.dirty.clear();
        self.postings = vec![HashSet::new(); self.n];
        self.max_future = vec![MaxTrack::default(); self.n];
        self.max_current = vec![MaxTrack::default(); self.n];
        self.wait = vec![0; self.n];
        self.hold = vec![0; self.n];
        self.acquired = vec![0; self.n];
        self.slow = vec![0; self.n];
        self.t_exec = 0;
        for (id, t) in tasks {
            self.update_task(*id, t, resources, cfg);
        }
        self.stale = false;
        self.fix_max_tracks();
        self.resources = resource_snapshots_from_sums(
            resources,
            &self.wait,
            &self.hold,
            &self.acquired,
            &self.slow,
            self.t_exec,
        );
    }

    fn alloc_slot(&mut self, id: TaskId) -> usize {
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].is_none());
                self.slots[s as usize] = Some(Slot {
                    task: id,
                    terms: TaskTerms::zero(self.n),
                    settled: true,
                });
                s as usize
            }
            None => {
                self.slots.push(Some(Slot {
                    task: id,
                    terms: TaskTerms::zero(self.n),
                    settled: true,
                }));
                self.slots.len() - 1
            }
        };
        self.by_task.insert(id, slot as u32);
        slot
    }

    /// Re-derives one task's terms and folds the delta into the global
    /// sums, postings lists and max tracks.
    fn update_task(
        &mut self,
        id: TaskId,
        t: &TaskRecord,
        resources: &ResourceRegistry,
        cfg: &AtroposConfig,
    ) {
        let new_terms = derive_task_terms(t, resources, cfg);
        let slot = match self.by_task.get(&id) {
            Some(&s) => s as usize,
            None => self.alloc_slot(id),
        };
        let su = slot as u32;
        let settled = new_terms.is_zero();
        let slot_ref = self.slots[slot].as_mut().expect("live slot");
        let old = std::mem::replace(&mut slot_ref.terms, new_terms);
        slot_ref.settled = settled;
        let new = &slot_ref.terms;
        self.t_exec = self.t_exec - old.window_active_ns + new.window_active_ns;
        for i in 0..self.n {
            let ow = &old.windows[i];
            let nw = &new.windows[i];
            self.wait[i] = self.wait[i] - ow.wait_ns + nw.wait_ns;
            self.hold[i] = self.hold[i] - ow.hold_ns + nw.hold_ns;
            self.acquired[i] = self.acquired[i] - ow.acquired + nw.acquired;
            self.slow[i] = self.slow[i] - ow.slow_amount + nw.slow_amount;
            let was = old.raw_future[i] > 0.0 || old.raw_current[i] > 0.0;
            let is = new.raw_future[i] > 0.0 || new.raw_current[i] > 0.0;
            if was && !is {
                self.postings[i].remove(&su);
            } else if is && !was {
                self.postings[i].insert(su);
            }
            self.max_future[i].update(su, new.raw_future[i]);
            self.max_current[i].update(su, new.raw_current[i]);
        }
    }

    /// Recomputes invalidated maxima from the postings lists (every slot
    /// with a positive raw gain is posted, so the postings max is the
    /// global max; absent entries contribute the 0.0 floor, matching the
    /// batch estimator's `max(0.0, ...)` fold).
    fn fix_max_tracks(&mut self) {
        for i in 0..self.n {
            if !self.max_future[i].valid {
                let mut best = MaxTrack::default();
                for &s in &self.postings[i] {
                    let v = self.slots[s as usize]
                        .as_ref()
                        .expect("posted slot")
                        .terms
                        .raw_future[i];
                    if v > best.val {
                        best.val = v;
                        best.slot = s;
                    }
                }
                self.max_future[i] = best;
            }
            if !self.max_current[i].valid {
                let mut best = MaxTrack::default();
                for &s in &self.postings[i] {
                    let v = self.slots[s as usize]
                        .as_ref()
                        .expect("posted slot")
                        .terms
                        .raw_current[i];
                    if v > best.val {
                        best.val = v;
                        best.slot = s;
                    }
                }
                self.max_current[i] = best;
            }
        }
    }

    /// Evaluates the configured policy from the index. Bit-identical to
    /// building an [`EstimatorSnapshot`] and running the corresponding
    /// [`CancellationPolicy::select_naive`](super::CancellationPolicy::select_naive).
    pub fn select(&self, kind: PolicyKind) -> Option<Selection> {
        match kind {
            PolicyKind::MultiObjective => self.select_scalarized(true),
            PolicyKind::CurrentUsage => self.select_scalarized(false),
            PolicyKind::Heuristic => self.select_heuristic(),
        }
    }

    fn raw<'a>(&self, slot: &'a Slot, future: bool) -> &'a [f64] {
        if future {
            &slot.terms.raw_future
        } else {
            &slot.terms.raw_current
        }
    }

    fn max_val(&self, i: usize, future: bool) -> f64 {
        if future {
            self.max_future[i].val
        } else {
            self.max_current[i].val
        }
    }

    /// The shared scalarized score, computed straight from cached raw
    /// terms: same per-resource order, same `weight × (raw / max)`
    /// arithmetic as [`weighted_score`](super::weighted_score) over a
    /// materialized snapshot.
    fn score_slot(&self, slot: &Slot, future: bool) -> f64 {
        let raw = self.raw(slot, future);
        let mut score = 0.0;
        for r in &self.resources {
            let i = r.id.index();
            score += r.weight * normalize_gain(raw[i], self.max_val(i, future));
        }
        score
    }

    fn normalized(&self, slot: &Slot, future: bool) -> Vec<f64> {
        let raw = self.raw(slot, future);
        (0..self.n)
            .map(|i| normalize_gain(raw[i], self.max_val(i, future)))
            .collect()
    }

    /// Algorithm 1 via the postings lists: candidates are the union over
    /// positive-weight resources (a task scoring > 0 must have a positive
    /// raw gain on a positive-weight resource, and zero-score tasks can
    /// neither win nor dominate a positive-score task), then the skyline
    /// max-score tie-group dominance check.
    fn select_scalarized(&self, future: bool) -> Option<Selection> {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut max = f64::NEG_INFINITY;
        let mut group: Vec<u32> = Vec::new();
        for r in &self.resources {
            if r.weight <= 0.0 {
                continue;
            }
            for &s in &self.postings[r.id.index()] {
                if !seen.insert(s) {
                    continue;
                }
                let slot = self.slots[s as usize].as_ref().expect("posted slot");
                if !slot.terms.cancellable {
                    continue;
                }
                let score = self.score_slot(slot, future);
                if score > max {
                    max = score;
                    group.clear();
                    group.push(s);
                } else if score == max {
                    group.push(s);
                }
            }
        }
        if max <= 0.0 {
            return None;
        }
        group.sort_by_key(|&s| self.slots[s as usize].as_ref().expect("live slot").task);
        let gains: Vec<Vec<f64>> = group
            .iter()
            .map(|&s| self.normalized(self.slots[s as usize].as_ref().expect("live slot"), future))
            .collect();
        let pos = (0..group.len())
            .find(|&gi| !(0..group.len()).any(|gj| gj != gi && dominates(&gains[gj], &gains[gi])))
            // A finite group always has a dominance-maximal element.
            .unwrap_or(0);
        let slot = self.slots[group[pos] as usize].as_ref().expect("live slot");
        Some(Selection {
            task: slot.task,
            key: slot.terms.key,
            score: max,
        })
    }

    /// The §5.4 greedy baseline via the hottest resource's postings list.
    fn select_heuristic(&self) -> Option<Selection> {
        let hottest = self
            .resources
            .iter()
            .filter(|r| r.normalized > 0.0)
            .max_by(|a, b| {
                a.normalized
                    .partial_cmp(&b.normalized)
                    .expect("contention is finite")
            })?;
        let idx = hottest.id.index();
        let maxf = self.max_future[idx].val;
        let mut best: Option<(TaskId, TaskKey, f64)> = None;
        for &s in &self.postings[idx] {
            let slot = self.slots[s as usize].as_ref().expect("posted slot");
            if !slot.terms.cancellable {
                continue;
            }
            let g = normalize_gain(slot.terms.raw_future[idx], maxf);
            let better = match &best {
                None => g > 0.0,
                Some(b) => g > b.2 || (g == b.2 && slot.task < b.0),
            };
            if better {
                best = Some((slot.task, slot.terms.key, g));
            }
        }
        best.map(|(task, key, score)| Selection { task, key, score })
    }

    /// The per-resource score breakdown for `task`, resolved through the
    /// task→slot map in O(R) — no scan of the task population. Matches
    /// [`gain_terms`](super::gain_terms) over a materialized snapshot.
    pub fn gain_terms(&self, task: TaskId) -> [Option<GainTerm>; MAX_GAIN_TERMS] {
        let Some(&s) = self.by_task.get(&task) else {
            return [None; MAX_GAIN_TERMS];
        };
        let slot = self.slots[s as usize].as_ref().expect("live slot");
        if !slot.terms.active {
            // Inactive tasks are omitted from snapshots; the snapshot
            // explainer would find nothing either.
            return [None; MAX_GAIN_TERMS];
        }
        let gains = self.normalized(slot, true);
        super::gain_terms_for(&self.resources, &gains)
    }

    /// Materializes the full [`EstimatorSnapshot`] (tasks in slot order)
    /// for observers — the recorder, `last_estimate`, the chaos checker.
    /// O(active tasks · R).
    pub fn materialize(&self) -> EstimatorSnapshot {
        let max_future: Vec<f64> = self.max_future.iter().map(|m| m.val).collect();
        let max_current: Vec<f64> = self.max_current.iter().map(|m| m.val).collect();
        let tasks = self
            .slots
            .iter()
            .flatten()
            .filter(|slot| slot.terms.active)
            .map(|slot| gain_snapshot(slot.task, &slot.terms, &max_future, &max_current))
            .collect();
        EstimatorSnapshot {
            resources: self.resources.clone(),
            tasks,
            t_exec_ns: self.t_exec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate;
    use crate::ids::ResourceType;
    use proptest::prelude::*;

    const KINDS: [PolicyKind; 3] = [
        PolicyKind::MultiObjective,
        PolicyKind::Heuristic,
        PolicyKind::CurrentUsage,
    ];

    fn registry() -> ResourceRegistry {
        let mut r = ResourceRegistry::new();
        r.register("pool", ResourceType::Memory); // id 0
        r.register("lock", ResourceType::Lock); // id 1
        r.register("queue", ResourceType::Queue); // id 2
        r
    }

    fn cfg() -> AtroposConfig {
        AtroposConfig::default()
    }

    fn canon(mut s: EstimatorSnapshot) -> EstimatorSnapshot {
        // The index materializes tasks in slot order, the batch pass in
        // task-map order; neither order affects decisions, so compare
        // canonicalized.
        s.tasks.sort_by_key(|t| t.task);
        s
    }

    /// Asserts the index agrees with a fresh batch estimate and that all
    /// three policies' selections are bit-identical to the naive oracle.
    fn assert_matches_naive(
        index: &PolicyIndex,
        tasks: &HashMap<TaskId, TaskRecord>,
        reg: &ResourceRegistry,
        cfg: &AtroposConfig,
    ) {
        let fresh = estimate(tasks.values(), reg, cfg);
        assert_eq!(canon(index.materialize()), canon(fresh.clone()));
        for kind in KINDS {
            let naive = kind.build().select_naive(&fresh);
            assert_eq!(index.select(kind), naive, "kind {kind:?}");
            if let Some(sel) = naive {
                assert_eq!(
                    index.gain_terms(sel.task),
                    crate::policy::gain_terms(&fresh, sel.task),
                    "gain terms for {:?}",
                    sel.task
                );
            }
        }
    }

    #[test]
    fn fresh_index_matches_batch_estimate() {
        let reg = registry();
        let cfg = cfg();
        let mut tasks: HashMap<TaskId, TaskRecord> = HashMap::new();
        for id in 1..=4u64 {
            let mut t = TaskRecord::new(TaskId(id), TaskKey(id), 0, reg.len());
            t.usage[0].on_get(0, 100 * id);
            t.usage[1].on_slow(0, 1);
            t.on_unit_start(0);
            t.roll_window(1000);
            tasks.insert(TaskId(id), t);
        }
        let mut index = PolicyIndex::new();
        index.refresh(&tasks, &reg, &cfg);
        assert_matches_naive(&index, &tasks, &reg, &cfg);
    }

    #[test]
    fn incremental_refresh_tracks_mutation_add_and_remove() {
        let reg = registry();
        let cfg = cfg();
        let mut tasks: HashMap<TaskId, TaskRecord> = HashMap::new();
        for id in 1..=3u64 {
            let mut t = TaskRecord::new(TaskId(id), TaskKey(id), 0, reg.len());
            t.usage[1].on_get(0, 1);
            t.usage[1].on_free(10 * id, 1);
            t.roll_window(1000);
            tasks.insert(TaskId(id), t);
        }
        let mut index = PolicyIndex::new();
        index.refresh(&tasks, &reg, &cfg);
        assert_matches_naive(&index, &tasks, &reg, &cfg);

        // Window 2: task 2 gets busy again, task 4 appears, task 3 leaves.
        for t in tasks.values_mut() {
            if t.id == TaskId(2) {
                t.usage[0].on_get(1500, 50);
                t.note_usage_mutation();
            }
        }
        let mut t4 = TaskRecord::new(TaskId(4), TaskKey(4), 1500, reg.len());
        t4.usage[2].on_slow(1500, 1);
        tasks.insert(TaskId(4), t4);
        tasks.remove(&TaskId(3));
        index.remove_task(TaskId(3));
        for t in tasks.values_mut() {
            t.roll_window(2000);
        }
        index.refresh(&tasks, &reg, &cfg);
        assert_matches_naive(&index, &tasks, &reg, &cfg);

        // Window 3: everyone goes idle; cached windows must settle to the
        // all-zero fixpoint, not linger at their last non-zero values.
        for t in tasks.values_mut() {
            if t.id == TaskId(4) {
                t.usage[2].on_get(2500, 1);
                t.usage[2].on_free(2600, 1);
                t.note_usage_mutation();
            }
        }
        for t in tasks.values_mut() {
            t.roll_window(3000);
        }
        index.refresh(&tasks, &reg, &cfg);
        assert_matches_naive(&index, &tasks, &reg, &cfg);
        for t in tasks.values_mut() {
            t.roll_window(4000);
        }
        index.refresh(&tasks, &reg, &cfg);
        assert_matches_naive(&index, &tasks, &reg, &cfg);
    }

    #[test]
    fn dirty_marks_pick_up_out_of_band_changes() {
        let reg = registry();
        let cfg = cfg();
        let mut tasks: HashMap<TaskId, TaskRecord> = HashMap::new();
        for id in 1..=2u64 {
            let mut t = TaskRecord::new(TaskId(id), TaskKey(id), 0, reg.len());
            t.usage[0].on_get(0, 100);
            t.roll_window(1000);
            t.roll_window(2000); // quiescent + settled... except held pages
            tasks.insert(TaskId(id), t);
        }
        let mut index = PolicyIndex::new();
        index.refresh(&tasks, &reg, &cfg);
        assert_matches_naive(&index, &tasks, &reg, &cfg);

        // Progress report and cancellability flip do not touch windows;
        // without dirty marks the cache would go stale.
        tasks.get_mut(&TaskId(1)).unwrap().progress.report(10, 100);
        index.mark_dirty(TaskId(1));
        tasks.get_mut(&TaskId(2)).unwrap().cancellable = false;
        index.mark_dirty(TaskId(2));
        for t in tasks.values_mut() {
            t.roll_window(3000);
        }
        index.refresh(&tasks, &reg, &cfg);
        assert_matches_naive(&index, &tasks, &reg, &cfg);
    }

    #[test]
    fn resource_registration_invalidates_the_index() {
        let mut reg = registry();
        let cfg = cfg();
        let mut tasks: HashMap<TaskId, TaskRecord> = HashMap::new();
        let mut t = TaskRecord::new(TaskId(1), TaskKey(1), 0, reg.len());
        t.usage[1].on_get(0, 1);
        t.roll_window(1000);
        tasks.insert(TaskId(1), t);
        let mut index = PolicyIndex::new();
        index.refresh(&tasks, &reg, &cfg);
        assert_matches_naive(&index, &tasks, &reg, &cfg);

        let rid = reg.register("disk", ResourceType::System);
        for t in tasks.values_mut() {
            t.ensure_resources(reg.len());
        }
        index.invalidate_all();
        tasks.get_mut(&TaskId(1)).unwrap().usage[rid.index()].on_slow(1500, 1);
        tasks.get_mut(&TaskId(1)).unwrap().note_usage_mutation();
        for t in tasks.values_mut() {
            t.roll_window(2000);
        }
        index.refresh(&tasks, &reg, &cfg);
        assert_matches_naive(&index, &tasks, &reg, &cfg);
    }

    /// One step of the random delta stream the incremental-vs-rebuild
    /// property drives, mirroring the runtime's hook points exactly.
    #[derive(Debug, Clone)]
    enum Op {
        Create(u64),
        Remove(u64),
        Get(u64, usize, u64),
        Free(u64, usize, u64),
        Slow(u64, usize, u64),
        UnitStart(u64),
        UnitFinish(u64),
        Progress(u64, u64),
        SetCancellable(u64, bool),
        RegisterResource,
        /// Roll all windows and refresh (a tick boundary) — the only
        /// point where index state is compared against a fresh build.
        Tick,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        let id = 0u64..8;
        let res = 0usize..4;
        prop_oneof![
            (0u64..8).prop_map(Op::Create),
            (0u64..8).prop_map(Op::Remove),
            (id.clone(), res.clone(), 1u64..100).prop_map(|(t, r, a)| Op::Get(t, r, a)),
            (0u64..8, res.clone(), 1u64..100).prop_map(|(t, r, a)| Op::Free(t, r, a)),
            (0u64..8, res, 1u64..20).prop_map(|(t, r, a)| Op::Slow(t, r, a)),
            (0u64..8).prop_map(Op::UnitStart),
            (0u64..8).prop_map(Op::UnitFinish),
            (0u64..8, 0u64..120).prop_map(|(t, p)| Op::Progress(t, p)),
            (0u64..8, any::<bool>()).prop_map(|(t, c)| Op::SetCancellable(t, c)),
            Just(Op::RegisterResource),
            Just(Op::Tick),
            Just(Op::Tick),
            Just(Op::Tick),
        ]
    }

    proptest! {
        /// Incremental-vs-rebuild property: after any delta stream, the
        /// index's materialized snapshot equals a fresh batch estimate
        /// and every policy's indexed selection is bit-identical to the
        /// naive oracle on that fresh snapshot.
        #[test]
        fn delta_stream_matches_fresh_build(
            ops in prop::collection::vec(op_strategy(), 0..120),
        ) {
            let mut reg = ResourceRegistry::new();
            reg.register("pool", ResourceType::Memory);
            reg.register("lock", ResourceType::Lock);
            let cfg = cfg();
            let mut tasks: HashMap<TaskId, TaskRecord> = HashMap::new();
            let mut index = PolicyIndex::new();
            let mut now = 0u64;
            for op in ops {
                now += 7;
                match op {
                    Op::Create(id) => {
                        let id = TaskId(id);
                        tasks
                            .entry(id)
                            .or_insert_with(|| TaskRecord::new(id, TaskKey(id.0), now, reg.len()));
                    }
                    Op::Remove(id) => {
                        if tasks.remove(&TaskId(id)).is_some() {
                            index.remove_task(TaskId(id));
                        }
                    }
                    Op::Get(id, r, a) => {
                        if let Some(t) = tasks.get_mut(&TaskId(id)) {
                            if r < t.usage.len() {
                                t.usage[r].on_get(now, a);
                                t.note_usage_mutation();
                            }
                        }
                    }
                    Op::Free(id, r, a) => {
                        if let Some(t) = tasks.get_mut(&TaskId(id)) {
                            if r < t.usage.len() {
                                t.usage[r].on_free(now, a);
                                t.note_usage_mutation();
                            }
                        }
                    }
                    Op::Slow(id, r, a) => {
                        if let Some(t) = tasks.get_mut(&TaskId(id)) {
                            if r < t.usage.len() {
                                t.usage[r].on_slow(now, a);
                                t.note_usage_mutation();
                            }
                        }
                    }
                    Op::UnitStart(id) => {
                        if let Some(t) = tasks.get_mut(&TaskId(id)) {
                            t.on_unit_start(now);
                        }
                    }
                    Op::UnitFinish(id) => {
                        if let Some(t) = tasks.get_mut(&TaskId(id)) {
                            t.on_unit_finish(now);
                        }
                    }
                    Op::Progress(id, p) => {
                        if let Some(t) = tasks.get_mut(&TaskId(id)) {
                            t.progress.report(p, 100);
                            index.mark_dirty(TaskId(id));
                        }
                    }
                    Op::SetCancellable(id, c) => {
                        if let Some(t) = tasks.get_mut(&TaskId(id)) {
                            t.cancellable = c;
                            index.mark_dirty(TaskId(id));
                        }
                    }
                    Op::RegisterResource => {
                        if reg.len() < 4 {
                            reg.register("extra", ResourceType::Queue);
                            for t in tasks.values_mut() {
                                t.ensure_resources(reg.len());
                            }
                            index.invalidate_all();
                        }
                    }
                    Op::Tick => {
                        for t in tasks.values_mut() {
                            t.roll_window(now);
                        }
                        index.refresh(&tasks, &reg, &cfg);
                        assert_matches_naive(&index, &tasks, &reg, &cfg);
                    }
                }
            }
            // Final tick so every stream ends with a comparison.
            now += 7;
            for t in tasks.values_mut() {
                t.roll_window(now);
            }
            index.refresh(&tasks, &reg, &cfg);
            assert_matches_naive(&index, &tasks, &reg, &cfg);
        }
    }
}
