//! The paper's Algorithm 1.

use super::{candidates, non_dominated, scalarize, skyline, CancellationPolicy, Selection};
use crate::estimator::EstimatorSnapshot;

/// Multi-objective cancellation policy (§3.5, Algorithm 1).
///
/// 1. Restrict to cancellable tasks (lines 2–3).
/// 2. Compute the non-dominated set over future-scaled resource gains
///    (lines 4–10): a task stays if no other task has at-least-equal gain
///    on every resource and strictly more on one.
/// 3. Scalarize each surviving task with per-resource contention weights
///    and pick the maximum (lines 12–20).
///
/// `select` evaluates this with the sort-based skyline (O(n·R) common
/// case); `select_naive` is the literal transcription kept as the
/// differential oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiObjectivePolicy;

impl CancellationPolicy for MultiObjectivePolicy {
    fn select(&self, snapshot: &EstimatorSnapshot) -> Option<Selection> {
        skyline::select_fast(snapshot, |t| &t.gains)
    }

    fn select_naive(&self, snapshot: &EstimatorSnapshot) -> Option<Selection> {
        let cands = candidates(snapshot, |t| &t.gains);
        if cands.is_empty() {
            return None;
        }
        let front = non_dominated(&cands, |t| &t.gains);
        scalarize(snapshot, &front, |t| &t.gains)
    }

    fn name(&self) -> &'static str {
        "multi-objective"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::snapshot;
    use super::*;
    use crate::ids::TaskId;

    #[test]
    fn empty_snapshot_selects_nothing() {
        let snap = snapshot(&[1.0], &[]);
        assert!(MultiObjectivePolicy.select(&snap).is_none());
    }

    #[test]
    fn picks_weighted_winner_across_resources() {
        // Task X: gain (3, 0); task Y: gain (2, 2). With balanced weights
        // Y wins (2.0 vs 1.5); with weight on resource 0 X wins.
        let balanced = snapshot(&[0.5, 0.5], &[(1, &[3.0, 0.0][..]), (2, &[2.0, 2.0][..])]);
        assert_eq!(
            MultiObjectivePolicy.select(&balanced).unwrap().task,
            TaskId(2)
        );
        let skewed = snapshot(&[0.9, 0.1], &[(1, &[3.0, 0.0][..]), (2, &[2.0, 2.0][..])]);
        assert_eq!(
            MultiObjectivePolicy.select(&skewed).unwrap().task,
            TaskId(1)
        );
    }

    #[test]
    fn dominated_task_never_wins_even_with_odd_weights() {
        // Task 3 is dominated by task 2 and must not be selected under any
        // weighting.
        let snap = snapshot(&[0.0, 1.0], &[(2, &[2.0, 2.0][..]), (3, &[1.0, 1.9][..])]);
        assert_eq!(MultiObjectivePolicy.select(&snap).unwrap().task, TaskId(2));
    }

    #[test]
    fn only_cancellable_tasks_are_considered() {
        let mut snap = snapshot(&[1.0], &[(1, &[9.0][..]), (2, &[1.0][..])]);
        snap.tasks[0].cancellable = false;
        assert_eq!(MultiObjectivePolicy.select(&snap).unwrap().task, TaskId(2));
        snap.tasks[1].cancellable = false;
        assert!(MultiObjectivePolicy.select(&snap).is_none());
    }

    #[test]
    fn zero_gain_tasks_select_nothing() {
        let snap = snapshot(&[1.0], &[(1, &[0.0][..])]);
        assert!(MultiObjectivePolicy.select(&snap).is_none());
    }
}
