//! §5.4 baseline 1: single-resource greedy.

use super::{candidates, CancellationPolicy, Selection};
use crate::estimator::EstimatorSnapshot;

/// Cancels the task with the greatest gain on the single most contended
/// resource: `r* = argmax_r Contention(r)`, then
/// `t* = argmax_t Gain(t, r*)`.
///
/// This is the "straightforward heuristic" the multi-objective policy is
/// compared against in Figure 13. It converges to locally optimal
/// decisions when overload spans multiple resources.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicPolicy;

impl CancellationPolicy for HeuristicPolicy {
    fn select(&self, snapshot: &EstimatorSnapshot) -> Option<Selection> {
        let hottest = snapshot
            .resources
            .iter()
            .filter(|r| r.normalized > 0.0)
            .max_by(|a, b| {
                a.normalized
                    .partial_cmp(&b.normalized)
                    .expect("contention is finite")
            })?;
        let idx = hottest.id.index();
        let cands = candidates(snapshot, |t| &t.gains);
        let mut best: Option<Selection> = None;
        for t in cands {
            let g = t.gains.get(idx).copied().unwrap_or(0.0);
            let better = match &best {
                None => g > 0.0,
                Some(b) => g > b.score || (g == b.score && t.task < b.task),
            };
            if better {
                best = Some(Selection {
                    task: t.task,
                    key: t.key,
                    score: g,
                });
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "heuristic"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::snapshot;
    use super::*;
    use crate::ids::TaskId;

    #[test]
    fn picks_max_gain_on_hottest_resource_only() {
        // Resource 1 is hottest. Task 1 has huge gain on resource 0 but
        // none on resource 1; task 2 has modest gain on resource 1.
        let snap = snapshot(&[0.3, 0.7], &[(1, &[9.0, 0.0][..]), (2, &[0.1, 1.0][..])]);
        let sel = HeuristicPolicy.select(&snap).unwrap();
        assert_eq!(sel.task, TaskId(2));
        assert!((sel.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn misses_globally_better_task_by_design() {
        // Two equally hot resources; task Y has gain on both, task X only
        // on the (first-listed) hottest. The heuristic takes X when X's
        // single-resource gain is larger, even though Y is better overall.
        let snap = snapshot(&[0.51, 0.49], &[(1, &[3.0, 0.0][..]), (2, &[2.0, 2.0][..])]);
        assert_eq!(HeuristicPolicy.select(&snap).unwrap().task, TaskId(1));
    }

    #[test]
    fn no_contention_means_no_selection() {
        let snap = snapshot(&[0.0, 0.0], &[(1, &[1.0, 1.0][..])]);
        assert!(HeuristicPolicy.select(&snap).is_none());
    }

    #[test]
    fn zero_gain_on_hot_resource_means_no_selection() {
        let snap = snapshot(&[0.0, 1.0], &[(1, &[5.0, 0.0][..])]);
        assert!(HeuristicPolicy.select(&snap).is_none());
    }

    #[test]
    fn ties_break_toward_lowest_id() {
        let snap = snapshot(&[1.0], &[(9, &[1.0][..]), (4, &[1.0][..])]);
        assert_eq!(HeuristicPolicy.select(&snap).unwrap().task, TaskId(4));
    }
}
