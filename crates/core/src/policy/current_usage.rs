//! §5.4 baseline 2: multi-objective over current usage.

use super::{candidates, non_dominated, scalarize, skyline, CancellationPolicy, Selection};
use crate::estimator::EstimatorSnapshot;

/// Multi-objective selection over *current* resource usage rather than
/// predicted future gain.
///
/// This baseline keeps Algorithm 1 but drops the `(1 − p) / p` progress
/// scaling, so it is biased toward long-running tasks that hold a lot
/// *now* — including tasks that are nearly finished and would release
/// their resources shortly anyway (§3.4's Query-A/Query-B discussion).
///
/// Like [`super::MultiObjectivePolicy`], `select` runs the skyline fast
/// path and `select_naive` keeps the literal transcription as the oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct CurrentUsagePolicy;

impl CancellationPolicy for CurrentUsagePolicy {
    fn select(&self, snapshot: &EstimatorSnapshot) -> Option<Selection> {
        skyline::select_fast(snapshot, |t| &t.current)
    }

    fn select_naive(&self, snapshot: &EstimatorSnapshot) -> Option<Selection> {
        let cands = candidates(snapshot, |t| &t.current);
        if cands.is_empty() {
            return None;
        }
        let front = non_dominated(&cands, |t| &t.current);
        scalarize(snapshot, &front, |t| &t.current)
    }

    fn name(&self) -> &'static str {
        "current-usage"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::snapshot;
    use super::*;
    use crate::ids::TaskId;

    #[test]
    fn uses_current_vectors_not_future_gains() {
        let mut snap = snapshot(&[1.0], &[(1, &[0.0][..]), (2, &[0.0][..])]);
        // Future gains say task 2; current usage says task 1.
        snap.tasks[0].gains = vec![0.1];
        snap.tasks[0].current = vec![1.0];
        snap.tasks[1].gains = vec![1.0];
        snap.tasks[1].current = vec![0.1];
        assert_eq!(CurrentUsagePolicy.select(&snap).unwrap().task, TaskId(1));
    }

    #[test]
    fn empty_input_selects_nothing() {
        let snap = snapshot(&[1.0], &[]);
        assert!(CurrentUsagePolicy.select(&snap).is_none());
    }

    #[test]
    fn dominated_current_usage_is_excluded() {
        let snap = snapshot(&[0.5, 0.5], &[(1, &[2.0, 2.0][..]), (2, &[1.0, 1.0][..])]);
        assert_eq!(CurrentUsagePolicy.select(&snap).unwrap().task, TaskId(1));
    }
}
