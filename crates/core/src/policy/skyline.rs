//! Sort-based skyline evaluation of Algorithm 1 — the fast path behind
//! [`crate::policy::ranked`] and the multi-objective policies' `select`.
//!
//! The naive transcription materializes the candidate set, runs an
//! all-pairs dominance filter (O(n²)), and only then scalarizes. Two
//! observations make that unnecessary:
//!
//! 1. **The winner is the lowest-id maximum-score candidate that is not
//!    dominated by another maximum-score candidate.** Gains and weights
//!    are non-negative, so if `b` dominates `a` (pointwise ≥, somewhere >)
//!    then `score(b) ≥ score(a)`. Any dominator of a max-score candidate
//!    is therefore itself max-score — dominance checks outside the
//!    max-score tie group can never evict a tie-group member, and the
//!    scalarization maximum over the non-dominated set equals the maximum
//!    over all candidates (every candidate is dominated only by
//!    candidates scoring at least as high, and a dominance chain in a
//!    finite set terminates at a non-dominated element).
//!
//! 2. **For the full ranking, dominance checks are needed only against
//!    higher-or-equal-score front members.** Walking candidates in score
//!    order (descending, ids ascending within a tie), a candidate is in
//!    the front iff no already-accepted member of an earlier score group
//!    and no member of its own score group dominates it: a dominator
//!    chain is transitive and terminates at a front member with a score
//!    at least as high. Candidates with zero score cannot dominate a
//!    positive-score candidate (pointwise ≥ implies score ≥) and are
//!    filtered from the naive output anyway, so they are pruned up front.
//!
//! Both functions reuse [`weighted_score`](super::weighted_score) and
//! [`dominates`](super::dominates), so every f64 operation happens in the
//! same order as the naive oracle and results are bit-identical —
//! enforced by the proptest differential suite in
//! `crates/core/tests/policy_prop.rs`.

use super::{dominates, weighted_score, Selection};
use crate::estimator::{EstimatorSnapshot, TaskGainSnapshot};

/// Selects the scalarization winner restricted to the non-dominated set
/// without materializing the front: one O(n·R) scoring pass keeping the
/// max-score tie group, then a dominance pass within that (normally tiny)
/// group. Bit-identical to `candidates → non_dominated → scalarize`.
pub(crate) fn select_fast(
    snapshot: &EstimatorSnapshot,
    gains: impl Fn(&TaskGainSnapshot) -> &[f64] + Copy,
) -> Option<Selection> {
    let mut max = f64::NEG_INFINITY;
    let mut group: Vec<usize> = Vec::new();
    for (i, t) in snapshot.tasks.iter().enumerate() {
        if !t.cancellable {
            continue;
        }
        let s = weighted_score(&snapshot.resources, gains(t));
        if s > max {
            max = s;
            group.clear();
            group.push(i);
        } else if s == max {
            group.push(i);
        }
    }
    // Matches both naive exits at once: an empty candidate set and a
    // best score that fails the `score > 0` filter.
    if max <= 0.0 {
        return None;
    }
    group.sort_by_key(|&i| snapshot.tasks[i].task);
    let winner = group
        .iter()
        .copied()
        .find(|&i| {
            let gi = gains(&snapshot.tasks[i]);
            !group
                .iter()
                .any(|&j| j != i && dominates(gains(&snapshot.tasks[j]), gi))
        })
        // Dominance is a strict partial order, so a finite non-empty
        // group always has a maximal element; unreachable for the finite
        // gain vectors the estimator produces.
        .unwrap_or(group[0]);
    let t = &snapshot.tasks[winner];
    Some(Selection {
        task: t.task,
        key: t.key,
        score: max,
    })
}

/// Computes the full non-dominated ranking with one sort and a running
/// frontier instead of the all-pairs filter. Bit-identical to
/// [`ranked_naive`](super::ranked_naive), including order and scores.
pub(crate) fn ranked_fast(
    snapshot: &EstimatorSnapshot,
    gains: impl Fn(&TaskGainSnapshot) -> &[f64] + Copy,
) -> Vec<Selection> {
    let mut scored: Vec<(usize, f64)> = snapshot
        .tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.cancellable)
        .map(|(i, t)| (i, weighted_score(&snapshot.resources, gains(t))))
        .filter(|&(_, s)| s > 0.0)
        .collect();
    // Scores are finite (estimator caps everything), ids unique: this
    // comparator is a total order, matching the naive output order.
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| snapshot.tasks[a.0].task.cmp(&snapshot.tasks[b.0].task))
    });
    let mut out: Vec<Selection> = Vec::new();
    // Accepted front members, as indices into snapshot.tasks.
    let mut front: Vec<usize> = Vec::new();
    let mut g_start = 0;
    while g_start < scored.len() {
        let score = scored[g_start].1;
        let mut g_end = g_start + 1;
        while g_end < scored.len() && scored[g_end].1 == score {
            g_end += 1;
        }
        // Equal-score candidates are processed as one unit: each is
        // checked against earlier accepted front members and against its
        // whole score group (acceptance inside the group must not depend
        // on processing order).
        let group = &scored[g_start..g_end];
        let prior_front = front.len();
        for &(i, _) in group {
            let gi = gains(&snapshot.tasks[i]);
            let dominated = front[..prior_front]
                .iter()
                .any(|&f| dominates(gains(&snapshot.tasks[f]), gi))
                || group
                    .iter()
                    .any(|&(j, _)| j != i && dominates(gains(&snapshot.tasks[j]), gi));
            if !dominated {
                front.push(i);
                let t = &snapshot.tasks[i];
                out.push(Selection {
                    task: t.task,
                    key: t.key,
                    score,
                });
            }
        }
        g_start = g_end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskId;
    use crate::policy::{ranked_naive, testutil, CancellationPolicy, MultiObjectivePolicy};

    fn future(t: &TaskGainSnapshot) -> &[f64] {
        &t.gains
    }

    #[test]
    fn max_score_tie_group_still_checks_dominance() {
        // With weights (1, 0), task 1 = (1, 0) and task 2 = (1, 5) tie on
        // score 1.0 but task 2 dominates task 1: the bare argmax (lowest
        // id) would wrongly pick task 1.
        let snap = testutil::snapshot(&[1.0, 0.0], &[(1, &[1.0, 0.0][..]), (2, &[1.0, 5.0][..])]);
        let sel = select_fast(&snap, future).unwrap();
        assert_eq!(sel.task, TaskId(2));
        let naive = MultiObjectivePolicy.select_naive(&snap).unwrap();
        assert_eq!(sel, naive);
    }

    #[test]
    fn same_score_group_members_can_evict_each_other_in_ranking() {
        // Tasks 1 and 2 tie on score; 2 dominates 1, so only 2 ranks.
        let snap = testutil::snapshot(
            &[1.0, 0.0],
            &[
                (1, &[1.0, 0.0][..]),
                (2, &[1.0, 5.0][..]),
                (3, &[0.5, 9.0][..]),
            ],
        );
        let fast = ranked_fast(&snap, future);
        let naive = ranked_naive(&snap);
        assert_eq!(fast, naive);
        let ids: Vec<u64> = fast.iter().map(|s| s.task.0).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn zero_score_candidates_never_win_or_rank() {
        // Positive gain only on a zero-weight resource: candidate under
        // the naive filter, but score 0 → None / absent in both paths.
        let snap = testutil::snapshot(&[0.0, 1.0], &[(1, &[4.0, 0.0][..])]);
        assert!(select_fast(&snap, future).is_none());
        assert!(MultiObjectivePolicy.select_naive(&snap).is_none());
        assert!(ranked_fast(&snap, future).is_empty());
        assert!(ranked_naive(&snap).is_empty());
    }

    #[test]
    fn non_cancellable_tasks_cannot_dominate_candidates() {
        // Task 9 dominates task 1 but is not cancellable, so it is not a
        // candidate and must not evict task 1 from the front.
        let mut snap =
            testutil::snapshot(&[0.5, 0.5], &[(1, &[1.0, 1.0][..]), (9, &[2.0, 2.0][..])]);
        snap.tasks[1].cancellable = false;
        let sel = select_fast(&snap, future).unwrap();
        assert_eq!(sel.task, TaskId(1));
        assert_eq!(Some(sel), MultiObjectivePolicy.select_naive(&snap));
        assert_eq!(ranked_fast(&snap, future), ranked_naive(&snap));
    }
}
