//! Cancellation policies (§3.5, ablated in §5.4).
//!
//! Given an [`EstimatorSnapshot`], a policy selects the single task whose
//! cancellation is expected to yield the largest overall performance
//! benefit. Three policies are provided:
//!
//! - [`MultiObjectivePolicy`] — the paper's Algorithm 1: restrict to the
//!   non-dominated set, then scalarize with contention-level weights,
//! - [`HeuristicPolicy`] — §5.4 baseline 1: greatest gain on the single
//!   most contended resource,
//! - [`CurrentUsagePolicy`] — §5.4 baseline 2: multi-objective over
//!   *current* usage instead of future-scaled gain.
//!
//! The multi-objective policies carry two implementations each. The
//! literal transcription of Algorithm 1 — materialize the candidate set,
//! run the all-pairs non-dominated filter, scalarize — is O(n²) in the
//! candidate count and is kept as [`CancellationPolicy::select_naive`],
//! the differential oracle. The production path
//! ([`CancellationPolicy::select`]) uses the sort-based skyline in
//! [`skyline`], which returns the same `Selection` bit-for-bit (same
//! winner, same tie-breaks, same f64 score) in O(n·R) for the common
//! case. [`PolicyIndex`] goes one step further and evaluates the same
//! decision from incrementally maintained per-task terms, without
//! rebuilding the snapshot at all.

mod current_usage;
mod heuristic;
mod index;
mod multi_objective;
mod skyline;

pub use current_usage::CurrentUsagePolicy;
pub use heuristic::HeuristicPolicy;
pub use index::PolicyIndex;
pub use multi_objective::MultiObjectivePolicy;

use crate::config::PolicyKind;
use crate::estimator::{EstimatorSnapshot, ResourceSnapshot, TaskGainSnapshot};
use crate::ids::{TaskId, TaskKey};
use crate::record::{GainTerm, MAX_GAIN_TERMS};

/// A policy's pick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// The task to cancel.
    pub task: TaskId,
    /// Its application key (what the initiator receives).
    pub key: TaskKey,
    /// The scalarized score that won.
    pub score: f64,
}

/// A cancellation policy.
pub trait CancellationPolicy: Send + Sync {
    /// Selects the optimal task to cancel, or `None` if no cancellable
    /// task offers any gain.
    fn select(&self, snapshot: &EstimatorSnapshot) -> Option<Selection>;

    /// The reference (naive) evaluation of the same decision. Policies
    /// with an optimized `select` override this with the literal
    /// Algorithm-1 transcription; the two must agree bit-for-bit on every
    /// snapshot, which the proptest oracle-differential suite enforces.
    fn select_naive(&self, snapshot: &EstimatorSnapshot) -> Option<Selection> {
        self.select(snapshot)
    }

    /// Human-readable policy name for experiment output.
    fn name(&self) -> &'static str;
}

impl PolicyKind {
    /// Instantiates the configured policy.
    pub fn build(self) -> Box<dyn CancellationPolicy> {
        match self {
            PolicyKind::MultiObjective => Box::new(MultiObjectivePolicy),
            PolicyKind::Heuristic => Box::new(HeuristicPolicy),
            PolicyKind::CurrentUsage => Box::new(CurrentUsagePolicy),
        }
    }
}

/// True if `b` dominates `a` under the given gain vectors: `b` is no worse
/// on every resource and strictly better on at least one.
pub(crate) fn dominates(b: &[f64], a: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (x, y) in b.iter().zip(a.iter()) {
        if x < y {
            return false;
        }
        if x > y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Per-resource `weight × gain` terms in resource-id order: the single
/// definition of Algorithm 1's objective terms, shared by the scalarized
/// score, the explainer breakdown, and the indexed engine, so a future
/// weight-formula change cannot diverge between paths.
pub(crate) fn weighted_terms<'a>(
    resources: &'a [ResourceSnapshot],
    g: &'a [f64],
) -> impl Iterator<Item = GainTerm> + 'a {
    resources.iter().map(move |r| GainTerm {
        resource: r.id,
        weight: r.weight,
        gain: g.get(r.id.index()).copied().unwrap_or(0.0),
    })
}

/// Algorithm 1's scalarized score: `Σ_r weight_r × gain_r`, summed in
/// resource-id order. Every scorer goes through this helper, which pins
/// the f64 evaluation order — and therefore the exact rounding — across
/// the naive path, the skyline path, and the [`PolicyIndex`].
pub(crate) fn weighted_score(resources: &[ResourceSnapshot], g: &[f64]) -> f64 {
    weighted_terms(resources, g).map(|t| t.contribution()).sum()
}

/// Candidate filter shared by all policies: cancellable tasks with a
/// positive gain on at least one resource.
pub(crate) fn candidates(
    snapshot: &EstimatorSnapshot,
    gains: impl Fn(&TaskGainSnapshot) -> &[f64] + Copy,
) -> Vec<&TaskGainSnapshot> {
    snapshot
        .tasks
        .iter()
        .filter(|t| t.cancellable && gains(t).iter().any(|&g| g > 0.0))
        .collect()
}

/// Algorithm 1 lines 2–10: the non-dominated (dominator) set.
pub(crate) fn non_dominated<'a>(
    cands: &[&'a TaskGainSnapshot],
    gains: impl Fn(&TaskGainSnapshot) -> &[f64] + Copy,
) -> Vec<&'a TaskGainSnapshot> {
    cands
        .iter()
        .filter(|a| !cands.iter().any(|b| dominates(gains(b), gains(a))))
        .copied()
        .collect()
}

/// Algorithm 1 lines 12–20: contention-weighted scalarization; ties break
/// toward the lowest task id for determinism.
pub(crate) fn scalarize(
    snapshot: &EstimatorSnapshot,
    set: &[&TaskGainSnapshot],
    gains: impl Fn(&TaskGainSnapshot) -> &[f64] + Copy,
) -> Option<Selection> {
    let mut best: Option<Selection> = None;
    for t in set {
        let total = weighted_score(&snapshot.resources, gains(t));
        let better = match &best {
            None => true,
            Some(b) => total > b.score || (total == b.score && t.task < b.task),
        };
        if better {
            best = Some(Selection {
                task: t.task,
                key: t.key,
                score: total,
            });
        }
    }
    best.filter(|s| s.score > 0.0)
}

/// The full non-dominated candidate ranking under Algorithm 1's
/// scalarization, best first; ties break toward the lowest task id.
/// Used by the decision-trace layer to explain *why* the winner won —
/// the tick path only computes this when a recorder is attached.
///
/// Computed with the sort-based skyline; bit-identical to
/// [`ranked_naive`].
pub fn ranked(snapshot: &EstimatorSnapshot) -> Vec<Selection> {
    skyline::ranked_fast(snapshot, |t| &t.gains)
}

/// Reference implementation of [`ranked`]: materialize candidates, run
/// the all-pairs non-dominated filter, score, sort. O(n²) in the
/// candidate count; kept as the differential oracle for the skyline.
pub fn ranked_naive(snapshot: &EstimatorSnapshot) -> Vec<Selection> {
    fn gains(t: &TaskGainSnapshot) -> &[f64] {
        &t.gains
    }
    let cands = candidates(snapshot, gains);
    let nd = non_dominated(&cands, gains);
    let mut out: Vec<Selection> = nd
        .iter()
        .map(|t| Selection {
            task: t.task,
            key: t.key,
            score: weighted_score(&snapshot.resources, gains(t)),
        })
        .filter(|s| s.score > 0.0)
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.task.cmp(&b.task))
    });
    out
}

/// The per-resource score breakdown for `task`: up to
/// [`MAX_GAIN_TERMS`] `weight × gain` terms, highest contribution first
/// (terms with zero contribution are omitted). Unused slots are `None`.
///
/// Resolves the task with a linear scan of the snapshot; callers holding
/// a [`PolicyIndex`] should use [`PolicyIndex::gain_terms`], which
/// resolves through the task→slot map instead.
pub fn gain_terms(
    snapshot: &EstimatorSnapshot,
    task: TaskId,
) -> [Option<GainTerm>; MAX_GAIN_TERMS] {
    let Some(t) = snapshot.tasks.iter().find(|t| t.task == task) else {
        return [None; MAX_GAIN_TERMS];
    };
    gain_terms_for(&snapshot.resources, &t.gains)
}

/// [`gain_terms`] with the task's gain vector already resolved, so the
/// explanation cost is O(R) regardless of the task population.
pub fn gain_terms_for(
    resources: &[ResourceSnapshot],
    gains: &[f64],
) -> [Option<GainTerm>; MAX_GAIN_TERMS] {
    let mut out = [None; MAX_GAIN_TERMS];
    let mut terms: Vec<GainTerm> = weighted_terms(resources, gains)
        .filter(|term| term.contribution() > 0.0)
        .collect();
    terms.sort_by(|a, b| {
        b.contribution()
            .partial_cmp(&a.contribution())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.resource.0.cmp(&b.resource.0))
    });
    for (slot, term) in out.iter_mut().zip(terms) {
        *slot = Some(term);
    }
    out
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::ids::{ResourceId, ResourceType};

    /// Builds a snapshot directly from weight and gain vectors.
    pub fn snapshot(weights: &[f64], tasks: &[(u64, &[f64])]) -> EstimatorSnapshot {
        let resources = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| crate::estimator::ResourceSnapshot {
                id: ResourceId(i as u32),
                rtype: ResourceType::Lock,
                contention: w,
                normalized: w,
                weight: w,
                wait_ns: 0,
                hold_ns: 0,
                acquired: 0,
                slow_amount: 0,
            })
            .collect();
        let tasks = tasks
            .iter()
            .map(|(id, g)| TaskGainSnapshot {
                task: TaskId(*id),
                key: TaskKey(*id),
                cancellable: true,
                gains: g.to_vec(),
                current: g.to_vec(),
                progress: None,
            })
            .collect();
        EstimatorSnapshot {
            resources,
            tasks,
            t_exec_ns: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_requires_strict_improvement() {
        assert!(dominates(&[2.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[2.0, 0.5], &[1.0, 1.0]));
        assert!(dominates(&[5.0, 2.0], &[4.0, 1.0])); // paper's example
    }

    #[test]
    fn non_dominated_set_keeps_pareto_front() {
        let snap = testutil::snapshot(
            &[0.5, 0.5],
            &[
                (1, &[3.0, 0.0][..]),
                (2, &[2.0, 2.0][..]),
                (3, &[1.0, 1.0][..]), // dominated by task 2
                (4, &[0.0, 3.0][..]),
            ],
        );
        let cands = candidates(&snap, |t| &t.gains);
        let nd = non_dominated(&cands, |t| &t.gains);
        let ids: Vec<u64> = nd.iter().map(|t| t.task.0).collect();
        assert_eq!(ids, vec![1, 2, 4]);
    }

    #[test]
    fn scalarize_matches_paper_example() {
        // §3.5: C_mem = 0.6, C_lock = 0.4; task A = (3, 1), task B = (2, 2);
        // A scores 2.2, B scores 2.0 → A wins.
        let snap = testutil::snapshot(&[0.6, 0.4], &[(1, &[3.0, 1.0][..]), (2, &[2.0, 2.0][..])]);
        let cands = candidates(&snap, |t| &t.gains);
        let sel = scalarize(&snap, &cands, |t| &t.gains).unwrap();
        assert_eq!(sel.task, TaskId(1));
        assert!((sel.score - 2.2).abs() < 1e-9);
    }

    #[test]
    fn scalarize_tie_breaks_deterministically() {
        let snap = testutil::snapshot(&[1.0], &[(7, &[1.0][..]), (3, &[1.0][..])]);
        let cands = candidates(&snap, |t| &t.gains);
        let sel = scalarize(&snap, &cands, |t| &t.gains).unwrap();
        assert_eq!(sel.task, TaskId(3));
    }

    #[test]
    fn zero_score_yields_none() {
        let snap = testutil::snapshot(&[0.0], &[(1, &[1.0][..])]);
        let cands = candidates(&snap, |t| &t.gains);
        assert!(scalarize(&snap, &cands, |t| &t.gains).is_none());
    }

    #[test]
    fn non_cancellable_tasks_are_filtered() {
        let mut snap = testutil::snapshot(&[1.0], &[(1, &[5.0][..]), (2, &[1.0][..])]);
        snap.tasks[0].cancellable = false;
        let cands = candidates(&snap, |t| &t.gains);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].task, TaskId(2));
    }

    #[test]
    fn ranked_orders_non_dominated_candidates_by_score() {
        // §3.5 example plus a dominated task that must not appear.
        let snap = testutil::snapshot(
            &[0.6, 0.4],
            &[
                (1, &[3.0, 1.0][..]), // 2.2
                (2, &[2.0, 2.0][..]), // 2.0
                (3, &[1.0, 1.0][..]), // dominated by 2
            ],
        );
        let r = ranked(&snap);
        let ids: Vec<u64> = r.iter().map(|s| s.task.0).collect();
        assert_eq!(ids, vec![1, 2]);
        assert!(r[0].score > r[1].score);
        // The top of the ranking must agree with the policy's pick.
        let sel = MultiObjectivePolicy.select(&snap).unwrap();
        assert_eq!(sel.task, r[0].task);
        assert_eq!(sel.score, r[0].score);
        // And the skyline ranking must agree with the naive oracle.
        assert_eq!(r, ranked_naive(&snap));
    }

    #[test]
    fn gain_terms_break_down_the_winning_score() {
        let snap = testutil::snapshot(&[0.6, 0.4], &[(1, &[3.0, 1.0][..])]);
        let terms = gain_terms(&snap, TaskId(1));
        let present: Vec<GainTerm> = terms.iter().flatten().copied().collect();
        assert_eq!(present.len(), 2);
        // Highest contribution first: 0.6*3.0 = 1.8, then 0.4*1.0 = 0.4.
        assert!((present[0].contribution() - 1.8).abs() < 1e-9);
        assert!((present[1].contribution() - 0.4).abs() < 1e-9);
        let total: f64 = present.iter().map(|t| t.contribution()).sum();
        let sel = MultiObjectivePolicy.select(&snap).unwrap();
        assert!((total - sel.score).abs() < 1e-9, "terms must sum to score");
    }

    #[test]
    fn gain_terms_for_unknown_task_are_empty() {
        let snap = testutil::snapshot(&[1.0], &[(1, &[1.0][..])]);
        assert!(gain_terms(&snap, TaskId(99)).iter().all(|t| t.is_none()));
    }

    #[test]
    fn policy_kind_builds_named_policies() {
        assert_eq!(PolicyKind::MultiObjective.build().name(), "multi-objective");
        assert_eq!(PolicyKind::Heuristic.build().name(), "heuristic");
        assert_eq!(PolicyKind::CurrentUsage.build().name(), "current-usage");
    }
}
