//! # Integration guide
//!
//! How to wire Atropos into an application, following the same steps the
//! paper's authors used for MySQL (Figures 7 and 8). Everything here is
//! executable documentation — the examples compile and run as doctests.
//!
//! ## 1. Decide what a "cancellable task" is (§3.1)
//!
//! A cancellable task is the unit the framework may cancel. It can be one
//! request, one user connection (the MySQL integration groups all queries
//! of a connection under the connection's thread id), or a background job
//! like purge or vacuum. Pick the granularity at which your cancellation
//! initiator operates: if your kill switch takes a connection id, tasks
//! are connections.
//!
//! ## 2. Register the cancellation initiator (§3.6)
//!
//! The initiator is the application's own safe-cancel entry point —
//! `sql_kill`, `pg_cancel_backend`, a task-manager API. Atropos calls it
//! with the task's key; the application sets its cancel flag and the
//! request unwinds at its next safe checkpoint, releasing what it holds.
//!
//! ```
//! use std::sync::Arc;
//! use atropos::{AtroposConfig, AtroposRuntime};
//! use atropos_sim::SystemClock;
//!
//! let rt = AtroposRuntime::new(AtroposConfig::default(), Arc::new(SystemClock::new()));
//! rt.set_cancel_action(|key| {
//!     // e.g. sessions.lock().get(&key.0).map(Session::request_kill);
//!     let _ = key;
//! });
//! ```
//!
//! Applications without any initiator can opt into the coarse thread-level
//! fallback ([`crate::AtroposRuntime::set_thread_cancel_action`]) — off by
//! default because terminating a thread mid-critical-section is unsafe
//! unless the developers established otherwise (the paper's Apache/PHP
//! case, §5.2).
//!
//! ## 3. Register application resources (§3.2)
//!
//! One registration per *logical* resource, not per instance: the paper
//! traces MySQL's five table locks as one table-lock resource. Choose the
//! type by how the resource is consumed:
//!
//! | Type | get | free | slow_by |
//! |---|---|---|---|
//! | `Lock` | acquired | released | began waiting |
//! | `Queue` | dequeued / got a slot | finished / left | enqueued |
//! | `Memory` | acquired N units (pages/bytes) | released N units | caused N evictions (stall begins) |
//! | `System` | got the device/core | yielded it | began waiting |
//!
//! The memory protocol mirrors Figure 8 exactly: `get_resource` where
//! `buf_page_get_gen` returns a page, `slow_by_resource` right after
//! `buf_LRU_scan_and_free_block` evicts, `free_resource` where pages are
//! released. Because a memory stall is bracketed `slow_by → get`, the
//! framework measures the eviction delay without extra instrumentation.
//!
//! ## 4. Report work units and progress (§3.3, §3.4)
//!
//! `unit_started`/`unit_finished` bracket each client-visible request;
//! they feed the overload detector's throughput/latency windows. If your
//! requests have quantifiable progress (rows examined vs. the optimizer's
//! estimate — the GetNext model), report it so the policy prefers hogs
//! with demand still ahead of them over hogs that are nearly done:
//!
//! ```
//! # use std::sync::Arc;
//! # use atropos::{AtroposConfig, AtroposRuntime, ResourceType};
//! # use atropos_sim::SystemClock;
//! # let rt = AtroposRuntime::new(AtroposConfig::default(), Arc::new(SystemClock::new()));
//! # let pool = rt.register_resource("buffer_pool", ResourceType::Memory);
//! let task = rt.create_cancel(Some(42)); // connection/thread id as key
//! rt.unit_started(task);
//! rt.get_resource(task, pool, 128);
//! rt.report_progress(task, 10_000, 1_000_000); // rows_examined / estimate
//! rt.unit_finished(task);
//! rt.free_cancel(task);
//! ```
//!
//! Tasks that never report progress are scored at the configured
//! [`crate::AtroposConfig::default_progress`] (0.5 by default: gain equals
//! current usage).
//!
//! ## 5. Drive the control loop
//!
//! Call [`crate::AtroposRuntime::tick`] periodically — a control thread
//! at the detector window period (10 ms by default) is typical. Each tick
//! closes the accounting window, evaluates the overload condition,
//! verifies against per-resource contention, and may invoke the
//! initiator. Everything the tick decided is returned as a
//! [`crate::runtime::TickOutcome`] for logging.
//!
//! ## 6. Tuning knobs that matter
//!
//! - [`crate::DetectorConfig::slo_latency_ns`] — the whole system is
//!   driven by this bound; set it from your latency SLO.
//! - [`crate::AtroposConfig::cancel_min_interval_ns`] — the
//!   aggressiveness/recovery trade-off of §5.3: shorter intervals chase
//!   storms of noisy tasks faster but can over-cancel.
//! - [`crate::DetectorConfig::min_contention`] — how contended a resource
//!   must be before a latency violation is blamed on it rather than on
//!   plain demand overload (which is delegated to
//!   [`crate::AtroposRuntime::set_regular_overload_action`]).
//!
//! ## 7. Fairness guarantees you get for free (§4)
//!
//! Each task is canceled at most once; a canceled task is re-executed
//! once resources have stayed available for
//! [`crate::AtroposConfig::reexec_quiet_windows`] windows (re-executions
//! are serialized and the revived task is non-cancellable), or dropped if
//! its deadline passes first; background tasks are never dropped, only
//! delayed up to [`crate::AtroposConfig::background_max_wait_ns`].
