//! Cancellable tasks (§3.1) and the task registry.
//!
//! A *cancellable task* is the unit of work Atropos may cancel: a user
//! connection, a single request, or a background job (purge, vacuum, WAL
//! writer) — the developer chooses the aggregation when calling
//! `create_cancel`. The registry attributes resource usage, progress, and
//! execution activity to each task.

use crate::accounting::UsageStats;
use crate::ids::{TaskId, TaskKey};
use crate::progress::ProgressTracker;

/// Cross-node provenance of a task (§4 distributed extension): the
/// end-to-end identity piggybacked over the RPC edge that created it.
/// A task carrying an origin is a *proxy* for work rooted on another
/// node; canceling it should be attributed to — and propagated toward —
/// that root, not treated as local load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteOrigin {
    /// Root task key as minted on the originating node.
    pub root_key: u64,
    /// The originating node.
    pub origin_node: u16,
    /// Hops between the origin and this node.
    pub hops: u8,
}

/// One cross-node blame attribution: a cancel issued here against a task
/// that proxies a remote root. The federation layer reads these to prove
/// blame conservation (invariant I9) and to drive upstream propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteBlame {
    /// The callee-local key the cancel was issued against.
    pub local_key: TaskKey,
    /// The remote root blamed.
    pub origin: RemoteOrigin,
    /// When the cancel was issued (ns).
    pub at_ns: u64,
}

/// Lifecycle state of a cancellable task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Registered and (potentially) executing work.
    Running,
    /// The cancel initiator was invoked; awaiting the application's
    /// acknowledgement (usually `free_cancel` during rollback).
    CancelRequested,
}

/// Per-task record maintained by the runtime manager.
#[derive(Debug)]
pub struct TaskRecord {
    /// Framework-assigned id.
    pub id: TaskId,
    /// Application-visible key (passed to the cancel initiator).
    pub key: TaskKey,
    /// Lifecycle state.
    pub state: TaskState,
    /// Whether the policy may select this task (paper §3.5: only tasks
    /// registered as cancellable are considered; re-executed tasks are
    /// marked non-cancellable for fairness, §4).
    pub cancellable: bool,
    /// Background tasks have no SLO; their canceled work is re-executed
    /// after a maximum wait instead of being dropped.
    pub background: bool,
    /// Registration time (ns).
    pub created_at: u64,
    /// Per-resource usage, indexed by `ResourceId::index()`.
    pub usage: Vec<UsageStats>,
    /// GetNext progress state.
    pub progress: ProgressTracker,
    /// Completed work units (requests) attributed to this task.
    pub units_completed: u64,
    /// Cumulative active (executing) time, ns.
    pub total_active_ns: u64,
    /// Child tasks spawned on behalf of this task (the distributed
    /// extension of §4: a root request fanning out to sub-tasks).
    /// Canceling the root propagates to all descendants.
    pub children: Vec<TaskId>,
    /// Cross-node provenance, if this task proxies a remote root.
    pub origin: Option<RemoteOrigin>,
    unit_since: Option<u64>,
    w_active_ns: u64,
    last_window_active_ns: u64,
    /// True when the last roll published an all-zero window with no open
    /// unit, no open intervals and nothing held: further rolls are no-ops
    /// until a new event arrives. Set only by `roll_window`; cleared by
    /// `on_unit_start`/`on_unit_finish`/[`TaskRecord::note_usage_mutation`].
    quiescent: bool,
}

impl TaskRecord {
    /// Creates a record with usage slots for `n_resources` resources.
    pub fn new(id: TaskId, key: TaskKey, now: u64, n_resources: usize) -> Self {
        Self {
            id,
            key,
            state: TaskState::Running,
            cancellable: true,
            background: false,
            created_at: now,
            usage: (0..n_resources).map(|_| UsageStats::default()).collect(),
            progress: ProgressTracker::default(),
            units_completed: 0,
            total_active_ns: 0,
            children: Vec::new(),
            origin: None,
            unit_since: None,
            w_active_ns: 0,
            last_window_active_ns: 0,
            quiescent: false,
        }
    }

    /// Ensures the usage vector covers `n_resources` (resources may be
    /// registered after some tasks exist).
    pub fn ensure_resources(&mut self, n_resources: usize) {
        while self.usage.len() < n_resources {
            self.usage.push(UsageStats::default());
        }
    }

    /// Marks the start of a work unit (e.g. one query on this connection).
    ///
    /// Starting a unit while one is open restarts the measurement (the
    /// previous unit is charged up to `now` and abandoned without counting
    /// as a completion).
    pub fn on_unit_start(&mut self, now: u64) {
        self.quiescent = false;
        if let Some(since) = self.unit_since {
            let d = now.saturating_sub(since);
            self.total_active_ns += d;
            self.w_active_ns += d;
        }
        self.unit_since = Some(now);
    }

    /// Marks the end of the open work unit; returns its latency if a unit
    /// was open.
    pub fn on_unit_finish(&mut self, now: u64) -> Option<u64> {
        self.quiescent = false;
        let since = self.unit_since.take()?;
        let d = now.saturating_sub(since);
        self.total_active_ns += d;
        self.w_active_ns += d;
        self.units_completed += 1;
        Some(d)
    }

    /// True if a work unit is currently executing.
    pub fn is_active(&self) -> bool {
        self.unit_since.is_some()
    }

    /// Closes the window at `now`: charges and renews the open unit,
    /// publishes window-local active time, and rolls every usage stat.
    ///
    /// A quiescent task (nothing open, nothing accumulated, all-zero
    /// published windows) is skipped outright, so per-tick roll cost
    /// scales with *busy* tasks rather than the registered population.
    pub fn roll_window(&mut self, now: u64) {
        if self.quiescent {
            debug_assert!(
                self.unit_since.is_none()
                    && self.w_active_ns == 0
                    && self.last_window_active_ns == 0
                    && self.usage.iter().all(|u| u.is_quiescent()),
                "usage mutated without note_usage_mutation"
            );
            return;
        }
        if let Some(since) = self.unit_since {
            let d = now.saturating_sub(since);
            self.total_active_ns += d;
            self.w_active_ns += d;
            self.unit_since = Some(now);
        }
        self.last_window_active_ns = self.w_active_ns;
        self.w_active_ns = 0;
        for u in &mut self.usage {
            u.roll_window(now);
        }
        self.quiescent = self.unit_since.is_none()
            && self.last_window_active_ns == 0
            && self.usage.iter().all(|u| u.is_quiescent());
    }

    /// Active execution time in the most recently closed window.
    pub fn window_active_ns(&self) -> u64 {
        self.last_window_active_ns
    }

    /// Tells the record its `usage` vector was mutated directly (the
    /// ingest path does this for every traced event), re-arming
    /// [`TaskRecord::roll_window`] after a quiescent stretch.
    pub fn note_usage_mutation(&mut self) {
        self.quiescent = false;
    }

    /// True if the last roll left this task with nothing to publish: its
    /// cached terms in the policy index cannot have changed since.
    pub(crate) fn window_quiescent(&self) -> bool {
        self.quiescent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> TaskRecord {
        TaskRecord::new(TaskId(1), TaskKey(42), 0, 2)
    }

    #[test]
    fn new_task_is_running_and_cancellable() {
        let t = rec();
        assert_eq!(t.state, TaskState::Running);
        assert!(t.cancellable);
        assert!(!t.background);
        assert_eq!(t.usage.len(), 2);
    }

    #[test]
    fn unit_latency_is_measured() {
        let mut t = rec();
        t.on_unit_start(100);
        assert!(t.is_active());
        assert_eq!(t.on_unit_finish(350), Some(250));
        assert!(!t.is_active());
        assert_eq!(t.units_completed, 1);
        assert_eq!(t.total_active_ns, 250);
    }

    #[test]
    fn finish_without_start_is_none() {
        let mut t = rec();
        assert_eq!(t.on_unit_finish(10), None);
        assert_eq!(t.units_completed, 0);
    }

    #[test]
    fn restarting_a_unit_charges_but_does_not_complete() {
        let mut t = rec();
        t.on_unit_start(0);
        t.on_unit_start(100); // restart
        assert_eq!(t.total_active_ns, 100);
        assert_eq!(t.units_completed, 0);
        assert_eq!(t.on_unit_finish(150), Some(50));
    }

    #[test]
    fn active_time_renews_across_windows() {
        let mut t = rec();
        t.on_unit_start(0);
        t.roll_window(100);
        assert_eq!(t.window_active_ns(), 100);
        t.roll_window(250);
        assert_eq!(t.window_active_ns(), 150);
        t.on_unit_finish(300);
        t.roll_window(400);
        assert_eq!(t.window_active_ns(), 50);
        assert_eq!(t.total_active_ns, 300);
    }

    #[test]
    fn ensure_resources_grows_only() {
        let mut t = rec();
        t.ensure_resources(5);
        assert_eq!(t.usage.len(), 5);
        t.ensure_resources(3);
        assert_eq!(t.usage.len(), 5);
    }

    #[test]
    fn roll_window_rolls_usage_too() {
        let mut t = rec();
        t.usage[0].on_get(10, 3);
        t.roll_window(50);
        assert_eq!(t.usage[0].window().acquired, 3);
    }

    #[test]
    fn quiescent_task_skips_rolls_until_rearmed() {
        let mut t = rec();
        t.usage[0].on_get(10, 3);
        t.usage[0].on_free(20, 3);
        t.roll_window(50); // publishes the get/free window
        assert!(!t.window_quiescent());
        t.roll_window(100); // publishes all-zero → quiescent
        assert!(t.window_quiescent());
        t.roll_window(150); // no-op
        assert!(t.window_quiescent());
        // A new event must re-arm the roll.
        t.usage[0].on_get(160, 1);
        t.note_usage_mutation();
        assert!(!t.window_quiescent());
        t.roll_window(200);
        assert_eq!(t.usage[0].window().acquired, 1);
        assert!(!t.window_quiescent()); // still holding
    }

    #[test]
    fn open_unit_prevents_quiescence() {
        let mut t = rec();
        t.on_unit_start(0);
        t.roll_window(100);
        t.roll_window(200);
        assert!(!t.window_quiescent());
        assert_eq!(t.window_active_ns(), 100);
        t.on_unit_finish(250);
        t.roll_window(300);
        t.roll_window(400);
        assert!(t.window_quiescent());
    }
}
