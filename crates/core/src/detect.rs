//! Overload detection (§3.3).
//!
//! Atropos layers its detection on the state-of-the-art signal from
//! Breakwater: it continuously monitors end-to-end throughput and latency,
//! and flags a *candidate* overload when the latency quantile exceeds the
//! SLO while throughput stays flat (more demand is not producing more
//! completions — something inside is saturated). The estimator then
//! verifies whether a specific application resource is the bottleneck; if
//! so the event is classified as a *resource overload* and triggers a
//! cancellation decision, otherwise it is *regular* overload and is
//! delegated to whatever admission-control mechanism is in place.

use atropos_metrics::WindowedSeries;

use crate::config::DetectorConfig;
use crate::ids::ResourceId;
use crate::record::{DecisionEvent, RecorderHandle};

/// Result of one detector evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum OverloadSignal {
    /// Performance within SLO (or not enough data yet).
    Ok,
    /// Latency violates the SLO while throughput is flat: a potential
    /// resource overload, pending estimator verification.
    Candidate {
        /// Observed latency at the configured quantile (ns).
        latency_ns: u64,
        /// Observed throughput in the latest closed window (qps).
        throughput_qps: f64,
    },
}

/// Estimator verdict on a candidate overload.
#[derive(Debug, Clone, PartialEq)]
pub enum OverloadClass {
    /// One or more application resources are bottlenecked; listed most
    /// contended first.
    Resource(Vec<ResourceId>),
    /// No specific resource is bottlenecked: regular (demand) overload,
    /// handled by the fallback mechanism.
    Regular,
}

/// The periodic end-to-end performance monitor.
#[derive(Debug)]
pub struct Detector {
    cfg: DetectorConfig,
    series: WindowedSeries,
    evaluations: u64,
    candidates: u64,
}

impl Detector {
    /// Creates a detector with windows starting at `origin`.
    pub fn new(cfg: DetectorConfig, origin: u64) -> Self {
        let window_ns = cfg.window_ns;
        Self {
            cfg,
            series: WindowedSeries::new(origin, window_ns),
            evaluations: 0,
            candidates: 0,
        }
    }

    /// Records a completed work unit.
    pub fn record_completion(&mut self, now: u64, latency_ns: u64) {
        self.series.record_completion(now, latency_ns);
    }

    /// Records a dropped work unit.
    pub fn record_drop(&mut self, now: u64) {
        self.series.record_drop(now);
    }

    /// Evaluates the overload condition at time `now`.
    ///
    /// `in_flight` is the number of work units currently executing; it
    /// distinguishes a *stall* (no completions while work is pending —
    /// the extreme form of overload) from an idle system.
    pub fn evaluate(&mut self, now: u64, in_flight: u64) -> OverloadSignal {
        self.evaluations += 1;
        // Materialize empty windows: during a stall nothing is recorded,
        // and the silent period must read as empty windows, not stale ones.
        self.series.touch(now);
        let recent = self.series.recent_closed(now, 2);
        if recent.len() < 2 {
            return OverloadSignal::Ok;
        }
        let (prev, last) = (&recent[recent.len() - 2], &recent[recent.len() - 1]);
        if last.completed == 0 {
            if in_flight > 0 {
                self.candidates += 1;
                return OverloadSignal::Candidate {
                    latency_ns: u64::MAX,
                    throughput_qps: 0.0,
                };
            }
            return OverloadSignal::Ok;
        }
        let latency = last.latency.percentile(self.cfg.latency_quantile);
        let tput_prev = prev.throughput_qps(self.cfg.window_ns);
        let tput_last = last.throughput_qps(self.cfg.window_ns);
        // A throughput collapse with work still in flight is a candidate
        // even when the (surviving) completions look fast: a partial
        // convoy blocks its victims, and their inflated latencies only
        // surface *after* the culprit releases — too late to act on.
        let hist = self.series.recent_closed(now, self.cfg.history);
        let hist_mean = if hist.is_empty() {
            0.0
        } else {
            hist.iter().map(|w| w.completed).sum::<u64>() as f64 / hist.len() as f64
        };
        let collapsed = in_flight > 0
            && hist_mean > 0.0
            && (last.completed as f64) < hist_mean * (1.0 - self.cfg.throughput_drop_frac);
        if collapsed {
            self.candidates += 1;
            return OverloadSignal::Candidate {
                latency_ns: latency,
                throughput_qps: tput_last,
            };
        }
        if latency <= self.cfg.slo_latency_ns {
            return OverloadSignal::Ok;
        }
        let rising = tput_prev > 0.0
            && (tput_last - tput_prev) / tput_prev > self.cfg.throughput_flat_epsilon;
        if rising {
            // Throughput still climbing: the latency bump may be transient
            // ramp-up, not saturation.
            return OverloadSignal::Ok;
        }
        self.candidates += 1;
        OverloadSignal::Candidate {
            latency_ns: latency,
            throughput_qps: tput_last,
        }
    }

    /// [`Detector::evaluate`] plus decision-trace emission: a candidate
    /// verdict additionally emits an `OverloadDetected` event carrying the
    /// observed latency and throughput. Behavior is otherwise identical.
    pub fn evaluate_recorded(
        &mut self,
        now: u64,
        in_flight: u64,
        rec: &RecorderHandle<'_>,
    ) -> OverloadSignal {
        let signal = self.evaluate(now, in_flight);
        if let OverloadSignal::Candidate {
            latency_ns,
            throughput_qps,
        } = signal
        {
            rec.emit(|tick| DecisionEvent::OverloadDetected {
                tick,
                latency_ns,
                throughput_qps,
            });
        }
        signal
    }

    /// Completion/drop series for end-of-run reporting.
    pub fn series(&self) -> &WindowedSeries {
        &self.series
    }

    /// `(evaluations, candidate overloads)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.evaluations, self.candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;
    const WIN: u64 = 100 * MS;

    fn cfg(slo_ms: u64) -> DetectorConfig {
        DetectorConfig {
            window_ns: WIN,
            history: 8,
            slo_latency_ns: slo_ms * MS,
            latency_quantile: 99.0,
            throughput_flat_epsilon: 0.05,
            min_contention: 0.1,
            throughput_drop_frac: 0.25,
        }
    }

    fn fill_window(d: &mut Detector, w: u64, n: u64, latency: u64) {
        for i in 0..n {
            d.record_completion(w * WIN + i * (WIN / (n + 1)), latency);
        }
    }

    #[test]
    fn no_data_is_ok() {
        let mut d = Detector::new(cfg(10), 0);
        assert_eq!(d.evaluate(WIN * 3, 0), OverloadSignal::Ok);
    }

    #[test]
    fn healthy_latency_is_ok() {
        let mut d = Detector::new(cfg(10), 0);
        fill_window(&mut d, 0, 100, 2 * MS);
        fill_window(&mut d, 1, 100, 2 * MS);
        assert_eq!(d.evaluate(2 * WIN + 1, 5), OverloadSignal::Ok);
    }

    #[test]
    fn slo_violation_with_flat_throughput_is_candidate() {
        let mut d = Detector::new(cfg(10), 0);
        fill_window(&mut d, 0, 100, 2 * MS);
        fill_window(&mut d, 1, 100, 50 * MS); // latency blows past SLO
        match d.evaluate(2 * WIN + 1, 5) {
            OverloadSignal::Candidate { latency_ns, .. } => {
                assert!(latency_ns > 10 * MS);
            }
            other => panic!("expected candidate, got {other:?}"),
        }
        assert_eq!(d.counters().1, 1);
    }

    #[test]
    fn slo_violation_with_rising_throughput_is_ok() {
        let mut d = Detector::new(cfg(10), 0);
        fill_window(&mut d, 0, 50, 2 * MS);
        fill_window(&mut d, 1, 100, 50 * MS); // latency high but tput doubled
        assert_eq!(d.evaluate(2 * WIN + 1, 5), OverloadSignal::Ok);
    }

    #[test]
    fn slo_violation_with_falling_throughput_is_candidate() {
        let mut d = Detector::new(cfg(10), 0);
        fill_window(&mut d, 0, 100, 2 * MS);
        fill_window(&mut d, 1, 40, 50 * MS);
        assert!(matches!(
            d.evaluate(2 * WIN + 1, 5),
            OverloadSignal::Candidate { .. }
        ));
    }

    #[test]
    fn stall_after_traffic_is_candidate() {
        let mut d = Detector::new(cfg(10), 0);
        fill_window(&mut d, 0, 100, 2 * MS);
        // Window 1 empty: create it by recording a drop.
        d.record_drop(WIN + 1);
        match d.evaluate(2 * WIN + 1, 5) {
            OverloadSignal::Candidate { throughput_qps, .. } => {
                assert_eq!(throughput_qps, 0.0);
            }
            other => panic!("expected stall candidate, got {other:?}"),
        }
    }

    #[test]
    fn idle_system_is_ok() {
        let mut d = Detector::new(cfg(10), 0);
        d.record_drop(1); // windows exist but no completions at all
        d.record_drop(WIN + 1);
        assert_eq!(d.evaluate(2 * WIN + 1, 0), OverloadSignal::Ok);
    }

    #[test]
    fn persistent_stall_stays_a_candidate() {
        // A convoy can stall the server for many windows; the detector
        // must keep flagging it as long as work is in flight, even after
        // all recent windows are empty.
        let mut d = Detector::new(cfg(10), 0);
        fill_window(&mut d, 0, 100, 2 * MS);
        for w in 1..20u64 {
            d.record_drop(w * WIN + 1); // keep windows materialized, empty
            assert!(
                matches!(
                    d.evaluate((w + 1) * WIN + 1, 50),
                    OverloadSignal::Candidate { .. }
                ),
                "window {w} lost the stall"
            );
        }
        // Work drains: in-flight reaches zero, detector goes quiet.
        assert_eq!(d.evaluate(21 * WIN + 1, 0), OverloadSignal::Ok);
    }

    #[test]
    fn throughput_collapse_is_candidate_even_with_fast_latencies() {
        // A partial convoy blocks a subset of traffic; survivors stay
        // fast, so the latency signal is silent — the collapse signal
        // must fire.
        let mut d = Detector::new(cfg(10), 0);
        for w in 0..4 {
            fill_window(&mut d, w, 100, 2 * MS);
        }
        fill_window(&mut d, 4, 40, 2 * MS); // 60% drop, latency healthy
        assert!(matches!(
            d.evaluate(5 * WIN + 1, 50),
            OverloadSignal::Candidate { .. }
        ));
    }

    #[test]
    fn small_dips_do_not_trigger_collapse() {
        let mut d = Detector::new(cfg(10), 0);
        for w in 0..4 {
            fill_window(&mut d, w, 100, 2 * MS);
        }
        fill_window(&mut d, 4, 85, 2 * MS); // 15% dip < 25% threshold
        assert_eq!(d.evaluate(5 * WIN + 1, 50), OverloadSignal::Ok);
    }

    #[test]
    fn collapse_requires_in_flight_work() {
        // Demand simply went away: not an overload.
        let mut d = Detector::new(cfg(10), 0);
        for w in 0..4 {
            fill_window(&mut d, w, 100, 2 * MS);
        }
        fill_window(&mut d, 4, 10, 2 * MS);
        assert_eq!(d.evaluate(5 * WIN + 1, 0), OverloadSignal::Ok);
    }

    #[test]
    fn evaluation_counter_increments() {
        let mut d = Detector::new(cfg(10), 0);
        d.evaluate(WIN, 0);
        d.evaluate(2 * WIN, 0);
        assert_eq!(d.counters().0, 2);
    }
}
