//! Task progress estimation (§3.4).
//!
//! Atropos scales resource gains by remaining work, using the GetNext
//! model: `Prog(i) = k / N`, where `k` is the number of work units already
//! processed (e.g. MySQL's `rows_examined`) and `N` the estimated total
//! (e.g. the optimizer's `estimatedRows`). Applications with quantifiable
//! progress report `(k, N)`; others fall back to a configured default.

use serde::{Deserialize, Serialize};

/// Per-task progress state under the GetNext model.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ProgressTracker {
    done: u64,
    total: Option<u64>,
}

impl ProgressTracker {
    /// Reports progress: `done` units out of `total` expected.
    ///
    /// A `total` of zero is treated as "unknown" (no estimate yet).
    pub fn report(&mut self, done: u64, total: u64) {
        self.done = done;
        self.total = if total == 0 { None } else { Some(total) };
    }

    /// Progress in `(0, 1]`, or `None` if the task never reported.
    ///
    /// Progress is floored at `floor` so the future-usage multiplier
    /// `(1 - p) / p` stays bounded, and capped at 1.0 (a task can process
    /// more units than estimated).
    pub fn progress(&self, floor: f64) -> Option<f64> {
        let total = self.total?;
        let p = self.done as f64 / total as f64;
        Some(p.clamp(floor, 1.0))
    }

    /// The future-usage multiplier `(1 - p) / p` from §3.4, using
    /// `default_p` for tasks that never reported progress.
    ///
    /// A nearly finished task (p → 1) has multiplier → 0: cancelling it
    /// frees little *future* load. A task that just started (p → floor) has
    /// a large multiplier: it still has most of its demand ahead.
    pub fn future_multiplier(&self, floor: f64, default_p: f64) -> f64 {
        let p = self.progress(floor).unwrap_or(default_p.max(floor));
        (1.0 - p) / p
    }

    /// Raw reported counters `(done, total)` for introspection.
    pub fn raw(&self) -> (u64, Option<u64>) {
        (self.done, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreported_progress_is_none() {
        let p = ProgressTracker::default();
        assert_eq!(p.progress(0.01), None);
    }

    #[test]
    fn zero_total_means_unknown() {
        let mut p = ProgressTracker::default();
        p.report(10, 0);
        assert_eq!(p.progress(0.01), None);
    }

    #[test]
    fn progress_is_fractional() {
        let mut p = ProgressTracker::default();
        p.report(25, 100);
        assert!((p.progress(0.01).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn progress_is_floored_and_capped() {
        let mut p = ProgressTracker::default();
        p.report(0, 1000);
        assert_eq!(p.progress(0.02).unwrap(), 0.02);
        p.report(5000, 1000);
        assert_eq!(p.progress(0.02).unwrap(), 1.0);
    }

    #[test]
    fn future_multiplier_matches_paper_example() {
        // §3.4: a lock held 1 s at 40% progress → gain 1 × 0.6/0.4 = 1.5.
        let mut p = ProgressTracker::default();
        p.report(40, 100);
        assert!((p.future_multiplier(0.01, 0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn future_multiplier_prefers_early_tasks() {
        // Query A at 90% vs query B at 10% (§3.4 discussion): B's future
        // demand dominates.
        let mut a = ProgressTracker::default();
        a.report(90, 100);
        let mut b = ProgressTracker::default();
        b.report(10, 100);
        assert!(b.future_multiplier(0.01, 0.5) > 8.0 * a.future_multiplier(0.01, 0.5));
    }

    #[test]
    fn default_progress_gives_neutral_multiplier() {
        let p = ProgressTracker::default();
        // default p = 0.5 → multiplier 1.0: gain equals current usage.
        assert!((p.future_multiplier(0.01, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn finished_task_has_zero_multiplier() {
        let mut p = ProgressTracker::default();
        p.report(100, 100);
        assert_eq!(p.future_multiplier(0.01, 0.5), 0.0);
    }
}
