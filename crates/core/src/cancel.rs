//! Cancellation execution, fairness, and re-execution (§3.6, §4).
//!
//! Atropos never terminates work itself: it invokes the *cancellation
//! initiator* the application registered (MySQL's `sql_kill` in the
//! paper's Figure 7), which performs application-specific cleanup at safe
//! checkpoints. Around that callback this module implements the paper's
//! safeguards:
//!
//! - a minimum interval between consecutive cancellations (the
//!   aggressiveness/recovery trade-off discussed in §5.3),
//! - cancel-at-most-once per task: re-executed tasks are marked
//!   non-cancellable so overloads target a *different* hog next time,
//! - re-execution after sustained resource availability; if resources
//!   never free up and the canceled task's SLO deadline passes, it is
//!   dropped,
//! - background tasks (no SLO) are force-re-executed after a maximum wait.

use std::collections::{HashMap, HashSet};

use crate::config::AtroposConfig;
use crate::ids::TaskKey;
use crate::record::{BackoffReason, CancelOrigin, DecisionEvent, RecorderHandle};

/// Callback invoked with a task's application key.
pub type KeyCallback = Box<dyn Fn(TaskKey) + Send + Sync>;

/// Outcome of a cancellation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelDecision {
    /// The initiator was invoked.
    Issued,
    /// Suppressed: too soon after the previous cancellation.
    RateLimited,
    /// Suppressed: this task was already canceled once (fairness, §4).
    AlreadyCanceled,
    /// Suppressed: no initiator registered via `set_cancel_action`.
    NoInitiator,
}

#[derive(Debug, Clone)]
struct PendingReexec {
    key: TaskKey,
    canceled_at: u64,
    deadline: u64,
    background: bool,
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CancelStats {
    /// Cancellations issued (initiator invoked).
    pub issued: u64,
    /// Requests suppressed by the rate limiter.
    pub rate_limited: u64,
    /// Requests suppressed by cancel-once fairness.
    pub already_canceled: u64,
    /// Cancellations propagated to child tasks (distributed extension).
    pub propagated: u64,
    /// Re-executions triggered.
    pub reexecuted: u64,
    /// Canceled tasks dropped for missing their SLO deadline.
    pub dropped: u64,
}

/// Manages initiator callbacks, rate limiting and re-execution.
pub struct CancelManager {
    on_cancel: Option<KeyCallback>,
    on_thread_cancel: Option<KeyCallback>,
    allow_thread_level: bool,
    on_reexec: Option<KeyCallback>,
    on_drop: Option<KeyCallback>,
    last_cancel_at: Option<u64>,
    min_interval_ns: u64,
    reexec_quiet_windows: u32,
    reexec_deadline_ns: u64,
    background_max_wait_ns: u64,
    quiet_windows: u32,
    pending: Vec<PendingReexec>,
    /// The re-executed task currently in flight, if any. Re-executions are
    /// serialized: reviving several canceled hogs at once can deterministically
    /// recreate the very interaction that caused the overload (e.g. the c1
    /// scan + backup convoy), and re-executed tasks are non-cancellable, so
    /// the recreated overload would be unfixable. One at a time bounds the
    /// blast radius to a single non-cancellable task.
    outstanding_reexec: Option<TaskKey>,
    /// Keys canceled at least once; survives re-registration so a
    /// re-executed task is recognized and marked non-cancellable.
    canceled_keys: HashMap<TaskKey, u64>,
    /// Canceled keys whose task has since reached `free_cancel`, so a
    /// `CancelCompleted` event is emitted at most once per key.
    completed_keys: HashSet<TaskKey>,
    stats: CancelStats,
}

impl std::fmt::Debug for CancelManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelManager")
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl CancelManager {
    /// Creates a manager from the runtime configuration.
    pub fn new(cfg: &AtroposConfig) -> Self {
        Self {
            on_cancel: None,
            on_thread_cancel: None,
            allow_thread_level: cfg.allow_thread_level_cancel,
            on_reexec: None,
            on_drop: None,
            last_cancel_at: None,
            min_interval_ns: cfg.cancel_min_interval_ns,
            reexec_quiet_windows: cfg.reexec_quiet_windows,
            reexec_deadline_ns: cfg.reexec_deadline_ns,
            background_max_wait_ns: cfg.background_max_wait_ns,
            quiet_windows: 0,
            pending: Vec::new(),
            outstanding_reexec: None,
            canceled_keys: HashMap::new(),
            completed_keys: HashSet::new(),
            stats: CancelStats::default(),
        }
    }

    /// Registers the application's cancellation initiator.
    pub fn set_cancel_action(&mut self, f: KeyCallback) {
        self.on_cancel = Some(f);
    }

    /// Registers the coarse thread-level cancellation fallback (§3.6, the
    /// `pthread_cancel` analog). Only used when no application initiator
    /// exists *and* the configuration opted in — it is potentially unsafe
    /// because it terminates at the thread, not the task, level.
    pub fn set_thread_cancel_action(&mut self, f: KeyCallback) {
        self.on_thread_cancel = Some(f);
    }

    /// Registers the re-execution callback (invoked when a canceled task
    /// should be retried).
    pub fn set_reexec_action(&mut self, f: KeyCallback) {
        self.on_reexec = Some(f);
    }

    /// Registers the drop callback (invoked when a canceled task misses
    /// its SLO deadline and is abandoned).
    pub fn set_drop_action(&mut self, f: KeyCallback) {
        self.on_drop = Some(f);
    }

    /// True if `key` has ever been canceled (used to mark re-registered
    /// tasks non-cancellable).
    pub fn was_canceled(&self, key: TaskKey) -> bool {
        self.canceled_keys.contains_key(&key)
    }

    /// Attempts to cancel the task with application key `key`.
    pub fn request_cancel(&mut self, now: u64, key: TaskKey, background: bool) -> CancelDecision {
        if self.canceled_keys.contains_key(&key) {
            self.stats.already_canceled += 1;
            return CancelDecision::AlreadyCanceled;
        }
        if let Some(last) = self.last_cancel_at {
            if now.saturating_sub(last) < self.min_interval_ns {
                self.stats.rate_limited += 1;
                return CancelDecision::RateLimited;
            }
        }
        let cb = match (&self.on_cancel, &self.on_thread_cancel) {
            (Some(cb), _) => cb,
            (None, Some(cb)) if self.allow_thread_level => cb,
            _ => return CancelDecision::NoInitiator,
        };
        cb(key);
        self.last_cancel_at = Some(now);
        self.canceled_keys.insert(key, now);
        self.pending.push(PendingReexec {
            key,
            canceled_at: now,
            deadline: now.saturating_add(self.reexec_deadline_ns),
            background,
        });
        self.stats.issued += 1;
        self.quiet_windows = 0;
        CancelDecision::Issued
    }

    /// [`CancelManager::request_cancel`] plus decision-trace emission:
    /// `CancelIssued` on issue, `Backoff` with the matching reason on any
    /// suppression. Behavior is otherwise identical.
    pub fn request_cancel_recorded(
        &mut self,
        now: u64,
        key: TaskKey,
        background: bool,
        origin: CancelOrigin,
        rec: &RecorderHandle<'_>,
    ) -> CancelDecision {
        let decision = self.request_cancel(now, key, background);
        match decision {
            CancelDecision::Issued => rec.emit(|tick| DecisionEvent::CancelIssued {
                tick,
                key,
                now_ns: now,
                origin,
            }),
            CancelDecision::RateLimited => rec.emit(|tick| DecisionEvent::Backoff {
                tick,
                key,
                reason: BackoffReason::RateLimited,
            }),
            CancelDecision::AlreadyCanceled => rec.emit(|tick| DecisionEvent::Backoff {
                tick,
                key,
                reason: BackoffReason::AlreadyCanceled,
            }),
            CancelDecision::NoInitiator => rec.emit(|tick| DecisionEvent::Backoff {
                tick,
                key,
                reason: BackoffReason::NoInitiator,
            }),
        }
        decision
    }

    /// Propagates a root cancellation to descendant task keys: each is
    /// signaled through the initiator (bypassing the rate limiter — the
    /// children are part of the same logical cancellation) and marked
    /// canceled so a re-registered child is non-cancellable. Children are
    /// not parked: their re-execution rides with the root's.
    pub fn propagate(&mut self, keys: &[TaskKey]) {
        let Some(cb) = self.on_cancel.as_ref().or(if self.allow_thread_level {
            self.on_thread_cancel.as_ref()
        } else {
            None
        }) else {
            return;
        };
        for &key in keys {
            if self.canceled_keys.contains_key(&key) {
                continue;
            }
            cb(key);
            self.canceled_keys.insert(key, 0);
            self.stats.propagated += 1;
        }
    }

    /// Notifies the manager that a detection window closed.
    ///
    /// `overloaded` is true if this window produced a candidate overload.
    /// After `reexec_quiet_windows` consecutive calm windows, pending tasks
    /// are re-executed. Tasks whose SLO deadline passed are dropped;
    /// background tasks past their maximum wait are force-re-executed.
    pub fn on_window(&mut self, now: u64, overloaded: bool) {
        if overloaded {
            self.quiet_windows = 0;
        } else {
            self.quiet_windows = self.quiet_windows.saturating_add(1);
        }
        if self.pending.is_empty() {
            return;
        }
        let calm = self.quiet_windows >= self.reexec_quiet_windows;
        // Drop foreground tasks whose SLO deadline passed while waiting.
        let mut keep = Vec::with_capacity(self.pending.len());
        let mut to_drop: Vec<TaskKey> = Vec::new();
        for p in self.pending.drain(..) {
            if !p.background && !calm && now >= p.deadline {
                to_drop.push(p.key);
            } else {
                keep.push(p);
            }
        }
        self.pending = keep;
        for key in to_drop {
            self.stats.dropped += 1;
            if let Some(cb) = &self.on_drop {
                cb(key);
            }
        }
        // Re-executions are serialized (see `outstanding_reexec`): revive
        // the oldest eligible pending task once the previous revival has
        // finished. A background task past its maximum wait overrides the
        // calm requirement, not the serialization.
        if self.outstanding_reexec.is_some() {
            return;
        }
        let eligible = self.pending.iter().position(|p| {
            if p.background {
                calm || now.saturating_sub(p.canceled_at) >= self.background_max_wait_ns
            } else {
                calm
            }
        });
        if let Some(idx) = eligible {
            let p = self.pending.remove(idx);
            self.stats.reexecuted += 1;
            self.outstanding_reexec = Some(p.key);
            if let Some(cb) = &self.on_reexec {
                cb(p.key);
            }
        }
    }

    /// Notifies the manager that the task with `key` reached a terminal
    /// state; clears re-execution serialization if it was the revived one.
    pub fn note_finished(&mut self, key: TaskKey) {
        if self.outstanding_reexec == Some(key) {
            self.outstanding_reexec = None;
        }
    }

    /// [`CancelManager::note_finished`] plus decision-trace emission: if
    /// `key` was canceled and this is the first time it reaches a terminal
    /// state, a `CancelCompleted` event carries the issue-to-completion
    /// latency. Keys canceled by propagation carry issue time 0 and are
    /// reported with zero latency rather than a bogus span.
    pub fn note_finished_recorded(&mut self, now: u64, key: TaskKey, rec: &RecorderHandle<'_>) {
        self.note_finished(key);
        if let Some(&issued_at) = self.canceled_keys.get(&key) {
            if self.completed_keys.insert(key) {
                let time_to_cancel_ns = if issued_at == 0 {
                    0
                } else {
                    now.saturating_sub(issued_at)
                };
                rec.emit(|tick| DecisionEvent::CancelCompleted {
                    tick,
                    key,
                    time_to_cancel_ns,
                });
            }
        }
    }

    /// Number of canceled tasks awaiting re-execution.
    pub fn pending_reexec(&self) -> usize {
        self.pending.len()
    }

    /// Every key canceled so far, paired with the time the initiator was
    /// invoked, ordered by issue time (keys canceled by propagation carry
    /// time 0 and sort first). Exposed for invariant checkers.
    pub fn canceled_keys(&self) -> Vec<(TaskKey, u64)> {
        let mut v: Vec<(TaskKey, u64)> =
            self.canceled_keys.iter().map(|(k, at)| (*k, *at)).collect();
        v.sort_by_key(|&(k, at)| (at, k.0));
        v
    }

    /// The serialized re-execution currently in flight, if any. Exposed
    /// for invariant checkers.
    pub fn outstanding_reexec(&self) -> Option<TaskKey> {
        self.outstanding_reexec
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CancelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn cfg() -> AtroposConfig {
        AtroposConfig {
            cancel_min_interval_ns: 1000,
            reexec_quiet_windows: 2,
            reexec_deadline_ns: 10_000,
            background_max_wait_ns: 50_000,
            ..Default::default()
        }
    }

    fn counter_cb(counter: &Arc<AtomicU64>) -> KeyCallback {
        let c = counter.clone();
        Box::new(move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        })
    }

    #[test]
    fn cancel_invokes_initiator() {
        let mut m = CancelManager::new(&cfg());
        let hits = Arc::new(AtomicU64::new(0));
        m.set_cancel_action(counter_cb(&hits));
        assert_eq!(
            m.request_cancel(0, TaskKey(1), false),
            CancelDecision::Issued
        );
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(m.stats().issued, 1);
    }

    #[test]
    fn missing_initiator_is_reported() {
        let mut m = CancelManager::new(&cfg());
        assert_eq!(
            m.request_cancel(0, TaskKey(1), false),
            CancelDecision::NoInitiator
        );
        assert_eq!(m.stats().issued, 0);
    }

    #[test]
    fn thread_level_fallback_requires_opt_in() {
        let mut c = cfg();
        let hits = Arc::new(AtomicU64::new(0));
        // Without the opt-in flag, the fallback is never used.
        let mut m = CancelManager::new(&c);
        m.set_thread_cancel_action(counter_cb(&hits));
        assert_eq!(
            m.request_cancel(0, TaskKey(1), false),
            CancelDecision::NoInitiator
        );
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        // With it, the thread-level path fires.
        c.allow_thread_level_cancel = true;
        let mut m = CancelManager::new(&c);
        m.set_thread_cancel_action(counter_cb(&hits));
        assert_eq!(
            m.request_cancel(0, TaskKey(1), false),
            CancelDecision::Issued
        );
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn app_initiator_takes_precedence_over_thread_level() {
        let mut c = cfg();
        c.allow_thread_level_cancel = true;
        let mut m = CancelManager::new(&c);
        let app = Arc::new(AtomicU64::new(0));
        let thread = Arc::new(AtomicU64::new(0));
        m.set_cancel_action(counter_cb(&app));
        m.set_thread_cancel_action(counter_cb(&thread));
        m.request_cancel(0, TaskKey(1), false);
        assert_eq!(app.load(Ordering::SeqCst), 1);
        assert_eq!(thread.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn rate_limiter_enforces_min_interval() {
        let mut m = CancelManager::new(&cfg());
        m.set_cancel_action(Box::new(|_| {}));
        assert_eq!(
            m.request_cancel(0, TaskKey(1), false),
            CancelDecision::Issued
        );
        assert_eq!(
            m.request_cancel(500, TaskKey(2), false),
            CancelDecision::RateLimited
        );
        assert_eq!(
            m.request_cancel(1000, TaskKey(2), false),
            CancelDecision::Issued
        );
        assert_eq!(m.stats().rate_limited, 1);
    }

    #[test]
    fn cancel_once_per_key() {
        let mut m = CancelManager::new(&cfg());
        m.set_cancel_action(Box::new(|_| {}));
        m.request_cancel(0, TaskKey(1), false);
        assert_eq!(
            m.request_cancel(5000, TaskKey(1), false),
            CancelDecision::AlreadyCanceled
        );
        assert!(m.was_canceled(TaskKey(1)));
        assert!(!m.was_canceled(TaskKey(2)));
    }

    #[test]
    fn reexec_after_sustained_quiet() {
        let mut m = CancelManager::new(&cfg());
        m.set_cancel_action(Box::new(|_| {}));
        let reexecs = Arc::new(AtomicU64::new(0));
        m.set_reexec_action(counter_cb(&reexecs));
        m.request_cancel(0, TaskKey(1), false);
        assert_eq!(m.pending_reexec(), 1);
        m.on_window(100, false);
        assert_eq!(reexecs.load(Ordering::SeqCst), 0); // 1 quiet window < 2
        m.on_window(200, false);
        assert_eq!(reexecs.load(Ordering::SeqCst), 1);
        assert_eq!(m.pending_reexec(), 0);
        assert_eq!(m.stats().reexecuted, 1);
    }

    #[test]
    fn overloaded_windows_reset_quiet_count() {
        let mut m = CancelManager::new(&cfg());
        m.set_cancel_action(Box::new(|_| {}));
        let reexecs = Arc::new(AtomicU64::new(0));
        m.set_reexec_action(counter_cb(&reexecs));
        m.request_cancel(0, TaskKey(1), false);
        m.on_window(100, false);
        m.on_window(200, true); // overload resets
        m.on_window(300, false);
        assert_eq!(reexecs.load(Ordering::SeqCst), 0);
        m.on_window(400, false);
        assert_eq!(reexecs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deadline_miss_drops_task() {
        let mut m = CancelManager::new(&cfg());
        m.set_cancel_action(Box::new(|_| {}));
        let drops = Arc::new(AtomicU64::new(0));
        m.set_drop_action(counter_cb(&drops));
        m.request_cancel(0, TaskKey(1), false);
        // Stay overloaded past the 10_000 ns deadline.
        m.on_window(6_000, true);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        m.on_window(12_000, true);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(m.stats().dropped, 1);
        assert_eq!(m.pending_reexec(), 0);
    }

    #[test]
    fn background_tasks_never_drop_and_force_reexec() {
        let mut m = CancelManager::new(&cfg());
        m.set_cancel_action(Box::new(|_| {}));
        let reexecs = Arc::new(AtomicU64::new(0));
        let drops = Arc::new(AtomicU64::new(0));
        m.set_reexec_action(counter_cb(&reexecs));
        m.set_drop_action(counter_cb(&drops));
        m.request_cancel(0, TaskKey(9), true);
        // Permanent overload: deadline (10k) passes, then bg max wait (50k).
        m.on_window(20_000, true);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(m.pending_reexec(), 1);
        m.on_window(60_000, true);
        assert_eq!(reexecs.load(Ordering::SeqCst), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn reexecutions_are_serialized() {
        let mut m = CancelManager::new(&cfg());
        m.set_cancel_action(Box::new(|_| {}));
        let reexecs = Arc::new(AtomicU64::new(0));
        m.set_reexec_action(counter_cb(&reexecs));
        m.request_cancel(0, TaskKey(1), false);
        m.request_cancel(2_000, TaskKey(2), false);
        m.on_window(3_000, false);
        m.on_window(4_000, false);
        // Calm: only the first pending task is revived.
        assert_eq!(reexecs.load(Ordering::SeqCst), 1);
        assert_eq!(m.pending_reexec(), 1);
        m.on_window(5_000, false);
        assert_eq!(reexecs.load(Ordering::SeqCst), 1, "still outstanding");
        // The revived task finishes: the next one goes.
        m.note_finished(TaskKey(1));
        m.on_window(6_000, false);
        assert_eq!(reexecs.load(Ordering::SeqCst), 2);
        assert_eq!(m.pending_reexec(), 0);
    }

    #[test]
    fn note_finished_for_unrelated_key_is_noop() {
        let mut m = CancelManager::new(&cfg());
        m.set_cancel_action(Box::new(|_| {}));
        let reexecs = Arc::new(AtomicU64::new(0));
        m.set_reexec_action(counter_cb(&reexecs));
        m.request_cancel(0, TaskKey(1), false);
        m.on_window(1_000, false);
        m.on_window(2_000, false);
        assert_eq!(reexecs.load(Ordering::SeqCst), 1);
        m.note_finished(TaskKey(42)); // not the outstanding one
        m.request_cancel(3_000, TaskKey(2), false);
        m.on_window(4_000, false);
        m.on_window(5_000, false);
        // Task 1 never finished, so task 2 stays pending.
        assert_eq!(reexecs.load(Ordering::SeqCst), 1);
        assert_eq!(m.pending_reexec(), 1);
    }

    #[test]
    fn issuing_cancel_resets_quiet_streak() {
        let mut m = CancelManager::new(&cfg());
        m.set_cancel_action(Box::new(|_| {}));
        let reexecs = Arc::new(AtomicU64::new(0));
        m.set_reexec_action(counter_cb(&reexecs));
        m.on_window(100, false);
        m.on_window(200, false); // quiet streak = 2
        m.request_cancel(250, TaskKey(1), false); // resets streak
        m.on_window(300, false);
        assert_eq!(reexecs.load(Ordering::SeqCst), 0);
        m.on_window(400, false);
        assert_eq!(reexecs.load(Ordering::SeqCst), 1);
    }
}
