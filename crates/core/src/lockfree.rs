//! Lock-free per-producer trace ingest with epoch-based drain (§3.2 hot
//! path; DESIGN.md §16).
//!
//! [`LockFreeIngest`] is the third [`IngestMode`](crate::config::IngestMode):
//! the same task-sharded buffering contract as
//! [`ShardedIngest`](crate::trace::ShardedIngest), but the per-shard
//! buffer is a bounded lock-free ring ([`RecordQueue`]) instead of a
//! mutex-guarded `Vec`. Producers never take a lock, never allocate, and
//! never wait for the drainer: an emit is one CAS to claim a slot, four
//! relaxed word stores, and one release store to publish. The drain is
//! *epoch-based*: the tick-time drainer advances an epoch, snapshots every
//! queue's claim cursor, and harvests exactly the records claimed before
//! the boundary — so a drain is bounded work even while producers keep
//! appending, and records emitted mid-drain simply belong to the next
//! epoch.
//!
//! The whole structure is safe Rust: each ring cell is a seqlock-stamped
//! group of atomic words (the idiom of the flight recorder's ring in
//! `obs/src/ring.rs`, minus its `try_lock`), so no `UnsafeCell` is needed
//! to move a [`TraceRecord`] across threads.
//!
//! # Ordering contract
//!
//! Synchronization rests entirely on each cell's sequence stamp; the
//! `head`/`tail` cursors are bounds, not publication.
//!
//! - Producer claim: `seq` is loaded `Acquire`. Observing `seq == pos`
//!   means the consumer's recycle store of the previous lap is visible,
//!   i.e. the consumer has finished *reading* the cell's previous record
//!   before we overwrite it.
//! - Producer publish: the four record words are stored `Relaxed`, then
//!   `seq` is stored `Release` with `pos + 1`. The release fence orders
//!   the data stores before the stamp.
//! - Consumer read: `seq` is loaded `Acquire`; only a cell stamped
//!   `pos + 1` is read (relaxed data loads, made visible by the
//!   acquire/release pair on `seq`). A claimed-but-unpublished cell stops
//!   the harvest — the drainer never spins on a preempted producer.
//! - Consumer recycle: `seq` is stored `Release` with `pos + ring_len`,
//!   handing the cell to the producer one lap ahead.
//! - The `head` CAS that claims a slot is `Relaxed`: cell exclusivity
//!   comes from the `seq` protocol, the cursor only arbitrates *which*
//!   position a producer claims.
//!
//! Per-shard FIFO follows from claim order: concurrent pushes to one
//! queue get distinct, ordered positions, and the single consumer
//! harvests positions in order. A task maps to one queue for its whole
//! life (same mask as the sharded stripes), so per-task emit order — the
//! only order replay is sensitive to — is preserved structurally. When
//! each producer thread drives its own tasks (the steady state the name
//! "per-producer" describes: sequential task ids spread producers across
//! queues), the claim CAS never contends and the push is wait-free; two
//! producers sharing a queue degrade to lock-free, never to blocking.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ids::{ResourceId, TaskId};
use crate::trace::{EventKind, PushOutcome, TraceRecord};

/// A `head`/`tail` cursor on its own cache lines so producers claiming
/// slots never false-share with the drainer's harvest cursor.
#[repr(align(128))]
struct PaddedCounter(AtomicU64);

/// One ring cell: a seqlock stamp plus the four words of a
/// [`TraceRecord`]. The stamp cycles `pos` (free) → `pos + 1`
/// (published) → `pos + ring_len` (free for the next lap).
struct Cell {
    seq: AtomicU64,
    now: AtomicU64,
    task: AtomicU64,
    amount: AtomicU64,
    /// `rid` in the low 32 bits, [`EventKind`] discriminant above.
    meta: AtomicU64,
}

fn encode_kind(kind: EventKind) -> u64 {
    match kind {
        EventKind::Get => 0,
        EventKind::Free => 1,
        EventKind::SlowBy => 2,
    }
}

fn decode_kind(bits: u64) -> EventKind {
    match bits {
        0 => EventKind::Get,
        1 => EventKind::Free,
        _ => EventKind::SlowBy,
    }
}

/// A bounded MPSC ring of [`TraceRecord`]s: lock-free multi-producer
/// push, single-consumer harvest (the drainer, serialized by the
/// runtime's state lock).
#[repr(align(128))]
pub struct RecordQueue {
    cells: Box<[Cell]>,
    /// `cells.len() - 1`; the ring length is a power of two.
    mask: u64,
    /// Logical capacity: `push` reports [`PushOutcome::Full`] once
    /// `head - tail` reaches this, which may be below the physical ring
    /// length (the configured capacity need not be a power of two).
    capacity: u64,
    /// Next claim position (producers CAS).
    head: PaddedCounter,
    /// Next harvest position (consumer-only store, producer-read for the
    /// capacity bound).
    tail: PaddedCounter,
}

impl RecordQueue {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let len = capacity.next_power_of_two();
        Self {
            cells: (0..len)
                .map(|i| Cell {
                    seq: AtomicU64::new(i as u64),
                    now: AtomicU64::new(0),
                    task: AtomicU64::new(0),
                    amount: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                })
                .collect(),
            mask: (len - 1) as u64,
            capacity: capacity as u64,
            head: PaddedCounter(AtomicU64::new(0)),
            tail: PaddedCounter(AtomicU64::new(0)),
        }
    }

    /// Claims a slot and publishes `rec`; hands `rec` back when the queue
    /// holds `capacity` unharvested records.
    fn push(&self, rec: TraceRecord) -> PushOutcome {
        let mut pos = self.head.0.load(Ordering::Relaxed);
        loop {
            if pos.wrapping_sub(self.tail.0.load(Ordering::Acquire)) >= self.capacity {
                return PushOutcome::Full(rec);
            }
            let cell = &self.cells[(pos & self.mask) as usize];
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.head.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        cell.now.store(rec.now, Ordering::Relaxed);
                        cell.task.store(rec.task.0, Ordering::Relaxed);
                        cell.amount.store(rec.amount, Ordering::Relaxed);
                        cell.meta.store(
                            rec.rid.0 as u64 | encode_kind(rec.kind) << 32,
                            Ordering::Relaxed,
                        );
                        cell.seq.store(pos + 1, Ordering::Release);
                        return PushOutcome::Buffered;
                    }
                    Err(current) => pos = current,
                }
            } else if seq < pos {
                // Physical lap: the consumer has not recycled this cell
                // yet (only reachable when capacity == ring length).
                return PushOutcome::Full(rec);
            } else {
                // Another producer claimed this position; re-read.
                pos = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Harvests published records in claim order, up to (not including)
    /// position `upto`, appending to `out`. Stops early at a
    /// claimed-but-unpublished cell (a producer between claim and
    /// publish); those records stay for the next epoch. Single consumer
    /// only.
    fn harvest_upto(&self, upto: u64, out: &mut Vec<TraceRecord>) {
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        // `<`, not `!=`: a boundary from an epoch the consumer already
        // drained past is a no-op, never a lap-long walk.
        while pos < upto {
            let cell = &self.cells[(pos & self.mask) as usize];
            if cell.seq.load(Ordering::Acquire) != pos + 1 {
                break;
            }
            out.push(TraceRecord {
                now: cell.now.load(Ordering::Relaxed),
                task: TaskId(cell.task.load(Ordering::Relaxed)),
                amount: cell.amount.load(Ordering::Relaxed),
                rid: ResourceId(cell.meta.load(Ordering::Relaxed) as u32),
                kind: decode_kind(cell.meta.load(Ordering::Relaxed) >> 32),
            });
            cell.seq
                .store(pos + self.cells.len() as u64, Ordering::Release);
            pos += 1;
        }
        self.tail.0.store(pos, Ordering::Release);
    }

    /// Records claimed and not yet harvested (exact when quiescent,
    /// approximate under concurrent producers).
    fn len(&self) -> u64 {
        let tail = self.tail.0.load(Ordering::Acquire);
        self.head.0.load(Ordering::Acquire).saturating_sub(tail)
    }
}

/// The claim-cursor snapshot taken by [`LockFreeIngest::begin_epoch`]:
/// the harvest boundary of one drain epoch.
#[derive(Debug)]
pub struct EpochBoundary {
    epoch: u64,
    heads: Box<[u64]>,
}

impl EpochBoundary {
    /// The epoch this boundary closed (1 for the first drain).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Task-sharded lock-free ingest queues with epoch-based drain.
///
/// Drop-in peer of [`ShardedIngest`](crate::trace::ShardedIngest) with the
/// same outward contract (bounded task-sharded buffers, per-task FIFO,
/// [`PushOutcome::Full`] hand-back, overflow accounting) and one
/// deliberate difference: on a forced push into a still-full queue the
/// *new* record is shed (counted, dropped) instead of the queue's oldest
/// — a producer cannot pop a lock-free ring the single consumer owns.
/// The single-threaded replay semantics are identical, so the golden
/// suites hold byte-for-byte across `Sharded` and `LockFree`.
pub struct LockFreeIngest {
    queues: Box<[RecordQueue]>,
    /// Completed-drain counter; [`LockFreeIngest::begin_epoch`] advances
    /// it and stamps the boundary it returns.
    epoch: AtomicU64,
    overflow_dropped: AtomicU64,
    capacity: usize,
}

impl std::fmt::Debug for LockFreeIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockFreeIngest")
            .field("queues", &self.queues.len())
            .field("capacity", &self.capacity)
            .field("epoch", &self.epochs())
            .field("pending", &self.pending())
            .finish()
    }
}

impl LockFreeIngest {
    /// Creates at least `queues` rings of `capacity` records each. The
    /// queue count rounds up to a power of two (mask selection, matching
    /// the sharded stripes); the ring length rounds up internally while
    /// `capacity` stays the exact `Full` threshold.
    pub fn new(queues: usize, capacity: usize) -> Self {
        let queues = queues.max(1).next_power_of_two();
        let capacity = capacity.max(1);
        Self {
            queues: (0..queues).map(|_| RecordQueue::new(capacity)).collect(),
            epoch: AtomicU64::new(0),
            overflow_dropped: AtomicU64::new(0),
            capacity,
        }
    }

    #[inline]
    fn queue_for(&self, task: TaskId) -> &RecordQueue {
        // Same placement as ShardedIngest::stripe_for: sequential task
        // ids spread across queues, and a task keeps its queue for life
        // (per-task FIFO is per-queue FIFO).
        &self.queues[task.0 as usize & (self.queues.len() - 1)]
    }

    /// Appends one tracing call to its task's queue; lock-free, and
    /// wait-free when the queue has a single active producer.
    pub fn push(
        &self,
        task: TaskId,
        rid: ResourceId,
        amount: u64,
        kind: EventKind,
        now: u64,
    ) -> PushOutcome {
        self.queue_for(task).push(TraceRecord {
            now,
            task,
            rid,
            amount,
            kind,
        })
    }

    /// Best-effort append after a `Full` hand-back: retries the push and,
    /// if the queue is still full (a concurrent producer refilled it
    /// mid-flush, or the drainer is busy), sheds `rec` into the overflow
    /// count. Never blocks, never touches the consumer side.
    pub fn force_push(&self, rec: TraceRecord) {
        if let PushOutcome::Full(_) = self.queue_for(rec.task).push(rec) {
            self.overflow_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Opens a drain epoch: advances the epoch counter and snapshots
    /// every queue's claim cursor. [`LockFreeIngest::harvest`] collects
    /// exactly the records claimed before this boundary, so one drain is
    /// bounded work no matter how fast producers keep appending.
    pub fn begin_epoch(&self) -> EpochBoundary {
        EpochBoundary {
            epoch: self.epoch.fetch_add(1, Ordering::AcqRel) + 1,
            heads: self
                .queues
                .iter()
                .map(|q| q.head.0.load(Ordering::Acquire))
                .collect(),
        }
    }

    /// Harvests queue `i` up to `boundary`, appending the records in
    /// emit order to `out`. Must only run under the runtime's state lock
    /// (single consumer); see [`RecordQueue::harvest_upto`] for the
    /// early-stop contract at unpublished cells.
    pub fn harvest(&self, i: usize, boundary: &EpochBoundary, out: &mut Vec<TraceRecord>) {
        self.queues[i].harvest_upto(boundary.heads[i], out);
    }

    /// Completed drain epochs.
    pub fn epochs(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Empties every queue through one epoch and returns the records,
    /// grouped by queue with each queue in emit order (tests and benches;
    /// the runtime harvests per queue into its scratch buffer instead).
    pub fn drain(&self) -> Vec<TraceRecord> {
        let boundary = self.begin_epoch();
        let mut out = Vec::new();
        for i in 0..self.queues.len() {
            self.harvest(i, &boundary, &mut out);
        }
        out
    }

    /// Takes (and resets) the count of records shed by overflow since the
    /// last call.
    pub fn take_overflow_dropped(&self) -> u64 {
        self.overflow_dropped.swap(0, Ordering::Relaxed)
    }

    /// Records buffered and not yet harvested across all queues.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len() as usize).sum()
    }

    /// Number of queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Per-queue record capacity (the exact `Full` threshold).
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task: u64, now: u64) -> TraceRecord {
        TraceRecord {
            now,
            task: TaskId(task),
            rid: ResourceId(0),
            amount: 1,
            kind: EventKind::Get,
        }
    }

    #[test]
    fn roundtrips_every_field() {
        let ing = LockFreeIngest::new(1, 8);
        for (i, kind) in [EventKind::Get, EventKind::Free, EventKind::SlowBy]
            .into_iter()
            .enumerate()
        {
            ing.push(
                TaskId(7),
                ResourceId(i as u32 + 40),
                i as u64 + 3,
                kind,
                100 + i as u64,
            );
        }
        let recs = ing.drain();
        assert_eq!(recs.len(), 3);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.task, TaskId(7));
            assert_eq!(r.rid, ResourceId(i as u32 + 40));
            assert_eq!(r.amount, i as u64 + 3);
            assert_eq!(r.now, 100 + i as u64);
        }
        assert_eq!(recs[0].kind, EventKind::Get);
        assert_eq!(recs[1].kind, EventKind::Free);
        assert_eq!(recs[2].kind, EventKind::SlowBy);
    }

    #[test]
    fn full_queue_hands_the_record_back_at_exact_capacity() {
        // Capacity 9 rounds the ring to 16 cells, but Full must trigger
        // at the *logical* capacity.
        let ing = LockFreeIngest::new(1, 9);
        for i in 0..9u64 {
            assert!(matches!(
                ing.push(TaskId(0), ResourceId(0), 1, EventKind::Get, i),
                PushOutcome::Buffered
            ));
        }
        let handed = match ing.push(TaskId(0), ResourceId(0), 1, EventKind::Get, 99) {
            PushOutcome::Full(r) => r,
            other => panic!("expected Full, got {other:?}"),
        };
        assert_eq!(handed.now, 99);
        assert_eq!(ing.pending(), 9);
        // force_push on a still-full queue sheds the new record.
        ing.force_push(handed);
        assert_eq!(ing.take_overflow_dropped(), 1);
        assert_eq!(ing.drain().len(), 9);
        // After the drain the queue has room again.
        ing.force_push(rec(0, 100));
        assert_eq!(ing.take_overflow_dropped(), 0);
        assert_eq!(ing.pending(), 1);
    }

    #[test]
    fn ring_wraps_across_many_epochs() {
        let ing = LockFreeIngest::new(2, 4);
        let mut total = 0u64;
        for round in 0..50u64 {
            for i in 0..4u64 {
                ing.push(
                    TaskId(i % 2),
                    ResourceId(0),
                    1,
                    EventKind::Get,
                    round * 10 + i,
                );
            }
            total += ing.drain().len() as u64;
        }
        assert_eq!(total, 200);
        assert_eq!(ing.epochs(), 50);
        assert_eq!(ing.pending(), 0);
    }

    #[test]
    fn records_pushed_after_the_boundary_wait_for_the_next_epoch() {
        let ing = LockFreeIngest::new(1, 64);
        ing.push(TaskId(0), ResourceId(0), 1, EventKind::Get, 1);
        ing.push(TaskId(0), ResourceId(0), 1, EventKind::Get, 2);
        let boundary = ing.begin_epoch();
        // Emitted mid-drain: claimed after the snapshot.
        ing.push(TaskId(0), ResourceId(0), 1, EventKind::Get, 3);
        let mut out = Vec::new();
        ing.harvest(0, &boundary, &mut out);
        assert_eq!(out.iter().map(|r| r.now).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(ing.pending(), 1);
        assert_eq!(ing.drain().len(), 1);
    }

    #[test]
    fn tasks_spread_across_queues_and_keep_fifo() {
        let ing = LockFreeIngest::new(4, 64);
        for i in 0..40u64 {
            ing.push(TaskId(i % 5), ResourceId(0), 1, EventKind::Get, i);
        }
        let recs = ing.drain();
        assert_eq!(recs.len(), 40);
        for task in 0..5u64 {
            let nows: Vec<u64> = recs
                .iter()
                .filter(|r| r.task == TaskId(task))
                .map(|r| r.now)
                .collect();
            assert_eq!(nows.len(), 8);
            assert!(
                nows.windows(2).all(|w| w[0] < w[1]),
                "task {task}: {nows:?}"
            );
        }
    }

    #[test]
    fn concurrent_producers_conserve_and_keep_per_producer_fifo() {
        use std::sync::Arc;
        let ing = Arc::new(LockFreeIngest::new(8, 1 << 14));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ing = Arc::clone(&ing);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        match ing.push(TaskId(t), ResourceId(0), 1, EventKind::Get, i) {
                            PushOutcome::Buffered => {}
                            PushOutcome::Full(r) => ing.force_push(r),
                        }
                    }
                });
            }
        });
        let recs = ing.drain();
        assert_eq!(recs.len() as u64 + ing.take_overflow_dropped(), 20_000);
        for task in 0..4u64 {
            let mine: Vec<_> = recs.iter().filter(|r| r.task == TaskId(task)).collect();
            assert_eq!(mine.len(), 5_000);
            for w in mine.windows(2) {
                assert!(w[0].now < w[1].now, "producer {task} reordered");
            }
        }
    }
}
