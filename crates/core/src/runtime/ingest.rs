//! Ingest: the tracing hot path (Figure 6b) and the performance signal.
//!
//! Everything here feeds accounting state *into* the runtime — resource
//! registration, get/free/slow_by trace events (direct or sharded), GetNext
//! progress, and the unit lifecycle that drives the detector. Nothing in
//! this module makes decisions; that is `decide.rs`.

use super::{AtroposRuntime, IngestBuffers, Inner};
use crate::ids::{ResourceId, ResourceType, TaskId};
use crate::lockfree::LockFreeIngest;
use crate::trace::{EventKind, PushOutcome, ShardedIngest};

impl Inner {
    /// Applies one tracing call to the accounting state. Shared by the
    /// direct ingest path (at emit time) and the sharded drain (at
    /// replay time); keeping them on one code path is what makes the two
    /// modes behave identically.
    pub(super) fn apply_trace(
        &mut self,
        task: TaskId,
        rid: ResourceId,
        amount: u64,
        kind: EventKind,
        now: u64,
    ) {
        let stamp = self.ts.stamp(now);
        self.apply_stamped(task, rid, amount, kind, stamp);
    }

    /// The post-timestamp half of [`Inner::apply_trace`].
    fn apply_stamped(
        &mut self,
        task: TaskId,
        rid: ResourceId,
        amount: u64,
        kind: EventKind,
        stamp: u64,
    ) {
        if self.resources.get(rid).is_none() {
            self.stats.ignored_events += 1;
            return;
        }
        let Some(t) = self.tasks.get_mut(&task) else {
            self.stats.ignored_events += 1;
            return;
        };
        let u = &mut t.usage[rid.index()];
        match kind {
            EventKind::Get => u.on_get(stamp, amount),
            EventKind::Free => u.on_free(stamp, amount),
            EventKind::SlowBy => u.on_slow(stamp, amount),
        }
        // Re-arm the task's window roll (and thereby the policy index's
        // per-slot cache) after a quiescent stretch.
        t.note_usage_mutation();
        self.stats.trace_events += 1;
    }

    /// Replays every buffered tracing call and folds overflow-shed
    /// records into the ignored count.
    ///
    /// Shards are replayed one after another with no global merge or
    /// sort. That is still equivalent to emit-order replay: a task maps
    /// to one shard for its whole life, so each task's events apply in
    /// emit order; the accounting state is task-local and the stats
    /// counters commute; the resource registry and task map cannot change
    /// mid-drain (both are mutated only under the `inner` lock we hold);
    /// and [`crate::trace::BatchStamper`] assigns every record the same
    /// stamp a sequential emit-order replay would (closed form over the
    /// time-monotone emission sequence).
    pub(super) fn drain_ingest(&mut self, ingest: &IngestBuffers) {
        match ingest {
            IngestBuffers::Sharded(i) => self.drain_sharded(i),
            IngestBuffers::LockFree(i) => self.drain_lockfree(i),
        }
    }

    /// Drain of the stripe-locked oracle: swap each stripe's `Vec` out
    /// under its lock and replay it.
    fn drain_sharded(&mut self, ingest: &ShardedIngest) {
        self.stats.ignored_events += ingest.take_overflow_dropped();
        let mut stamper = self.ts.begin_batch();
        let mut scratch = std::mem::take(&mut self.scratch);
        for i in 0..ingest.stripe_count() {
            ingest.swap_stripe(i, &mut scratch);
            for rec in scratch.drain(..) {
                let stamp = stamper.stamp(rec.now);
                self.apply_stamped(rec.task, rec.rid, rec.amount, rec.kind, stamp);
            }
        }
        self.scratch = scratch;
        self.ts.commit_batch(stamper);
    }

    /// Epoch-based drain of the lock-free path: advance the epoch,
    /// snapshot every queue's claim cursor, and harvest exactly the
    /// records claimed before the boundary. Producers appending
    /// mid-drain land in the next epoch, so one drain is bounded work;
    /// a claimed-but-unpublished cell stops its queue's harvest early
    /// (the drainer never spins on a preempted producer) and those
    /// records also carry over. Single-threaded, the boundary always
    /// covers everything, which keeps this replay bit-identical to the
    /// sharded oracle.
    fn drain_lockfree(&mut self, ingest: &LockFreeIngest) {
        self.stats.ignored_events += ingest.take_overflow_dropped();
        let boundary = ingest.begin_epoch();
        let mut stamper = self.ts.begin_batch();
        let mut scratch = std::mem::take(&mut self.scratch);
        for i in 0..ingest.queue_count() {
            ingest.harvest(i, &boundary, &mut scratch);
            for rec in scratch.drain(..) {
                let stamp = stamper.stamp(rec.now);
                self.apply_stamped(rec.task, rec.rid, rec.amount, rec.kind, stamp);
            }
        }
        self.scratch = scratch;
        self.ts.commit_batch(stamper);
    }
}

impl AtroposRuntime {
    // ---- integration API (Figure 6a): resource registration ----

    /// Registers an application resource for tracking.
    pub fn register_resource(&self, name: impl Into<String>, rtype: ResourceType) -> ResourceId {
        // Drain first: events emitted before this call must resolve
        // against the registry as it was when they were emitted.
        let mut inner = self.lock_drained();
        let id = inner.resources.register(name, rtype);
        let n = inner.resources.len();
        for t in inner.tasks.values_mut() {
            t.ensure_resources(n);
        }
        // Every cached per-task vector changed length: rebuild.
        inner.policy_index.invalidate_all();
        id
    }

    // ---- tracing API (Figure 6b) ----

    fn trace(&self, task: TaskId, rid: ResourceId, amount: u64, kind: EventKind) {
        let now = self.clock.now_ns();
        let Some(ingest) = &self.ingest else {
            // Direct mode: global lock plus inline accounting per event.
            self.inner.lock().apply_trace(task, rid, amount, kind, now);
            return;
        };
        // Buffered modes: the hot path is a shard-local bounded append —
        // a mutex-guarded `Vec` push (`Sharded`) or a lock-free ring
        // claim + publish (`LockFree`).
        if let PushOutcome::Full(rec) = ingest.push(task, rid, amount, kind, now) {
            // The stripe filled mid-window. Flush every stripe if the
            // runtime state is free (it always is under the
            // single-threaded simulator, keeping replay lossless there);
            // if another thread holds it — e.g. a concurrent tick, which
            // is itself draining — shed the stripe's oldest record
            // rather than block the request path.
            match self.inner.try_lock() {
                Some(mut inner) => {
                    inner.stats.mid_window_flushes += 1;
                    inner.drain_ingest(ingest);
                    ingest.force_push(rec);
                }
                None => ingest.force_push(rec),
            }
        }
    }

    /// Records that `task` acquired `amount` units of resource `rid`
    /// (`getResource`).
    pub fn get_resource(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, EventKind::Get);
    }

    /// Records that `task` released `amount` units (`freeResource`).
    pub fn free_resource(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, EventKind::Free);
    }

    /// Records that `task` is delayed by the resource (`slowByResource`):
    /// it began waiting for a lock/queue slot or caused `amount` evictions.
    pub fn slow_by_resource(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, EventKind::SlowBy);
    }

    /// Reports GetNext progress for a task: `done` of `total` work units.
    pub fn report_progress(&self, task: TaskId, done: u64, total: u64) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(t) = inner.tasks.get_mut(&task) {
            t.progress.report(done, total);
            // Progress feeds the future-gain multiplier but leaves the
            // usage windows untouched; mark the cached terms stale.
            inner.policy_index.mark_dirty(task);
        }
    }

    // ---- performance signal ----

    /// Marks the start of a work unit (one request) on this task.
    pub fn unit_started(&self, task: TaskId) {
        let now = self.clock.now_ns();
        if let Some(t) = self.inner.lock().tasks.get_mut(&task) {
            t.on_unit_start(now);
        }
    }

    /// Marks the completion of the open work unit; feeds the detector.
    /// Returns the measured latency if a unit was open.
    pub fn unit_finished(&self, task: TaskId) -> Option<u64> {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock();
        let latency = inner.tasks.get_mut(&task)?.on_unit_finish(now)?;
        inner.detector.record_completion(now, latency);
        inner.stats.completions += 1;
        Some(latency)
    }

    /// Records an externally dropped request so the detector's series stays
    /// complete.
    pub fn record_drop(&self) {
        let now = self.clock.now_ns();
        self.inner.lock().detector.record_drop(now);
    }
}
