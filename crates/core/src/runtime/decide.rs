//! Decide: the periodic detection → estimation → policy → cancellation
//! driver (Algorithm 1).
//!
//! One [`AtroposRuntime::tick`] closes the accounting window, asks the
//! detector for an overload candidate, runs the estimator to find
//! bottlenecked resources, classifies regular vs. resource overload, and
//! hands the policy's selected victim to the cancel manager. Cancellation
//! *plumbing* (initiators, scopes, operator kills) lives in `actuate.rs`.

use std::collections::HashMap;

use super::{AtroposRuntime, Inner, TickOutcome};
use crate::cancel::CancelDecision;
use crate::config::PolicyEngine;
use crate::detect::OverloadSignal;
use crate::estimator::estimate;
use crate::ids::{ResourceType, TaskId, TaskKey};
use crate::record::{CancelOrigin, DecisionEvent, RecorderHandle};
use crate::task::{TaskRecord, TaskState};
use crate::trace::TimestampMode;

impl AtroposRuntime {
    /// Runs one detection → estimation → policy → cancellation cycle.
    ///
    /// Call this periodically (the detector window is the natural period).
    pub fn tick(&self) -> TickOutcome {
        let now = self.clock.now_ns();
        // The tick is the principal drain point: buffered events are
        // replayed before the windows roll, so detection, estimation and
        // policy all see the same accounting state direct ingestion
        // would have produced.
        let mut inner = self.lock_drained();
        inner.stats.ticks += 1;
        // The recorder handle borrows a local clone of the Arc so emission
        // can interleave with mutable access to the rest of the state.
        let sink = inner.recorder.clone();
        let rec = RecorderHandle::new(sink.as_deref(), inner.stats.ticks);
        // Close the accounting window on every task (quiescent tasks
        // short-circuit inside `roll_window`), counting in-flight work in
        // the same pass.
        let mut in_flight = 0u64;
        for t in inner.tasks.values_mut() {
            t.roll_window(now);
            if t.is_active() {
                in_flight += 1;
            }
        }
        let signal = inner.detector.evaluate_recorded(now, in_flight, &rec);
        let outcome = match signal {
            OverloadSignal::Ok => {
                inner.ts.set_mode(TimestampMode::Sampled);
                inner.cancel.on_window(now, false);
                TickOutcome::Idle
            }
            OverloadSignal::Candidate { .. } => {
                inner.stats.candidates += 1;
                // Potential overload: switch to precise timestamps (§3.2).
                inner.ts.set_mode(TimestampMode::Precise);
                // Both engines produce bit-identical decisions (enforced
                // by the differential suites); the indexed engine just
                // gets there without re-deriving every task.
                let snapshot = match inner.cfg.policy_engine {
                    PolicyEngine::Naive => {
                        estimate(inner.tasks.values(), &inner.resources, &inner.cfg)
                    }
                    PolicyEngine::Indexed => {
                        let Inner {
                            policy_index,
                            tasks,
                            resources,
                            cfg,
                            ..
                        } = &mut *inner;
                        policy_index.refresh(tasks, resources, cfg);
                        policy_index.materialize()
                    }
                };
                let hot = snapshot.bottlenecked(inner.cfg.detector.min_contention);
                let outcome = if hot.is_empty() {
                    inner.stats.regular_overloads += 1;
                    rec.emit(|tick| DecisionEvent::RegularOverload { tick });
                    if let Some(hook) = &inner.regular_overload_hook {
                        hook();
                    }
                    TickOutcome::RegularOverload
                } else {
                    inner.stats.resource_overloads += 1;
                    let hottest = snapshot.resources[hot[0].index()].rtype;
                    let type_idx = match hottest {
                        ResourceType::Lock => 0,
                        ResourceType::Memory => 1,
                        ResourceType::Queue => 2,
                        ResourceType::System => 3,
                    };
                    inner.stats.overloads_by_type[type_idx] += 1;
                    if rec.enabled() {
                        // The explanation pass: score/rank events cost real
                        // work (an extra Algorithm-1 evaluation), so they
                        // run only with a recorder attached.
                        for &rid in &hot {
                            let r = &snapshot.resources[rid.index()];
                            rec.emit(|tick| DecisionEvent::ResourceScored {
                                tick,
                                resource: r.id,
                                rtype: r.rtype,
                                contention: r.contention,
                                weight: r.weight,
                                wait_ns: r.wait_ns,
                                hold_ns: r.hold_ns,
                            });
                        }
                        let ranked = match inner.cfg.policy_engine {
                            PolicyEngine::Naive => crate::policy::ranked_naive(&snapshot),
                            PolicyEngine::Indexed => crate::policy::ranked(&snapshot),
                        };
                        for s in ranked {
                            rec.emit(|tick| DecisionEvent::CandidateRanked {
                                tick,
                                task: s.task,
                                key: s.key,
                                score: s.score,
                            });
                        }
                    }
                    let sel = match inner.cfg.policy_engine {
                        PolicyEngine::Naive => inner.policy.select_naive(&snapshot),
                        PolicyEngine::Indexed => inner.policy_index.select(inner.cfg.policy),
                    };
                    let (canceled, decision) = match sel {
                        Some(s) => {
                            if rec.enabled() {
                                let hot0 = hot[0];
                                let victims_waiting = inner
                                    .tasks
                                    .values()
                                    .filter(|t| {
                                        t.id != s.task
                                            && t.usage
                                                .get(hot0.index())
                                                .is_some_and(|u| u.total_wait_ns > 0)
                                    })
                                    .count()
                                    as u64;
                                let terms = match inner.cfg.policy_engine {
                                    PolicyEngine::Naive => {
                                        crate::policy::gain_terms(&snapshot, s.task)
                                    }
                                    PolicyEngine::Indexed => inner.policy_index.gain_terms(s.task),
                                };
                                rec.emit(|tick| DecisionEvent::BlameAssigned {
                                    tick,
                                    resource: hot0,
                                    task: s.task,
                                    key: s.key,
                                    score: s.score,
                                    terms,
                                    victims_waiting,
                                });
                            }
                            let (background, origin) = inner
                                .tasks
                                .get(&s.task)
                                .map(|t| (t.background, t.origin))
                                .unwrap_or((false, None));
                            if let Some(t) = inner.tasks.get_mut(&s.task) {
                                t.state = TaskState::CancelRequested;
                            }
                            let d = inner.cancel.request_cancel_recorded(
                                now,
                                s.key,
                                background,
                                CancelOrigin::Policy,
                                &rec,
                            );
                            if d == CancelDecision::Issued {
                                // Cross-node blame (§4): a canceled proxy
                                // task is attributed to its remote root.
                                if let Some(origin) = origin {
                                    inner.remote_blame.push(crate::task::RemoteBlame {
                                        local_key: s.key,
                                        origin,
                                        at_ns: now,
                                    });
                                }
                                // Distributed extension: propagate the root
                                // cancellation to all descendant tasks.
                                let keys = descendant_keys(&inner.tasks, s.task);
                                if !keys.is_empty() {
                                    inner.cancel.propagate(&keys);
                                }
                            }
                            ((d == CancelDecision::Issued).then_some(s.key), Some(d))
                        }
                        None => (None, None),
                    };
                    TickOutcome::ResourceOverload {
                        resources: hot,
                        canceled,
                        decision,
                    }
                };
                inner.last_estimate = Some(snapshot);
                inner.cancel.on_window(now, true);
                outcome
            }
        };
        if inner.stats.cancel != inner.cancel.stats() {
            inner.stats.cancel = inner.cancel.stats();
        }
        outcome
    }
}

/// Collects the keys of every descendant of `root` (excluding the root),
/// breadth-first and cycle-safe.
fn descendant_keys(tasks: &HashMap<TaskId, TaskRecord>, root: TaskId) -> Vec<TaskKey> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    seen.insert(root);
    let mut frontier = vec![root];
    while let Some(id) = frontier.pop() {
        let Some(rec) = tasks.get(&id) else { continue };
        for &child in &rec.children {
            if seen.insert(child) {
                if let Some(c) = tasks.get(&child) {
                    out.push(c.key);
                }
                frontier.push(child);
            }
        }
    }
    out
}
