//! Actuate: the cancellation boundary (Figure 6a minus resource
//! registration).
//!
//! Task scope management (`create_cancel`/`free_cancel`), the initiator /
//! re-execution / drop / regular-overload callbacks an application wires
//! up, task attributes (background, cancellable, child links), recorder
//! attachment, and the operator kill path. These are the runtime's
//! *outputs*: everything that turns a decision into an application-visible
//! signal.

use std::sync::Arc;

use super::AtroposRuntime;
use crate::cancel::CancelDecision;
use crate::ids::{TaskId, TaskKey};
use crate::record::{CancelOrigin, Recorder, RecorderHandle};
use crate::task::{TaskRecord, TaskState};

impl AtroposRuntime {
    /// Marks the beginning of a cancellable task's scope (`createCancel`).
    ///
    /// `key` identifies the task to the *application* (e.g. a thread id);
    /// if `None`, a unique key is generated. A task whose key was canceled
    /// before is registered non-cancellable (re-execution fairness, §4).
    pub fn create_cancel(&self, key: Option<u64>) -> TaskId {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock();
        let key = match key {
            Some(k) => TaskKey(k),
            None => {
                let k = inner.next_auto_key;
                inner.next_auto_key += 1;
                TaskKey(k)
            }
        };
        let id = TaskId(inner.next_task);
        inner.next_task += 1;
        let n = inner.resources.len();
        let mut rec = TaskRecord::new(id, key, now, n);
        if inner.cancel.was_canceled(key) {
            rec.cancellable = false;
        }
        inner.tasks.insert(id, rec);
        id
    }

    /// Ends a cancellable task's scope (`freeCancel`). Unknown ids are
    /// ignored.
    pub fn free_cancel(&self, task: TaskId) {
        // Drain first so the task's buffered events land in its usage
        // accounting (not in `ignored_events`) before the record goes.
        let now = self.clock.now_ns();
        let mut inner = self.lock_drained();
        if let Some(rec) = inner.tasks.remove(&task) {
            inner.policy_index.remove_task(task);
            let sink = inner.recorder.clone();
            let handle = RecorderHandle::new(sink.as_deref(), inner.stats.ticks);
            inner.cancel.note_finished_recorded(now, rec.key, &handle);
        }
    }

    /// Registers the application's cancellation initiator
    /// (`setCancelAction`). The callback receives the task's key.
    pub fn set_cancel_action(&self, f: impl Fn(TaskKey) + Send + Sync + 'static) {
        self.inner.lock().cancel.set_cancel_action(Box::new(f));
    }

    /// Registers the coarse thread-level cancellation fallback (§3.6).
    ///
    /// Used only when no application initiator is registered and
    /// [`crate::config::AtroposConfig::allow_thread_level_cancel`] is set
    /// — e.g. the paper's Apache integration, whose PHP scripts have no
    /// built-in cancellation and are aborted with `pthread_cancel` after
    /// the developers established that it is safe (§5.2).
    pub fn set_thread_cancel_action(&self, f: impl Fn(TaskKey) + Send + Sync + 'static) {
        self.inner
            .lock()
            .cancel
            .set_thread_cancel_action(Box::new(f));
    }

    /// Registers the re-execution callback (§4 fairness).
    pub fn set_reexec_action(&self, f: impl Fn(TaskKey) + Send + Sync + 'static) {
        self.inner.lock().cancel.set_reexec_action(Box::new(f));
    }

    /// Registers the callback invoked when a canceled task is dropped for
    /// missing its SLO deadline.
    pub fn set_drop_action(&self, f: impl Fn(TaskKey) + Send + Sync + 'static) {
        self.inner.lock().cancel.set_drop_action(Box::new(f));
    }

    /// Registers the fallback invoked on *regular* (non-resource) overload,
    /// e.g. an admission-control mechanism.
    pub fn set_regular_overload_action(&self, f: impl Fn() + Send + Sync + 'static) {
        self.inner.lock().regular_overload_hook = Some(Box::new(f));
    }

    /// Attaches a decision-trace [`Recorder`]. The recorder is invoked
    /// from inside the tick/cancel paths (under the runtime lock) and must
    /// be non-blocking; see the trait docs. With no recorder attached —
    /// the default — all emission sites are disabled at zero cost.
    pub fn set_recorder(&self, rec: Arc<dyn Recorder>) {
        self.inner.lock().recorder = Some(rec);
    }

    /// Detaches the decision-trace recorder, if any.
    pub fn clear_recorder(&self) {
        self.inner.lock().recorder = None;
    }

    /// Links `child` as a sub-task of `parent` (the distributed extension
    /// sketched in §4: a root request fanning work out to child tasks,
    /// possibly on other nodes). Canceling the parent propagates the
    /// cancellation signal to every descendant's key.
    ///
    /// Cycles are ignored at traversal time, so a buggy linkage cannot
    /// hang cancellation.
    pub fn link_child(&self, parent: TaskId, child: TaskId) {
        let mut inner = self.inner.lock();
        if parent != child && inner.tasks.contains_key(&child) {
            if let Some(p) = inner.tasks.get_mut(&parent) {
                if !p.children.contains(&child) {
                    p.children.push(child);
                }
            }
        }
    }

    /// Marks a task as a background task (no SLO; force-re-executed after
    /// the configured maximum wait instead of being dropped).
    pub fn mark_background(&self, task: TaskId) {
        if let Some(t) = self.inner.lock().tasks.get_mut(&task) {
            t.background = true;
        }
    }

    /// Overrides whether the policy may cancel this task.
    pub fn set_cancellable(&self, task: TaskId, cancellable: bool) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(t) = inner.tasks.get_mut(&task) {
            t.cancellable = cancellable;
            // Cancellability is cached in the task's policy-index terms.
            inner.policy_index.mark_dirty(task);
        }
    }

    /// Requests cancellation of the task registered under `key`,
    /// bypassing detection and policy but not the safeguards (rate
    /// limiting, cancel-once fairness, re-execution bookkeeping).
    ///
    /// This is the operator entry point (MySQL's manual `KILL` analog):
    /// a human or an external controller decides *what* to cancel, but
    /// the cancellation still flows through the registered initiator so
    /// the application observes one uniform signal path.
    pub fn cancel_key(&self, key: TaskKey) -> CancelDecision {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock();
        let task = inner
            .tasks
            .values()
            .find(|t| t.key == key)
            .map(|t| (t.id, t.background, t.origin));
        let (background, origin) = match task {
            Some((id, background, origin)) => {
                if let Some(t) = inner.tasks.get_mut(&id) {
                    t.state = TaskState::CancelRequested;
                }
                (background, origin)
            }
            None => (false, None),
        };
        let sink = inner.recorder.clone();
        let handle = RecorderHandle::new(sink.as_deref(), inner.stats.ticks);
        let d = inner.cancel.request_cancel_recorded(
            now,
            key,
            background,
            CancelOrigin::Operator,
            &handle,
        );
        if d == CancelDecision::Issued {
            // Cross-node blame (§4): operator kills of proxy tasks are
            // attributed to the remote root just like policy cancels.
            if let Some(origin) = origin {
                inner.remote_blame.push(crate::task::RemoteBlame {
                    local_key: key,
                    origin,
                    at_ns: now,
                });
            }
        }
        d
    }

    /// Records the cross-node provenance of `task` (§4): the root
    /// identity piggybacked over the RPC edge that created it. Installed
    /// by the federation edge when a proxy task is opened; cancels of the
    /// task are then attributed to the remote root in
    /// [`DebugSnapshot`](crate::DebugSnapshot) blame records.
    pub fn set_task_origin(&self, task: TaskId, origin: crate::task::RemoteOrigin) {
        let mut inner = self.inner.lock();
        if let Some(t) = inner.tasks.get_mut(&task) {
            t.origin = Some(origin);
        }
    }
}
