//! The Atropos runtime manager (§3.2, Figure 5).
//!
//! [`AtroposRuntime`] is the object applications integrate against. It owns
//! the task and resource registries, the trace accounting, the overload
//! detector, the estimator, the cancellation policy, and the cancel
//! manager, and exposes the paper's Figure 6 API in idiomatic Rust. All
//! methods are thread-safe; the runtime serves real multi-threaded
//! programs and the single-threaded simulator alike.
//!
//! The implementation is split along the port seam:
//!
//! - [`ingest`](self) (`ingest.rs`) — the tracing hot path: resource
//!   registration, get/free/slow_by, the performance signal, and the
//!   sharded-buffer replay that folds buffered events into accounting;
//! - `decide.rs` — the periodic driver: one `tick` running detection →
//!   estimation → policy → cancellation;
//! - `actuate.rs` — the cancellation boundary: task scoping, initiator /
//!   re-execution / drop callbacks, and the operator `cancel_key` path.
//!
//! This file keeps the shared state (`Inner`), construction, and
//! introspection. The split is layout only: every method kept its exact
//! body, and the golden episode suite pins the behavior bit-for-bit.

mod actuate;
mod decide;
mod ingest;

use std::collections::HashMap;
use std::sync::Arc;

use atropos_sim::Clock;
use parking_lot::Mutex;

use crate::cancel::{CancelDecision, CancelManager, CancelStats};
use crate::config::{AtroposConfig, IngestMode};
use crate::detect::Detector;
use crate::estimator::EstimatorSnapshot;
use crate::ids::{ResourceId, TaskId, TaskKey};
use crate::lockfree::LockFreeIngest;
use crate::policy::{CancellationPolicy, PolicyIndex};
use crate::record::Recorder;
use crate::resource::ResourceRegistry;
use crate::task::{TaskRecord, TaskState};
use crate::trace::{self, EventKind, PushOutcome, ShardedIngest, TimestampMode, TimestampPolicy};

/// Auto-generated keys live in the top half of the key space so they never
/// collide with developer-provided keys (which are expected to be small
/// identifiers such as thread or connection ids).
const AUTO_KEY_BASE: u64 = 1 << 63;

/// Result of one [`AtroposRuntime::tick`].
#[derive(Debug, Clone, PartialEq)]
pub enum TickOutcome {
    /// No overload candidate this window.
    Idle,
    /// Candidate confirmed as resource overload.
    ResourceOverload {
        /// Bottlenecked resources, most contended first.
        resources: Vec<ResourceId>,
        /// Key of the task whose cancellation was issued, if any.
        canceled: Option<TaskKey>,
        /// The decision taken for the selected task (if one was selected).
        decision: Option<CancelDecision>,
    },
    /// Candidate without a bottlenecked application resource: regular
    /// (demand) overload, delegated to the fallback handler.
    RegularOverload,
}

/// Aggregate runtime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tracing API calls processed.
    pub trace_events: u64,
    /// Tracing API calls that referenced an unknown task/resource and were
    /// ignored (e.g. events racing with `free_cancel`), plus sharded-mode
    /// records shed when a stripe overflowed with the runtime state busy.
    pub ignored_events: u64,
    /// Sharded-mode drains triggered by a full stripe between ticks.
    pub mid_window_flushes: u64,
    /// `tick` invocations.
    pub ticks: u64,
    /// Candidate overloads reported by the detector.
    pub candidates: u64,
    /// Candidates confirmed as resource overload.
    pub resource_overloads: u64,
    /// Candidates classified as regular overload.
    pub regular_overloads: u64,
    /// Work units completed.
    pub completions: u64,
    /// Confirmed resource overloads by the hottest resource's type,
    /// indexed Lock/Memory/Queue/System (diagnostic: which kind of
    /// resource kept bottlenecking).
    pub overloads_by_type: [u64; 4],
    /// Cancellation counters.
    pub cancel: CancelStats,
}

struct Inner {
    cfg: AtroposConfig,
    resources: ResourceRegistry,
    tasks: HashMap<TaskId, TaskRecord>,
    next_task: u64,
    next_auto_key: u64,
    detector: Detector,
    policy: Box<dyn CancellationPolicy>,
    /// Incrementally maintained policy state, used when
    /// [`AtroposConfig::policy_engine`] is
    /// [`PolicyEngine`](crate::config::PolicyEngine)`::Indexed`. Kept in
    /// sync by the ingest/actuate hooks and refreshed on candidate ticks.
    policy_index: PolicyIndex,
    cancel: CancelManager,
    ts: TimestampPolicy,
    last_estimate: Option<EstimatorSnapshot>,
    regular_overload_hook: Option<Box<dyn Fn() + Send + Sync>>,
    /// Optional decision-trace sink; `None` (the default) keeps every
    /// emission site a single branch with no event construction.
    recorder: Option<Arc<dyn Recorder>>,
    stats: RuntimeStats,
    /// Cross-node blame attributions (§4): one entry per cancel issued
    /// against a task carrying a [`RemoteOrigin`]. The federation layer
    /// drains these via the debug snapshot to drive upstream propagation
    /// proofs (invariant I9).
    remote_blame: Vec<crate::task::RemoteBlame>,
    /// Reusable drain buffer, swapped stripe by stripe so replay never
    /// allocates on the steady state.
    scratch: Vec<trace::TraceRecord>,
}

/// The emit-side buffers of a buffered [`IngestMode`]: the structures
/// tracing calls append to without touching `inner`. Both variants share
/// the same outward contract (task-sharded bounded buffers, per-task
/// FIFO, `Full` hand-back, overflow accounting); the drain side differs
/// (stripe swap vs epoch harvest) and is dispatched in
/// [`Inner::drain_ingest`].
pub(crate) enum IngestBuffers {
    /// Stripe-locked `Vec`s, kept as the oracle.
    Sharded(ShardedIngest),
    /// Lock-free rings with epoch-based drain (the default).
    LockFree(LockFreeIngest),
}

impl IngestBuffers {
    #[inline]
    pub(crate) fn push(
        &self,
        task: TaskId,
        rid: ResourceId,
        amount: u64,
        kind: EventKind,
        now: u64,
    ) -> PushOutcome {
        match self {
            IngestBuffers::Sharded(i) => i.push(task, rid, amount, kind, now),
            IngestBuffers::LockFree(i) => i.push(task, rid, amount, kind, now),
        }
    }

    #[inline]
    pub(crate) fn force_push(&self, rec: trace::TraceRecord) {
        match self {
            IngestBuffers::Sharded(i) => i.force_push(rec),
            IngestBuffers::LockFree(i) => i.force_push(rec),
        }
    }

    pub(crate) fn pending(&self) -> usize {
        match self {
            IngestBuffers::Sharded(i) => i.pending(),
            IngestBuffers::LockFree(i) => i.pending(),
        }
    }
}

/// The Atropos runtime. See the [crate-level docs](crate) for an overview
/// and a usage example.
pub struct AtroposRuntime {
    clock: Arc<dyn Clock>,
    /// Present iff [`AtroposConfig::ingest_mode`] is a buffered mode
    /// ([`IngestMode::Sharded`] or [`IngestMode::LockFree`]): the buffers
    /// tracing calls append to without touching `inner`.
    ingest: Option<IngestBuffers>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for AtroposRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("AtroposRuntime")
            .field("tasks", &inner.tasks.len())
            .field("resources", &inner.resources.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl AtroposRuntime {
    /// Creates a runtime.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation; use [`AtroposRuntime::try_new`]
    /// for a fallible constructor.
    pub fn new(cfg: AtroposConfig, clock: Arc<dyn Clock>) -> Self {
        Self::try_new(cfg, clock).expect("invalid AtroposConfig")
    }

    /// Creates a runtime, returning a description of any configuration
    /// error.
    pub fn try_new(cfg: AtroposConfig, clock: Arc<dyn Clock>) -> Result<Self, String> {
        cfg.validate()?;
        let origin = clock.now_ns();
        let ingest = match cfg.ingest_mode {
            IngestMode::Direct => None,
            IngestMode::Sharded => Some(IngestBuffers::Sharded(ShardedIngest::new(
                cfg.ingest_stripes,
                cfg.ingest_stripe_capacity,
            ))),
            IngestMode::LockFree => Some(IngestBuffers::LockFree(LockFreeIngest::new(
                cfg.ingest_stripes,
                cfg.ingest_stripe_capacity,
            ))),
        };
        let inner = Inner {
            detector: Detector::new(cfg.detector.clone(), origin),
            policy: cfg.policy.build(),
            policy_index: PolicyIndex::new(),
            cancel: CancelManager::new(&cfg),
            ts: TimestampPolicy::new(cfg.sample_interval_ns),
            resources: ResourceRegistry::new(),
            tasks: HashMap::new(),
            next_task: 1,
            next_auto_key: AUTO_KEY_BASE,
            last_estimate: None,
            regular_overload_hook: None,
            recorder: None,
            stats: RuntimeStats::default(),
            remote_blame: Vec::new(),
            scratch: Vec::new(),
            cfg,
        };
        Ok(Self {
            clock,
            ingest,
            inner: Mutex::new(inner),
        })
    }

    /// Locks the runtime state with every buffered tracing call replayed.
    ///
    /// Every method that reads or mutates state the trace events feed
    /// (task usage, the resource registry, event counters) must go through
    /// this, so sharded ingestion observes exactly the direct-mode state
    /// at each drain point.
    fn lock_drained(&self) -> parking_lot::MutexGuard<'_, Inner> {
        let mut inner = self.inner.lock();
        if let Some(ingest) = &self.ingest {
            inner.drain_ingest(ingest);
        }
        inner
    }

    /// The clock this runtime reads timestamps from.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    // ---- introspection ----

    /// Current timestamp mode (sampled under normal load, precise under
    /// potential overload).
    pub fn timestamp_mode(&self) -> TimestampMode {
        self.inner.lock().ts.mode()
    }

    /// The estimator snapshot from the most recent overloaded tick.
    pub fn last_estimate(&self) -> Option<EstimatorSnapshot> {
        self.inner.lock().last_estimate.clone()
    }

    /// Aggregate counters. Drains any buffered trace events first so the
    /// event counts are exact at the time of the call.
    pub fn stats(&self) -> RuntimeStats {
        let inner = self.lock_drained();
        let mut s = inner.stats;
        s.cancel = inner.cancel.stats();
        s
    }

    /// Aggregate counters *without* draining buffered trace events: a
    /// cheap snapshot for monitoring threads that must not perturb the
    /// sharded ingest (forcing a drain from a poller steals the batch
    /// replay from the tick path and skews `mid_window_flushes`). Event
    /// counts may lag [`AtroposRuntime::stats`] by up to one drain.
    pub fn stats_relaxed(&self) -> RuntimeStats {
        let inner = self.inner.lock();
        let mut s = inner.stats;
        s.cancel = inner.cancel.stats();
        s
    }

    /// How tracing calls are ingested (fixed at construction).
    pub fn ingest_mode(&self) -> IngestMode {
        match &self.ingest {
            None => IngestMode::Direct,
            Some(IngestBuffers::Sharded(_)) => IngestMode::Sharded,
            Some(IngestBuffers::LockFree(_)) => IngestMode::LockFree,
        }
    }

    /// Completed drain epochs of the lock-free ingest path (0 in the
    /// other modes): each drain point advances exactly one epoch and
    /// harvests exactly the records claimed before its boundary.
    pub fn ingest_epochs(&self) -> u64 {
        match &self.ingest {
            Some(IngestBuffers::LockFree(i)) => i.epochs(),
            _ => 0,
        }
    }

    /// Number of trace events currently buffered and not yet replayed
    /// (always 0 in [`IngestMode::Direct`]).
    pub fn ingest_pending(&self) -> usize {
        self.ingest.as_ref().map_or(0, |i| i.pending())
    }

    /// Forces the timestamp mode, overriding the detector-driven switch
    /// until the next `tick`. Intended for benchmarks and overhead
    /// experiments that need to pin the sampled or precise path; normal
    /// integrations never call this. Buffered events emitted before this
    /// call are drained first so they keep the mode they were emitted
    /// under.
    pub fn set_timestamp_mode(&self, mode: TimestampMode) {
        self.lock_drained().ts.set_mode(mode);
    }

    /// Number of live (registered) tasks.
    pub fn task_count(&self) -> usize {
        self.inner.lock().tasks.len()
    }

    /// A consistent plain-data copy of the runtime's internal state for
    /// invariant checkers (see [`crate::debug`]). Buffered trace events
    /// are drained first, so accounting counters are exact at the call
    /// point — the same state a tick at this instant would observe.
    pub fn debug_snapshot(&self) -> crate::debug::DebugSnapshot {
        use crate::debug::*;
        let now_ns = self.clock.now_ns();
        let inner = self.lock_drained();
        let (evaluations, candidates) = inner.detector.counters();
        let mut tasks: Vec<TaskDebug> = inner
            .tasks
            .values()
            .map(|t| TaskDebug {
                id: t.id,
                key: t.key,
                cancel_requested: t.state == TaskState::CancelRequested,
                cancellable: t.cancellable,
                background: t.background,
                progress: t.progress.progress(0.0),
                origin: t.origin,
                usage: t
                    .usage
                    .iter()
                    .map(|u| UsageDebug {
                        acquired: u.acquired,
                        freed: u.freed,
                        held: u.held,
                        slow_events: u.slow_events,
                        slow_amount: u.slow_amount,
                        total_wait_ns: u.total_wait_ns,
                        total_hold_ns: u.total_hold_ns,
                    })
                    .collect(),
            })
            .collect();
        tasks.sort_by_key(|t| t.id);
        let mut stats = inner.stats;
        stats.cancel = inner.cancel.stats();
        DebugSnapshot {
            now_ns,
            resources: inner
                .resources
                .iter()
                .map(|r| ResourceDebug {
                    id: r.id,
                    name: r.name.clone(),
                    rtype: r.rtype,
                })
                .collect(),
            tasks,
            detector: DetectorDebug {
                evaluations,
                candidates,
            },
            cancel: CancelDebug {
                canceled_keys: inner.cancel.canceled_keys(),
                pending_reexec: inner.cancel.pending_reexec(),
                outstanding_reexec: inner.cancel.outstanding_reexec(),
                remote_blame: inner.remote_blame.clone(),
                stats: inner.cancel.stats(),
            },
            stats,
        }
    }

    /// The configuration the runtime was built with.
    pub fn config(&self) -> AtroposConfig {
        self.inner.lock().cfg.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ResourceType;
    use atropos_sim::{SimTime, VirtualClock};
    use std::sync::atomic::{AtomicU64, Ordering};

    const MS: u64 = 1_000_000;

    fn setup(slo_ms: u64) -> (Arc<VirtualClock>, AtroposRuntime) {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = AtroposConfig::default();
        cfg.detector.slo_latency_ns = slo_ms * MS;
        cfg.detector.window_ns = 100 * MS;
        cfg.cancel_min_interval_ns = 0;
        let rt = AtroposRuntime::new(cfg, clock.clone());
        (clock, rt)
    }

    #[test]
    fn auto_keys_do_not_collide_with_explicit_keys() {
        let (_c, rt) = setup(10);
        let _a = rt.create_cancel(Some(7));
        let _b = rt.create_cancel(None);
        assert_eq!(rt.task_count(), 2);
    }

    #[test]
    fn free_cancel_removes_task() {
        let (_c, rt) = setup(10);
        let t = rt.create_cancel(None);
        rt.free_cancel(t);
        assert_eq!(rt.task_count(), 0);
        rt.free_cancel(t); // idempotent
    }

    #[test]
    fn events_on_freed_tasks_are_ignored() {
        let (_c, rt) = setup(10);
        let pool = rt.register_resource("pool", ResourceType::Memory);
        let t = rt.create_cancel(None);
        rt.free_cancel(t);
        rt.get_resource(t, pool, 10);
        assert_eq!(rt.stats().ignored_events, 1);
        assert_eq!(rt.stats().trace_events, 0);
    }

    #[test]
    fn resources_registered_late_are_visible_to_existing_tasks() {
        let (_c, rt) = setup(10);
        let t = rt.create_cancel(None);
        let lock = rt.register_resource("lock", ResourceType::Lock);
        rt.get_resource(t, lock, 1);
        assert_eq!(rt.stats().trace_events, 1);
    }

    #[test]
    fn unit_lifecycle_feeds_detector() {
        let (clock, rt) = setup(10);
        let t = rt.create_cancel(None);
        rt.unit_started(t);
        clock.advance_to(SimTime::from_millis(5));
        assert_eq!(rt.unit_finished(t), Some(5 * MS));
        assert_eq!(rt.stats().completions, 1);
    }

    /// Drives a full overload scenario: many light tasks blocked on a lock
    /// held by one hog; the hog must be the task canceled.
    #[test]
    fn end_to_end_lock_hog_is_canceled() {
        let (clock, rt) = setup(10);
        let lock = rt.register_resource("table_lock", ResourceType::Lock);
        let canceled = Arc::new(AtomicU64::new(0));
        let canceled2 = canceled.clone();
        rt.set_cancel_action(move |key| {
            canceled2.store(key.0, Ordering::SeqCst);
        });

        let hog = rt.create_cancel(Some(99));
        rt.unit_started(hog);
        rt.report_progress(hog, 10, 100); // early in its work
        rt.get_resource(hog, lock, 1); // holds the lock from t=0

        let mut victims = Vec::new();
        for i in 0..10 {
            let v = rt.create_cancel(Some(i));
            rt.unit_started(v);
            rt.slow_by_resource(v, lock, 1); // all wait on the lock
            victims.push(v);
        }

        // Window 0: healthy completions to establish a throughput base.
        for step in 1..=20u64 {
            clock.advance_to(SimTime::from_nanos(step * 5 * MS / 2));
            let t = rt.create_cancel(None);
            rt.unit_started(t);
            rt.unit_finished(t);
            rt.free_cancel(t);
        }
        clock.advance_to(SimTime::from_millis(100));
        assert_eq!(rt.tick(), TickOutcome::Idle);

        // Window 1: only slow completions (latency >> SLO), lock still held.
        for step in 1..=10u64 {
            clock.advance_to(SimTime::from_nanos(100 * MS + step * 9 * MS));
            let t = rt.create_cancel(None);
            rt.unit_started(t);
            // Make each completion slow by back-dating the start: simulate
            // via a second task started in window 0 — simpler: finish a
            // victim that started at t=0.
            rt.unit_finished(t);
            rt.free_cancel(t);
        }
        // Finish two victims with huge latency so p99 violates the SLO.
        clock.advance_to(SimTime::from_millis(195));
        rt.unit_finished(victims[0]);
        rt.unit_finished(victims[1]);
        clock.advance_to(SimTime::from_millis(200));
        let outcome = rt.tick();
        match outcome {
            TickOutcome::ResourceOverload {
                resources,
                canceled: Some(key),
                ..
            } => {
                assert_eq!(resources, vec![lock]);
                assert_eq!(key, TaskKey(99));
                assert_eq!(canceled.load(Ordering::SeqCst), 99);
            }
            other => panic!("expected hog cancellation, got {other:?}"),
        }
        assert_eq!(rt.stats().cancel.issued, 1);
        assert_eq!(rt.timestamp_mode(), TimestampMode::Precise);
    }

    #[test]
    fn regular_overload_invokes_fallback() {
        let (clock, rt) = setup(10);
        rt.register_resource("lock", ResourceType::Lock);
        let fallback_hits = Arc::new(AtomicU64::new(0));
        let fh = fallback_hits.clone();
        rt.set_regular_overload_action(move || {
            fh.fetch_add(1, Ordering::SeqCst);
        });
        // Slow completions with NO resource waits: latency violates the
        // SLO but no application resource is bottlenecked.
        let t = rt.create_cancel(None);
        for w in 0..2u64 {
            for step in 0..5u64 {
                clock.advance_to(SimTime::from_nanos(w * 100 * MS + step * 16 * MS));
                rt.unit_started(t);
                clock.advance_to(SimTime::from_nanos(w * 100 * MS + step * 16 * MS + 15 * MS));
                rt.unit_finished(t);
            }
        }
        clock.advance_to(SimTime::from_millis(100));
        rt.tick();
        clock.advance_to(SimTime::from_millis(200));
        let outcome = rt.tick();
        assert_eq!(outcome, TickOutcome::RegularOverload);
        assert_eq!(fallback_hits.load(Ordering::SeqCst), 1);
        assert_eq!(rt.stats().regular_overloads, 1);
    }

    #[test]
    fn reexecuted_key_registers_non_cancellable() {
        let (_c, rt) = setup(10);
        rt.set_cancel_action(|_| {});
        // Force a cancellation directly through the manager by simulating
        // an issued cancel for key 5.
        {
            let mut inner = rt.inner.lock();
            inner.cancel.request_cancel(0, TaskKey(5), false);
        }
        let t = rt.create_cancel(Some(5));
        let inner = rt.inner.lock();
        assert!(!inner.tasks[&t].cancellable);
    }

    #[test]
    fn timestamp_mode_returns_to_sampled_when_calm() {
        let (clock, rt) = setup(1000);
        // Healthy traffic for two windows.
        let t = rt.create_cancel(None);
        for w in 0..2u64 {
            for step in 1..=5u64 {
                clock.advance_to(SimTime::from_nanos(w * 100 * MS + step * 19 * MS));
                rt.unit_started(t);
                rt.unit_finished(t);
            }
        }
        clock.advance_to(SimTime::from_millis(250));
        assert_eq!(rt.tick(), TickOutcome::Idle);
        assert_eq!(rt.timestamp_mode(), TimestampMode::Sampled);
    }

    /// The distributed extension: canceling a root task propagates to all
    /// linked descendants' keys via the same initiator.
    #[test]
    fn cancellation_propagates_to_descendants() {
        let (clock, rt) = setup(10);
        let lock = rt.register_resource("lock", ResourceType::Lock);
        let canceled_keys = Arc::new(parking_lot::Mutex::new(Vec::new()));
        {
            let keys = canceled_keys.clone();
            rt.set_cancel_action(move |key| keys.lock().push(key.0));
        }
        let root = rt.create_cancel(Some(100));
        let child = rt.create_cancel(Some(101));
        let grandchild = rt.create_cancel(Some(102));
        rt.link_child(root, child);
        rt.link_child(child, grandchild);
        rt.link_child(grandchild, root); // cycle: must be harmless
        rt.unit_started(root);
        rt.report_progress(root, 5, 100);
        rt.get_resource(root, lock, 1);
        let mut victims = Vec::new();
        for i in 0..10 {
            let v = rt.create_cancel(Some(i));
            rt.unit_started(v);
            rt.slow_by_resource(v, lock, 1);
            victims.push(v);
        }
        // Healthy window then stall window (as in the hog test).
        for step in 1..=20u64 {
            clock.advance_to(SimTime::from_nanos(step * 5 * MS / 2));
            let t = rt.create_cancel(None);
            rt.unit_started(t);
            rt.unit_finished(t);
            rt.free_cancel(t);
        }
        clock.advance_to(SimTime::from_millis(100));
        rt.tick();
        clock.advance_to(SimTime::from_millis(195));
        rt.unit_finished(victims[0]);
        rt.unit_finished(victims[1]);
        clock.advance_to(SimTime::from_millis(200));
        let outcome = rt.tick();
        assert!(matches!(
            outcome,
            TickOutcome::ResourceOverload {
                canceled: Some(_),
                ..
            }
        ));
        let keys = canceled_keys.lock().clone();
        assert!(keys.contains(&100), "root not canceled: {keys:?}");
        assert!(keys.contains(&101), "child not canceled: {keys:?}");
        assert!(keys.contains(&102), "grandchild not canceled: {keys:?}");
        assert_eq!(rt.stats().cancel.issued, 1);
        assert_eq!(rt.stats().cancel.propagated, 2);
    }

    #[test]
    fn link_child_ignores_unknown_and_self_links() {
        let (_c, rt) = setup(10);
        let a = rt.create_cancel(Some(1));
        rt.link_child(a, a); // self
        rt.link_child(a, TaskId(999)); // unknown child
        let inner = rt.inner.lock();
        assert!(inner.tasks[&a].children.is_empty());
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = AtroposConfig::default();
        cfg.detector.window_ns = 0;
        assert!(AtroposRuntime::try_new(cfg, clock).is_err());
    }

    /// Drives a deterministic mixed workload — a lock hog, waiting
    /// victims, healthy churn, events on freed tasks and unregistered
    /// resources, an overload window with a cancellation — and returns
    /// every observable: per-tick outcomes and final stats.
    fn drive_scripted(mut cfg: AtroposConfig) -> (Vec<TickOutcome>, RuntimeStats) {
        cfg.detector.slo_latency_ns = 10 * MS;
        cfg.detector.window_ns = 100 * MS;
        cfg.cancel_min_interval_ns = 0;
        let clock = Arc::new(VirtualClock::new());
        let rt = AtroposRuntime::new(cfg, clock.clone());
        rt.set_cancel_action(|_| {});
        let lock = rt.register_resource("lock", ResourceType::Lock);
        let pool = rt.register_resource("pool", ResourceType::Memory);

        let hog = rt.create_cancel(Some(99));
        rt.unit_started(hog);
        rt.report_progress(hog, 10, 100);
        rt.get_resource(hog, lock, 1);

        let mut victims = Vec::new();
        for i in 0..10 {
            let v = rt.create_cancel(Some(i));
            rt.unit_started(v);
            rt.slow_by_resource(v, lock, 1);
            victims.push(v);
        }

        // A task freed with events still buffered, then posthumous events.
        let ghost = rt.create_cancel(Some(55));
        rt.get_resource(ghost, pool, 7);
        rt.free_cancel(ghost);
        rt.get_resource(ghost, pool, 7); // ignored: task gone
        rt.get_resource(hog, ResourceId(9), 1); // ignored: unknown resource

        let mut outcomes = Vec::new();
        // Window 0: healthy completions with steady pool traffic.
        for step in 1..=20u64 {
            clock.advance_to(SimTime::from_nanos(step * 5 * MS / 2));
            let t = rt.create_cancel(None);
            rt.unit_started(t);
            rt.get_resource(t, pool, step % 5 + 1);
            rt.free_resource(t, pool, step % 5 + 1);
            rt.unit_finished(t);
            rt.free_cancel(t);
        }
        clock.advance_to(SimTime::from_millis(100));
        outcomes.push(rt.tick());

        // Window 1: a stall — two victims finish far over the SLO.
        for step in 1..=10u64 {
            clock.advance_to(SimTime::from_nanos(100 * MS + step * 9 * MS));
            let t = rt.create_cancel(None);
            rt.unit_started(t);
            rt.slow_by_resource(t, lock, 1);
            rt.unit_finished(t);
            rt.free_cancel(t);
        }
        clock.advance_to(SimTime::from_millis(195));
        rt.unit_finished(victims[0]);
        rt.unit_finished(victims[1]);
        clock.advance_to(SimTime::from_millis(200));
        outcomes.push(rt.tick());
        clock.advance_to(SimTime::from_millis(300));
        outcomes.push(rt.tick());

        (outcomes, rt.stats())
    }

    /// The tentpole's correctness contract: under the single-threaded
    /// virtual clock, sharded batch-drained ingestion is observationally
    /// identical to direct per-event ingestion — same tick outcomes, same
    /// event accounting, same cancellations.
    #[test]
    fn sharded_ingest_matches_direct_ingest() {
        let direct = drive_scripted(AtroposConfig {
            ingest_mode: IngestMode::Direct,
            ..AtroposConfig::default()
        });
        let sharded = drive_scripted(AtroposConfig {
            ingest_mode: IngestMode::Sharded,
            ..AtroposConfig::default()
        });
        assert_eq!(direct.0, sharded.0, "tick outcomes diverged");
        assert_eq!(direct.1, sharded.1, "stats diverged");
        assert!(direct.1.trace_events > 0);
        assert_eq!(direct.1.ignored_events, 2);
        assert_eq!(direct.1.cancel.issued, 1);
    }

    /// With stripes far smaller than the event volume, mid-window flushes
    /// kick in; single-threaded they are lossless, so everything except
    /// the flush counter still matches direct mode exactly.
    #[test]
    fn tiny_stripes_flush_mid_window_without_divergence() {
        let direct = drive_scripted(AtroposConfig {
            ingest_mode: IngestMode::Direct,
            ..AtroposConfig::default()
        });
        let sharded = drive_scripted(AtroposConfig {
            ingest_mode: IngestMode::Sharded,
            ingest_stripes: 1,
            ingest_stripe_capacity: 8,
            ..AtroposConfig::default()
        });
        assert_eq!(direct.0, sharded.0, "tick outcomes diverged");
        assert!(sharded.1.mid_window_flushes > 0);
        let mut normalized = sharded.1;
        normalized.mid_window_flushes = direct.1.mid_window_flushes;
        assert_eq!(direct.1, normalized, "stats diverged beyond flush count");
    }

    /// The lock-free default's correctness contract: under the
    /// single-threaded virtual clock, lock-free epoch-drained ingestion
    /// is observationally identical to direct per-event ingestion — the
    /// same contract the sharded oracle satisfies, so all three modes
    /// agree and the goldens hold without regeneration.
    #[test]
    fn lockfree_ingest_matches_direct_ingest() {
        let direct = drive_scripted(AtroposConfig {
            ingest_mode: IngestMode::Direct,
            ..AtroposConfig::default()
        });
        let lockfree = drive_scripted(AtroposConfig {
            ingest_mode: IngestMode::LockFree,
            ..AtroposConfig::default()
        });
        assert_eq!(direct.0, lockfree.0, "tick outcomes diverged");
        assert_eq!(direct.1, lockfree.1, "stats diverged");
        assert!(direct.1.trace_events > 0);
    }

    /// With tiny rings the lock-free path must flush mid-window exactly
    /// as often as the sharded oracle at the same geometry (the `Full`
    /// threshold is the logical capacity, not the rounded ring length),
    /// and lose nothing single-threaded.
    #[test]
    fn tiny_rings_flush_identically_to_sharded_stripes() {
        let sharded = drive_scripted(AtroposConfig {
            ingest_mode: IngestMode::Sharded,
            ingest_stripes: 1,
            ingest_stripe_capacity: 8,
            ..AtroposConfig::default()
        });
        let lockfree = drive_scripted(AtroposConfig {
            ingest_mode: IngestMode::LockFree,
            ingest_stripes: 1,
            ingest_stripe_capacity: 8,
            ..AtroposConfig::default()
        });
        assert_eq!(sharded.0, lockfree.0, "tick outcomes diverged");
        assert_eq!(sharded.1, lockfree.1, "stats diverged (incl. flush count)");
        assert!(lockfree.1.mid_window_flushes > 0);
    }

    /// Every drain point advances exactly one epoch in lock-free mode.
    #[test]
    fn drain_points_advance_epochs() {
        let (_c, rt) = setup(10);
        assert_eq!(rt.ingest_epochs(), 0);
        let pool = rt.register_resource("pool", ResourceType::Memory); // drain 1
        let t = rt.create_cancel(None);
        rt.get_resource(t, pool, 1);
        let epochs_before = rt.ingest_epochs();
        rt.stats(); // drains
        assert_eq!(rt.ingest_epochs(), epochs_before + 1);
        rt.tick(); // drains again
        assert_eq!(rt.ingest_epochs(), epochs_before + 2);
        rt.stats_relaxed(); // must NOT drain
        assert_eq!(rt.ingest_epochs(), epochs_before + 2);
    }

    /// The sublinear engine's correctness contract: for every policy
    /// kind, the incrementally indexed engine produces exactly the same
    /// observable behavior — tick outcomes, cancellations, stats — as the
    /// naive rebuild-the-world oracle on the same scripted workload.
    #[test]
    fn indexed_engine_matches_naive_engine() {
        use crate::config::{PolicyEngine, PolicyKind};
        for kind in [
            PolicyKind::MultiObjective,
            PolicyKind::Heuristic,
            PolicyKind::CurrentUsage,
        ] {
            let naive = drive_scripted(AtroposConfig {
                policy: kind,
                policy_engine: PolicyEngine::Naive,
                ..AtroposConfig::default()
            });
            let indexed = drive_scripted(AtroposConfig {
                policy: kind,
                policy_engine: PolicyEngine::Indexed,
                ..AtroposConfig::default()
            });
            assert_eq!(naive.0, indexed.0, "tick outcomes diverged for {kind:?}");
            assert_eq!(naive.1, indexed.1, "stats diverged for {kind:?}");
            assert!(naive.1.candidates > 0, "workload raised no candidate");
        }
    }

    #[test]
    fn ingest_pending_drains_on_stats() {
        let (_c, rt) = setup(10);
        assert_eq!(rt.ingest_mode(), IngestMode::LockFree);
        let pool = rt.register_resource("pool", ResourceType::Memory);
        let t = rt.create_cancel(None);
        rt.get_resource(t, pool, 1);
        rt.get_resource(t, pool, 2);
        assert_eq!(rt.ingest_pending(), 2);
        let s = rt.stats();
        assert_eq!(s.trace_events, 2);
        assert_eq!(rt.ingest_pending(), 0);
    }

    #[test]
    fn cancel_key_invokes_initiator_with_safeguards() {
        let (_c, rt) = setup(10);
        let canceled = Arc::new(AtomicU64::new(0));
        let c2 = canceled.clone();
        rt.set_cancel_action(move |key| {
            c2.store(key.0, Ordering::SeqCst);
        });
        let t = rt.create_cancel(Some(7));
        assert_eq!(rt.cancel_key(TaskKey(7)), CancelDecision::Issued);
        assert_eq!(canceled.load(Ordering::SeqCst), 7);
        // Fairness still applies: a key is canceled at most once.
        assert_eq!(rt.cancel_key(TaskKey(7)), CancelDecision::AlreadyCanceled);
        // The task record observed the request.
        assert_eq!(rt.inner.lock().tasks[&t].state, TaskState::CancelRequested);
        // An unknown key still flows to the initiator (the task may live
        // on another node or have just finished); fairness records it.
        assert_eq!(rt.cancel_key(TaskKey(8)), CancelDecision::Issued);
    }

    #[test]
    fn stats_relaxed_does_not_drain() {
        let (_c, rt) = setup(10);
        let pool = rt.register_resource("pool", ResourceType::Memory);
        let t = rt.create_cancel(None);
        rt.get_resource(t, pool, 1);
        assert_eq!(rt.ingest_pending(), 1);
        let s = rt.stats_relaxed();
        assert_eq!(s.trace_events, 0, "relaxed snapshot must not replay");
        assert_eq!(rt.ingest_pending(), 1, "buffered event must survive");
        assert_eq!(rt.stats().trace_events, 1);
    }

    #[test]
    fn forced_timestamp_mode_sticks_until_tick() {
        let (_c, rt) = setup(10);
        rt.set_timestamp_mode(TimestampMode::Precise);
        assert_eq!(rt.timestamp_mode(), TimestampMode::Precise);
        rt.tick(); // a calm tick returns the detector-driven mode
        assert_eq!(rt.timestamp_mode(), TimestampMode::Sampled);
    }
}
