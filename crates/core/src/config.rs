//! Runtime configuration.

use serde::{Deserialize, Serialize};

/// Which cancellation policy the runtime uses (§3.5 and the §5.4 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Algorithm 1: non-dominated set + contention-weighted scalarization
    /// over future-scaled resource gains. The paper's default.
    MultiObjective,
    /// Ablation baseline 1 (§5.4): cancel the task with the highest gain on
    /// the single most contended resource.
    Heuristic,
    /// Ablation baseline 2 (§5.4): multi-objective, but gains use *current*
    /// resource usage instead of predicted future usage.
    CurrentUsage,
}

/// How the tick path evaluates the cancellation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyEngine {
    /// Incremental indexed engine: per-task objective terms are cached in
    /// a [`PolicyIndex`](crate::policy::PolicyIndex) updated from ingest
    /// deltas, candidates are pruned through per-resource postings lists,
    /// and the non-dominated filter runs as a sort-based skyline.
    /// Decisions are bit-identical to [`PolicyEngine::Naive`] (enforced by
    /// the differential suites); per-tick cost scales with busy tasks
    /// rather than the registered population.
    Indexed,
    /// Reference engine: rebuild the full
    /// [`EstimatorSnapshot`](crate::estimator::EstimatorSnapshot) from
    /// every task and run the literal Algorithm-1 transcription (all-pairs
    /// non-dominated filter). O(n·R + n²) per decision; kept as the
    /// differential-testing oracle.
    Naive,
}

/// How tracing calls reach the per-task accounting state (§3.2 hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestMode {
    /// Every tracing call takes the runtime's global lock and updates the
    /// accounting state inline. Simple; the baseline the sharded path is
    /// benchmarked and equivalence-tested against.
    Direct,
    /// Tracing calls append a compact record to one of
    /// [`AtroposConfig::ingest_stripes`] bounded, stripe-locked buffers;
    /// the records are replayed into the accounting state at the next
    /// drain point (`tick`, `stats`, `free_cancel`, `register_resource`),
    /// stripe by stripe, preserving per-task emit order. Under the
    /// single-threaded virtual clock this is bit-identical to `Direct`;
    /// under concurrent producers it removes the global lock from the
    /// request path. Kept as the oracle the lock-free path is
    /// differential-tested against.
    Sharded,
    /// The production default: the same task-sharded buffering contract
    /// as `Sharded`, but each shard is a bounded lock-free ring
    /// ([`LockFreeIngest`](crate::lockfree::LockFreeIngest)) — producers
    /// claim a slot with one CAS and publish with a release store, no
    /// lock, no allocation — and the drain is epoch-based: the tick-time
    /// drainer snapshots every queue's claim cursor and harvests exactly
    /// the records claimed before the boundary, so a drain is bounded
    /// work even under live producers. Single-threaded replay is
    /// bit-identical to both `Sharded` and `Direct` (same stamps, same
    /// per-task order, same overflow accounting); see DESIGN.md §16 for
    /// the memory-ordering argument.
    LockFree,
}

/// Overload-detector parameters (§3.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Width of a detection window in nanoseconds.
    pub window_ns: u64,
    /// How many closed windows of history the detector examines.
    pub history: usize,
    /// End-to-end latency SLO in nanoseconds (the quantile below must stay
    /// under this bound).
    pub slo_latency_ns: u64,
    /// Which latency quantile the SLO applies to (the paper uses p99).
    pub latency_quantile: f64,
    /// Throughput is considered "flat" if its relative window-over-window
    /// change is below this threshold while latency violates the SLO.
    pub throughput_flat_epsilon: f64,
    /// Minimum per-resource raw contention level for the estimator to
    /// confirm a *resource* overload (vs. regular overload).
    pub min_contention: f64,
    /// A candidate is also raised when the latest window's completions
    /// fall this fraction below the recent-history mean while work is in
    /// flight (a partial convoy's victims complete only after release, so
    /// the latency signal alone is too slow).
    pub throughput_drop_frac: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            window_ns: 10_000_000, // 10 ms — decisions at fine granularity (§3.4)
            history: 16,
            slo_latency_ns: 50_000_000, // 50 ms; experiments override this
            latency_quantile: 99.0,
            throughput_flat_epsilon: 0.05,
            min_contention: 0.35,
            throughput_drop_frac: 0.25,
        }
    }
}

/// Top-level Atropos configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AtroposConfig {
    /// Detector parameters.
    pub detector: DetectorConfig,
    /// Cancellation policy.
    pub policy: PolicyKind,
    /// How the tick path evaluates that policy (see [`PolicyEngine`]).
    pub policy_engine: PolicyEngine,
    /// Minimum interval between consecutive cancellations (ns). The paper
    /// (§5.3) enforces "a small time interval between consecutive
    /// cancellations" to avoid excessive termination; this is the
    /// aggressiveness/recovery trade-off behind the two missed-SLO cases.
    pub cancel_min_interval_ns: u64,
    /// Interval of timestamp sampling under normal load (§3.2). Events
    /// within one interval share a timestamp; under overload the runtime
    /// switches to precise per-event timestamps.
    pub sample_interval_ns: u64,
    /// How tracing calls reach the accounting state (see [`IngestMode`]).
    pub ingest_mode: IngestMode,
    /// Number of ingest buffer stripes in the buffered modes
    /// ([`IngestMode::Sharded`] locked buffers, [`IngestMode::LockFree`]
    /// rings; rounded up to a power of two). More stripes reduce
    /// producer contention; the drain replays them all.
    pub ingest_stripes: usize,
    /// Per-stripe record capacity in the buffered modes. A full stripe
    /// triggers a mid-window flush, or sheds a record if the runtime
    /// state is busy (`Sharded` sheds the stripe's oldest record,
    /// `LockFree` the incoming one; both are counted identically).
    pub ingest_stripe_capacity: usize,
    /// Number of consecutive overload-free windows after which canceled
    /// tasks are re-executed ("sustained resource availability", §4).
    pub reexec_quiet_windows: u32,
    /// Deadline after cancellation by which a task must be re-executed or
    /// it is dropped for missing its SLO (ns).
    pub reexec_deadline_ns: u64,
    /// Maximum wait for canceled *background* tasks, after which
    /// re-execution is forced regardless of load (ns).
    pub background_max_wait_ns: u64,
    /// Enables the coarse, potentially unsafe thread-level cancellation
    /// path (§3.6, the `pthread_cancel` analog). Off by default; only
    /// tasks explicitly marked as safe for it are affected.
    pub allow_thread_level_cancel: bool,
    /// Floor applied to task progress when scaling gains by
    /// `(1 - p) / p`, bounding the future-usage multiplier.
    pub progress_floor: f64,
    /// Progress assumed for tasks that never report progress.
    pub default_progress: f64,
}

impl Default for AtroposConfig {
    fn default() -> Self {
        Self {
            detector: DetectorConfig::default(),
            policy: PolicyKind::MultiObjective,
            policy_engine: PolicyEngine::Indexed,
            cancel_min_interval_ns: 50_000_000, // 50 ms
            sample_interval_ns: 1_000_000,      // 1 ms
            ingest_mode: IngestMode::LockFree,
            ingest_stripes: 8,
            ingest_stripe_capacity: 4096,
            reexec_quiet_windows: 100, // 1 s of sustained availability
            reexec_deadline_ns: 800_000_000, // 0.8 s, then the task is dropped
            background_max_wait_ns: 10_000_000_000, // 10 s
            allow_thread_level_cancel: false,
            progress_floor: 0.02,
            default_progress: 0.5,
        }
    }
}

impl AtroposConfig {
    /// Sets the latency SLO, the signal every experiment varies (Fig. 12).
    pub fn with_slo_ns(mut self, slo_ns: u64) -> Self {
        self.detector.slo_latency_ns = slo_ns;
        self
    }

    /// Sets the cancellation policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the policy evaluation engine.
    pub fn with_policy_engine(mut self, engine: PolicyEngine) -> Self {
        self.policy_engine = engine;
        self
    }

    /// Validates internal consistency.
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.detector.window_ns == 0 {
            return Err("detector.window_ns must be positive".into());
        }
        if self.detector.history < 2 {
            return Err("detector.history must be at least 2".into());
        }
        if !(0.0..=100.0).contains(&self.detector.latency_quantile) {
            return Err("detector.latency_quantile must be in [0, 100]".into());
        }
        if !(1..=1024).contains(&self.ingest_stripes) {
            return Err("ingest_stripes must be in 1..=1024".into());
        }
        if self.ingest_stripe_capacity < 8 {
            return Err("ingest_stripe_capacity must be at least 8".into());
        }
        if self.progress_floor <= 0.0 || self.progress_floor >= 1.0 {
            return Err("progress_floor must be in (0, 1)".into());
        }
        if self.default_progress <= 0.0 || self.default_progress > 1.0 {
            return Err("default_progress must be in (0, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(AtroposConfig::default().validate().is_ok());
    }

    #[test]
    fn builders_apply() {
        let c = AtroposConfig::default()
            .with_slo_ns(123)
            .with_policy(PolicyKind::Heuristic)
            .with_policy_engine(PolicyEngine::Naive);
        assert_eq!(c.detector.slo_latency_ns, 123);
        assert_eq!(c.policy, PolicyKind::Heuristic);
        assert_eq!(c.policy_engine, PolicyEngine::Naive);
        // The indexed engine is the production default.
        assert_eq!(
            AtroposConfig::default().policy_engine,
            PolicyEngine::Indexed
        );
        // So is the lock-free emit path.
        assert_eq!(AtroposConfig::default().ingest_mode, IngestMode::LockFree);
    }

    #[test]
    fn validate_rejects_zero_window() {
        let mut c = AtroposConfig::default();
        c.detector.window_ns = 0;
        assert!(c.validate().unwrap_err().contains("window_ns"));
    }

    #[test]
    fn validate_rejects_short_history() {
        let mut c = AtroposConfig::default();
        c.detector.history = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_ingest_shape() {
        let c = AtroposConfig {
            ingest_stripes: 0,
            ..Default::default()
        };
        assert!(c.validate().unwrap_err().contains("ingest_stripes"));
        let c = AtroposConfig {
            ingest_stripes: 4096,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = AtroposConfig {
            ingest_stripe_capacity: 4,
            ..Default::default()
        };
        assert!(c.validate().unwrap_err().contains("stripe_capacity"));
    }

    #[test]
    fn validate_rejects_bad_quantile_and_progress() {
        let mut c = AtroposConfig::default();
        c.detector.latency_quantile = 150.0;
        assert!(c.validate().is_err());
        let c = AtroposConfig {
            progress_floor: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = AtroposConfig {
            default_progress: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
