//! Per-task, per-resource usage accounting (§3.2).
//!
//! The runtime manager attributes every traced event to a `(task,
//! resource)` pair. Estimation happens per detection window, so each stat
//! keeps both cumulative totals (for end-of-run reporting) and window-local
//! accumulators that are closed at every [`UsageStats::roll_window`] call.
//! Open wait/hold intervals are *renewed* at window boundaries: the elapsed
//! part is charged to the closing window and the interval restarts, which
//! keeps window accounting exact without retroactive clipping.
//!
//! Event semantics per resource type (one uniform protocol, §3.2):
//!
//! | type   | `slow_by`                | `get`              | `free`       |
//! |--------|--------------------------|--------------------|--------------|
//! | Lock   | began waiting            | acquired (wait ends, hold starts) | released |
//! | Queue  | entered queue            | dequeued, runs     | finished     |
//! | Memory | caused `amount` evictions (stall starts) | acquired `amount` pages (stall ends) | released pages |
//! | System | began waiting (CPU/IO)   | got the device     | yielded it   |

use serde::{Deserialize, Serialize};

/// Usage counters for one `(task, resource)` pair.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UsageStats {
    /// Cumulative units acquired (pages, lock acquisitions, queue slots).
    pub acquired: u64,
    /// Cumulative units freed.
    pub freed: u64,
    /// Cumulative `slow_by` events.
    pub slow_events: u64,
    /// Cumulative `slow_by` amount (e.g. pages evicted).
    pub slow_amount: u64,
    /// Cumulative closed waiting time (ns).
    pub total_wait_ns: u64,
    /// Cumulative closed holding/usage time (ns).
    pub total_hold_ns: u64,
    /// Units currently held.
    pub held: u64,
    /// Open wait interval start, if the task is currently waiting.
    wait_since: Option<u64>,
    /// Open hold interval start, if the task currently holds units.
    hold_since: Option<u64>,
    // Window-local accumulators, reset by `roll_window`.
    w_acquired: u64,
    w_freed: u64,
    w_slow_events: u64,
    w_slow_amount: u64,
    w_wait_ns: u64,
    w_hold_ns: u64,
    /// The most recently closed window, read by the estimator.
    last_window: WindowUsage,
}

/// Closed-window usage figures for one `(task, resource)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowUsage {
    /// Units acquired in the window.
    pub acquired: u64,
    /// Units freed in the window.
    pub freed: u64,
    /// `slow_by` events in the window.
    pub slow_events: u64,
    /// `slow_by` amount in the window.
    pub slow_amount: u64,
    /// Waiting time accrued in the window (ns).
    pub wait_ns: u64,
    /// Holding/usage time accrued in the window (ns).
    pub hold_ns: u64,
    /// Units held at the end of the window.
    pub held_at_end: u64,
}

impl UsageStats {
    /// Records a `get_resource` event.
    pub fn on_get(&mut self, now: u64, amount: u64) {
        if let Some(since) = self.wait_since.take() {
            let d = now.saturating_sub(since);
            self.total_wait_ns += d;
            self.w_wait_ns += d;
        }
        self.acquired += amount;
        self.w_acquired += amount;
        if self.held == 0 && amount > 0 {
            self.hold_since = Some(now);
        }
        self.held += amount;
    }

    /// Records a `free_resource` event.
    pub fn on_free(&mut self, now: u64, amount: u64) {
        self.freed += amount;
        self.w_freed += amount;
        self.held = self.held.saturating_sub(amount);
        if self.held == 0 {
            if let Some(since) = self.hold_since.take() {
                let d = now.saturating_sub(since);
                self.total_hold_ns += d;
                self.w_hold_ns += d;
            }
        }
    }

    /// Records a `slow_by_resource` event.
    pub fn on_slow(&mut self, now: u64, amount: u64) {
        self.slow_events += 1;
        self.w_slow_events += 1;
        self.slow_amount += amount;
        self.w_slow_amount += amount;
        if self.wait_since.is_none() {
            self.wait_since = Some(now);
        }
    }

    /// Closes the current window at time `now`: open intervals are charged
    /// up to `now` and renewed, window accumulators are published to
    /// [`UsageStats::window`] and reset.
    pub fn roll_window(&mut self, now: u64) {
        if let Some(since) = self.wait_since {
            let d = now.saturating_sub(since);
            self.total_wait_ns += d;
            self.w_wait_ns += d;
            self.wait_since = Some(now);
        }
        if let Some(since) = self.hold_since {
            let d = now.saturating_sub(since);
            self.total_hold_ns += d;
            self.w_hold_ns += d;
            self.hold_since = Some(now);
        }
        self.last_window = WindowUsage {
            acquired: self.w_acquired,
            freed: self.w_freed,
            slow_events: self.w_slow_events,
            slow_amount: self.w_slow_amount,
            wait_ns: self.w_wait_ns,
            hold_ns: self.w_hold_ns,
            held_at_end: self.held,
        };
        self.w_acquired = 0;
        self.w_freed = 0;
        self.w_slow_events = 0;
        self.w_slow_amount = 0;
        self.w_wait_ns = 0;
        self.w_hold_ns = 0;
    }

    /// The most recently closed window.
    pub fn window(&self) -> WindowUsage {
        self.last_window
    }

    /// True if rolling another window would be a no-op: no open wait or
    /// hold interval, nothing held, nothing accumulated this window, and
    /// the published window already all-zero. Used by
    /// [`TaskRecord::roll_window`](crate::task::TaskRecord::roll_window)
    /// to skip idle tasks entirely.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.wait_since.is_none()
            && self.hold_since.is_none()
            && self.held == 0
            && self.last_window == WindowUsage::default()
            && self.w_acquired == 0
            && self.w_freed == 0
            && self.w_slow_events == 0
            && self.w_slow_amount == 0
            && self.w_wait_ns == 0
            && self.w_hold_ns == 0
    }

    /// True if the task is currently waiting on this resource.
    pub fn is_waiting(&self) -> bool {
        self.wait_since.is_some()
    }

    /// Total wait including any open interval up to `now`.
    pub fn wait_ns_upto(&self, now: u64) -> u64 {
        self.total_wait_ns + self.wait_since.map_or(0, |s| now.saturating_sub(s))
    }

    /// Total hold including any open interval up to `now`.
    pub fn hold_ns_upto(&self, now: u64) -> u64 {
        self.total_hold_ns + self.hold_since.map_or(0, |s| now.saturating_sub(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_free_tracks_held_units() {
        let mut s = UsageStats::default();
        s.on_get(10, 5);
        s.on_get(20, 3);
        assert_eq!(s.held, 8);
        s.on_free(30, 6);
        assert_eq!(s.held, 2);
        s.on_free(40, 2);
        assert_eq!(s.held, 0);
        assert_eq!(s.acquired, 8);
        assert_eq!(s.freed, 8);
    }

    #[test]
    fn over_free_saturates() {
        let mut s = UsageStats::default();
        s.on_get(0, 1);
        s.on_free(5, 10);
        assert_eq!(s.held, 0);
    }

    #[test]
    fn wait_interval_closes_on_get() {
        let mut s = UsageStats::default();
        s.on_slow(100, 1);
        assert!(s.is_waiting());
        s.on_get(350, 1);
        assert!(!s.is_waiting());
        assert_eq!(s.total_wait_ns, 250);
    }

    #[test]
    fn nested_slow_events_do_not_restart_wait() {
        let mut s = UsageStats::default();
        s.on_slow(100, 1);
        s.on_slow(200, 1);
        s.on_get(300, 1);
        assert_eq!(s.total_wait_ns, 200);
        assert_eq!(s.slow_events, 2);
        assert_eq!(s.slow_amount, 2);
    }

    #[test]
    fn hold_interval_spans_first_get_to_last_free() {
        let mut s = UsageStats::default();
        s.on_get(100, 2);
        s.on_get(200, 1);
        s.on_free(300, 1);
        assert_eq!(s.total_hold_ns, 0); // still holding 2
        s.on_free(500, 2);
        assert_eq!(s.total_hold_ns, 400);
    }

    #[test]
    fn zero_amount_get_does_not_open_hold() {
        let mut s = UsageStats::default();
        s.on_get(100, 0);
        assert_eq!(s.held, 0);
        s.on_free(200, 0);
        assert_eq!(s.total_hold_ns, 0);
    }

    #[test]
    fn roll_window_publishes_and_resets() {
        let mut s = UsageStats::default();
        s.on_get(10, 4);
        s.on_slow(20, 2);
        s.on_get(50, 1);
        s.roll_window(100);
        let w = s.window();
        assert_eq!(w.acquired, 5);
        assert_eq!(w.slow_events, 1);
        assert_eq!(w.slow_amount, 2);
        assert_eq!(w.wait_ns, 30);
        assert_eq!(w.held_at_end, 5);
        // Second window is empty except the still-open hold.
        s.roll_window(200);
        let w2 = s.window();
        assert_eq!(w2.acquired, 0);
        assert_eq!(w2.hold_ns, 100); // renewed hold interval
        assert_eq!(w2.held_at_end, 5);
    }

    #[test]
    fn open_wait_is_renewed_across_windows() {
        let mut s = UsageStats::default();
        s.on_slow(50, 1);
        s.roll_window(100);
        assert_eq!(s.window().wait_ns, 50);
        s.roll_window(250);
        assert_eq!(s.window().wait_ns, 150);
        s.on_get(300, 1);
        s.roll_window(400);
        // Wait 250→300 charged to this window, then hold 300→400.
        assert_eq!(s.window().wait_ns, 50);
        assert_eq!(s.window().hold_ns, 100);
        // Cumulative wait is the full 50→300 interval.
        assert_eq!(s.total_wait_ns, 250);
    }

    #[test]
    fn window_sums_match_cumulative_totals() {
        let mut s = UsageStats::default();
        let mut win_wait = 0;
        let mut win_hold = 0;
        s.on_slow(10, 1);
        s.roll_window(100);
        win_wait += s.window().wait_ns;
        win_hold += s.window().hold_ns;
        s.on_get(150, 1);
        s.roll_window(200);
        win_wait += s.window().wait_ns;
        win_hold += s.window().hold_ns;
        s.on_free(260, 1);
        s.roll_window(300);
        win_wait += s.window().wait_ns;
        win_hold += s.window().hold_ns;
        assert_eq!(win_wait, s.total_wait_ns);
        assert_eq!(win_hold, s.total_hold_ns);
        assert_eq!(s.total_wait_ns, 140);
        assert_eq!(s.total_hold_ns, 110);
    }

    #[test]
    fn upto_helpers_include_open_intervals() {
        let mut s = UsageStats::default();
        s.on_slow(100, 1);
        assert_eq!(s.wait_ns_upto(400), 300);
        s.on_get(400, 1);
        assert_eq!(s.wait_ns_upto(500), 300);
        assert_eq!(s.hold_ns_upto(700), 300);
    }

    #[test]
    fn quiescence_requires_closed_intervals_and_zero_windows() {
        let mut s = UsageStats::default();
        assert!(s.is_quiescent());
        s.on_get(10, 1);
        assert!(!s.is_quiescent()); // holding
        s.on_free(20, 1);
        assert!(!s.is_quiescent()); // window accumulators non-zero
        s.roll_window(100);
        assert!(!s.is_quiescent()); // published window non-zero
        s.roll_window(200);
        assert!(s.is_quiescent()); // second roll publishes all-zero
        s.on_slow(210, 1);
        assert!(!s.is_quiescent()); // open wait interval
    }

    #[test]
    fn time_going_backwards_saturates() {
        // A sampled timestamp can lag the true clock; intervals must not
        // underflow.
        let mut s = UsageStats::default();
        s.on_slow(1000, 1);
        s.on_get(900, 1); // stamped earlier than the wait start
        assert_eq!(s.total_wait_ns, 0);
    }
}
