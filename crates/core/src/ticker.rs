//! A background supervisor thread driving [`AtroposRuntime::tick`].
//!
//! In the simulator the experiment harness calls `tick()` itself at
//! window boundaries of virtual time. In a *real* process (the paper's
//! MySQL/Apache integrations, this repo's `atropos-live` harness) nothing
//! owns the clock: the runtime must be ticked from a dedicated thread at a
//! wall-clock cadence while application threads concurrently emit tracing
//! events. [`Ticker`] packages that supervisor-thread pattern — spawn,
//! tick at a period, observe outcomes, stop and join — so every live
//! integration does not reimplement it (and so the shutdown ordering,
//! which is easy to get wrong, lives in one tested place).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::runtime::{AtroposRuntime, TickOutcome};

/// Counters the ticker thread accumulates across ticks. All fields are
/// readable while the ticker runs.
#[derive(Debug, Default)]
struct TickerCounters {
    ticks: AtomicU64,
    resource_overloads: AtomicU64,
    regular_overloads: AtomicU64,
    cancels_issued: AtomicU64,
}

/// Handle to a running supervisor thread. Dropping the handle stops the
/// thread and joins it.
pub struct Ticker {
    stop: Arc<AtomicBool>,
    counters: Arc<TickerCounters>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Ticker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticker")
            .field("ticks", &self.ticks())
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl Ticker {
    /// Spawns a thread that calls `rt.tick()` every `period` until
    /// [`Ticker::stop`] (or drop). The first tick fires after one period.
    ///
    /// `on_outcome` is invoked on the supervisor thread after every tick;
    /// pass `|_| {}` when only the counters are needed.
    pub fn spawn(
        rt: Arc<AtroposRuntime>,
        period: Duration,
        on_outcome: impl Fn(&TickOutcome) + Send + 'static,
    ) -> Self {
        Self::spawn_fn(move || rt.tick(), period, on_outcome)
    }

    /// Like [`Ticker::spawn`], but drives an arbitrary tick closure
    /// instead of a concrete runtime handle. This is how a harness ticks
    /// *through* a middleware stack (an `Arc<dyn RuntimePort>` in the
    /// substrate crate's vocabulary): middleware that buffers or delays
    /// events only sees the periodic driver if the supervisor calls its
    /// `tick`, not the inner runtime's.
    pub fn spawn_fn(
        tick: impl Fn() -> TickOutcome + Send + 'static,
        period: Duration,
        on_outcome: impl Fn(&TickOutcome) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(TickerCounters::default());
        let thread_stop = stop.clone();
        let thread_counters = counters.clone();
        let handle = std::thread::Builder::new()
            .name("atropos-ticker".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Acquire) {
                    std::thread::sleep(period);
                    let outcome = tick();
                    thread_counters.ticks.fetch_add(1, Ordering::Relaxed);
                    match &outcome {
                        TickOutcome::Idle => {}
                        TickOutcome::RegularOverload => {
                            thread_counters
                                .regular_overloads
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        TickOutcome::ResourceOverload { canceled, .. } => {
                            thread_counters
                                .resource_overloads
                                .fetch_add(1, Ordering::Relaxed);
                            if canceled.is_some() {
                                thread_counters
                                    .cancels_issued
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    on_outcome(&outcome);
                }
            })
            .expect("spawn atropos-ticker thread");
        Self {
            stop,
            counters,
            handle: Some(handle),
        }
    }

    /// Ticks completed so far.
    pub fn ticks(&self) -> u64 {
        self.counters.ticks.load(Ordering::Relaxed)
    }

    /// Ticks that confirmed a resource overload.
    pub fn resource_overloads(&self) -> u64 {
        self.counters.resource_overloads.load(Ordering::Relaxed)
    }

    /// Ticks classified as regular (demand) overload.
    pub fn regular_overloads(&self) -> u64 {
        self.counters.regular_overloads.load(Ordering::Relaxed)
    }

    /// Ticks whose resource-overload outcome issued a cancellation.
    pub fn cancels_issued(&self) -> u64 {
        self.counters.cancels_issued.load(Ordering::Relaxed)
    }

    /// Signals the thread to stop and joins it. Idempotent; also invoked
    /// on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Ticker {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtroposConfig;
    use atropos_sim::SystemClock;

    fn runtime() -> Arc<AtroposRuntime> {
        Arc::new(AtroposRuntime::new(
            AtroposConfig::default(),
            Arc::new(SystemClock::new()),
        ))
    }

    #[test]
    fn ticker_ticks_and_stops() {
        let rt = runtime();
        let mut ticker = Ticker::spawn(rt.clone(), Duration::from_millis(1), |_| {});
        while ticker.ticks() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        ticker.stop();
        let after = rt.stats().ticks;
        assert!(after >= 3);
        std::thread::sleep(Duration::from_millis(10));
        // No further ticks after stop.
        assert_eq!(rt.stats().ticks, after);
        ticker.stop(); // idempotent
    }

    /// Regression: `stop()` must *join* the supervisor thread, not merely
    /// signal it. If stop returned before the join, the runtime could be
    /// dropped while a final `tick()` still runs on the supervisor — the
    /// Arc keeps that from being a use-after-free, but a tick would be
    /// observable after `stop()` returned, which live harnesses rely on
    /// never happening (they read final counters right after stopping).
    #[test]
    fn stop_joins_thread_before_runtime_drop() {
        let rt = runtime();
        let mut ticker = Ticker::spawn(rt.clone(), Duration::from_millis(1), |_| {});
        while ticker.ticks() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        ticker.stop();
        // The supervisor thread held the only other clone of the runtime
        // handle; a joined stop() means that clone is gone, so dropping
        // `rt` here cannot race a concurrent tick.
        assert_eq!(
            Arc::strong_count(&rt),
            1,
            "ticker thread still holds the runtime after stop()"
        );
        let after = rt.stats().ticks;
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rt.stats().ticks, after, "tick observed after stop()");
        // Ticker outlives the runtime handle without re-spawning anything.
        drop(rt);
        drop(ticker);
    }

    #[test]
    fn ticker_invokes_outcome_callback() {
        let rt = runtime();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let ticker = Ticker::spawn(rt, Duration::from_millis(1), move |_| {
            seen2.fetch_add(1, Ordering::Relaxed);
        });
        while ticker.ticks() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(ticker); // drop stops and joins
        assert!(seen.load(Ordering::Relaxed) >= 2);
    }
}
