#![warn(missing_docs)]

//! # Atropos: targeted task cancellation for application resource overload
//!
//! This crate is a from-scratch Rust implementation of **Atropos** (Hu et
//! al., *Mitigating Application Resource Overload with Targeted Task
//! Cancellation*, SOSP 2025): an overload-control framework that, when an
//! application resource (a buffer pool, a table lock, a worker queue)
//! becomes overloaded, identifies the *culprit* request monopolizing it and
//! cancels that request through the application's own safe cancellation
//! initiator — instead of dropping the many *victim* requests blocked
//! behind it.
//!
//! ## Architecture (paper §3, Figure 5)
//!
//! ```text
//!   application ──createCancel/freeCancel──▶ [task registry]
//!   application ──get/free/slowByResource──▶ [runtime manager] per-task usage
//!   application ──unit_started/finished────▶ [overload detector] SLO signal
//!                                              │ candidate overload
//!                                              ▼
//!                                           [estimator]  contention level C_r,
//!                                              │          resource gain G(t,r)
//!                                              ▼
//!                                           [policy]     non-dominated set +
//!                                              │          scalarization (Alg. 1)
//!                                              ▼
//!                                           [cancel mgr] initiator callback,
//!                                                        re-execution, fairness
//! ```
//!
//! The public API mirrors Figure 6 of the paper in idiomatic Rust:
//!
//! - [`AtroposRuntime::create_cancel`] / [`AtroposRuntime::free_cancel`]
//!   mark the scope of a cancellable task,
//! - [`AtroposRuntime::set_cancel_action`] registers the application's
//!   cancellation initiator (the analog of MySQL's `sql_kill`),
//! - [`AtroposRuntime::get_resource`], [`AtroposRuntime::free_resource`]
//!   and [`AtroposRuntime::slow_by_resource`] trace per-task application
//!   resource usage,
//! - [`AtroposRuntime::tick`] drives detection → estimation → policy →
//!   cancellation.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use atropos::{AtroposConfig, AtroposRuntime, ResourceType};
//! use atropos_sim::VirtualClock;
//!
//! let clock = Arc::new(VirtualClock::new());
//! let rt = AtroposRuntime::new(AtroposConfig::default(), clock.clone());
//! let pool = rt.register_resource("buffer_pool", ResourceType::Memory);
//!
//! // Integration: the cancel initiator the framework will invoke.
//! rt.set_cancel_action(|key| println!("cancel task with key {key:?}"));
//!
//! let task = rt.create_cancel(None);
//! rt.unit_started(task);
//! rt.get_resource(task, pool, 128);   // task acquired 128 pages
//! rt.slow_by_resource(task, pool, 16); // and caused 16 evictions
//! rt.unit_finished(task);
//! rt.free_cancel(task);
//! ```

pub mod accounting;
pub mod cancel;
pub mod config;
pub mod debug;
pub mod detect;
pub mod estimator;
pub mod guide;
pub mod ids;
pub mod lockfree;
pub mod policy;
pub mod progress;
pub mod record;
pub mod resource;
pub mod runtime;
pub mod task;
pub mod ticker;
pub mod trace;

pub use cancel::CancelDecision;
pub use config::{AtroposConfig, DetectorConfig, IngestMode, PolicyEngine, PolicyKind};
pub use debug::DebugSnapshot;
pub use detect::OverloadClass;
pub use estimator::{EstimatorSnapshot, ResourceSnapshot, TaskGainSnapshot};
pub use ids::{ResourceId, ResourceType, TaskId, TaskKey};
pub use record::{
    BackoffReason, CancelOrigin, DecisionEvent, GainTerm, Recorder, RecorderHandle, MAX_GAIN_TERMS,
};
pub use runtime::{AtroposRuntime, RuntimeStats, TickOutcome};
pub use task::{RemoteBlame, RemoteOrigin};
pub use ticker::Ticker;
pub use trace::TimestampMode;
