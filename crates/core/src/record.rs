//! Decision-trace recording: the event vocabulary and the zero-cost hook.
//!
//! Every consequential step of the tick pipeline — overload detected,
//! resources scored, candidates ranked, blame assigned, cancellation
//! issued/suppressed/completed — can be emitted as a [`DecisionEvent`]
//! to an attached [`Recorder`]. The runtime carries an
//! `Option<Arc<dyn Recorder>>`; with none attached the emission sites
//! collapse to a branch on `None` and never construct an event, so the
//! hot tracing path ([`crate::AtroposRuntime::get_resource`] and
//! friends) is untouched and the tick path pays one pointer check.
//!
//! Events are `Copy` and fixed-size by design: recording must never
//! allocate on the tick path. Variable-size detail (resource *names*,
//! unbounded candidate lists) is resolved later by the consumer — see
//! the `atropos-obs` crate, which buffers events in a bounded ring and
//! folds them into human-readable episodes after the fact.

use crate::ids::{ResourceId, ResourceType, TaskId, TaskKey};

/// Maximum per-resource score terms carried inline by
/// [`DecisionEvent::BlameAssigned`]. Cases with more registered
/// resources than this keep the highest-weighted terms.
pub const MAX_GAIN_TERMS: usize = 8;

/// One term of a blame score: `weight × gain` for one resource
/// (Algorithm 1's contention-weighted scalarization, §3.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainTerm {
    /// The resource this term is about.
    pub resource: ResourceId,
    /// The resource's contention-level weight `C_r`.
    pub weight: f64,
    /// The task's estimated gain on this resource.
    pub gain: f64,
}

impl GainTerm {
    /// This term's contribution to the scalarized score.
    pub fn contribution(&self) -> f64 {
        self.weight * self.gain
    }
}

/// Why a cancellation request was suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffReason {
    /// Too soon after the previous cancellation (§5.3 rate limit).
    RateLimited,
    /// The key was already canceled once (cancel-once fairness, §4).
    AlreadyCanceled,
    /// No cancellation initiator is registered.
    NoInitiator,
}

impl BackoffReason {
    /// Stable lowercase label for logs and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            BackoffReason::RateLimited => "rate_limited",
            BackoffReason::AlreadyCanceled => "already_canceled",
            BackoffReason::NoInitiator => "no_initiator",
        }
    }
}

/// Where a cancellation request originated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOrigin {
    /// The tick pipeline (detector → estimator → policy).
    Policy,
    /// The operator entry point ([`crate::AtroposRuntime::cancel_key`]).
    Operator,
}

/// One structured decision-trace event. All variants carry the tick
/// index they were emitted under, so a consumer can group a tick's
/// events into one decision episode without any framing events.
// `BlameAssigned` carries its gain terms inline (~200 bytes) on purpose:
// events must stay `Copy` and allocation-free so recording them never
// touches the allocator on the control path. A few events per tick make
// the size difference irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionEvent {
    /// The detector flagged a candidate overload this tick.
    OverloadDetected {
        /// Tick index (1-based, equals `RuntimeStats::ticks`).
        tick: u64,
        /// Observed latency at the configured quantile (`u64::MAX` for a
        /// stall with zero completions).
        latency_ns: u64,
        /// Observed throughput in the latest closed window (qps).
        throughput_qps: f64,
    },
    /// The estimator scored one bottlenecked resource.
    ResourceScored {
        /// Tick index.
        tick: u64,
        /// The resource.
        resource: ResourceId,
        /// Its type.
        rtype: ResourceType,
        /// Raw contention level.
        contention: f64,
        /// Normalized scalarization weight `C_r`.
        weight: f64,
        /// Waiting time attributed to the resource this window (ns).
        wait_ns: u64,
        /// Holding time attributed to the resource this window (ns).
        hold_ns: u64,
    },
    /// One non-dominated cancellation candidate and its scalarized score.
    CandidateRanked {
        /// Tick index.
        tick: u64,
        /// The candidate task.
        task: TaskId,
        /// Its application key.
        key: TaskKey,
        /// Its contention-weighted score.
        score: f64,
    },
    /// The policy blamed one task: the cancellation target this tick.
    BlameAssigned {
        /// Tick index.
        tick: u64,
        /// The hottest bottlenecked resource.
        resource: ResourceId,
        /// The blamed task.
        task: TaskId,
        /// Its application key.
        key: TaskKey,
        /// The winning scalarized score.
        score: f64,
        /// Per-resource score breakdown (highest-weighted terms first;
        /// unused slots are `None`).
        terms: [Option<GainTerm>; MAX_GAIN_TERMS],
        /// Live tasks observed waiting on the blamed resource.
        victims_waiting: u64,
    },
    /// The cancel manager invoked the initiator for `key`.
    CancelIssued {
        /// Tick index.
        tick: u64,
        /// The canceled task's key.
        key: TaskKey,
        /// Issue time (ns).
        now_ns: u64,
        /// Who asked for the cancellation.
        origin: CancelOrigin,
    },
    /// A cancellation request was suppressed by a safeguard.
    Backoff {
        /// Tick index.
        tick: u64,
        /// The key the request targeted.
        key: TaskKey,
        /// Which safeguard suppressed it.
        reason: BackoffReason,
    },
    /// A previously canceled task reached `free_cancel`: the
    /// cancellation completed end to end.
    CancelCompleted {
        /// Tick index.
        tick: u64,
        /// The canceled task's key.
        key: TaskKey,
        /// Wall time from initiator invocation to `free_cancel` (ns).
        time_to_cancel_ns: u64,
    },
    /// A candidate overload had no bottlenecked application resource and
    /// was delegated to the regular-overload fallback.
    RegularOverload {
        /// Tick index.
        tick: u64,
    },
}

impl DecisionEvent {
    /// The tick index the event was emitted under.
    pub fn tick(&self) -> u64 {
        match *self {
            DecisionEvent::OverloadDetected { tick, .. }
            | DecisionEvent::ResourceScored { tick, .. }
            | DecisionEvent::CandidateRanked { tick, .. }
            | DecisionEvent::BlameAssigned { tick, .. }
            | DecisionEvent::CancelIssued { tick, .. }
            | DecisionEvent::Backoff { tick, .. }
            | DecisionEvent::CancelCompleted { tick, .. }
            | DecisionEvent::RegularOverload { tick } => tick,
        }
    }

    /// Stable lowercase name of the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            DecisionEvent::OverloadDetected { .. } => "overload_detected",
            DecisionEvent::ResourceScored { .. } => "resource_scored",
            DecisionEvent::CandidateRanked { .. } => "candidate_ranked",
            DecisionEvent::BlameAssigned { .. } => "blame_assigned",
            DecisionEvent::CancelIssued { .. } => "cancel_issued",
            DecisionEvent::Backoff { .. } => "backoff",
            DecisionEvent::CancelCompleted { .. } => "cancel_completed",
            DecisionEvent::RegularOverload { .. } => "regular_overload",
        }
    }
}

/// A sink for [`DecisionEvent`]s.
///
/// Implementations are called from inside the runtime's tick path (under
/// the runtime lock) and MUST NOT block or call back into the runtime:
/// append to a wait-free/bounded structure and return. The `atropos-obs`
/// crate's `Observer` (lock-free ring + relaxed-atomic counters) is the
/// reference implementation.
pub trait Recorder: Send + Sync {
    /// Consumes one event. Must be non-blocking.
    fn record(&self, event: DecisionEvent);
}

/// A borrow of the runtime's optional recorder plus the current tick
/// index — the object emission sites receive.
///
/// With no recorder attached, [`RecorderHandle::emit`] is a branch on
/// `None`: the event-constructing closure is never run, so disabled
/// recording costs nothing beyond the check.
#[derive(Clone, Copy)]
pub struct RecorderHandle<'a> {
    rec: Option<&'a dyn Recorder>,
    tick: u64,
}

impl<'a> RecorderHandle<'a> {
    /// Wraps an optional recorder for emission under tick `tick`.
    pub fn new(rec: Option<&'a dyn Recorder>, tick: u64) -> Self {
        Self { rec, tick }
    }

    /// A permanently disabled handle.
    pub fn disabled() -> Self {
        Self { rec: None, tick: 0 }
    }

    /// True if a recorder is attached (use to skip expensive
    /// event-preparation work entirely).
    pub fn enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// The tick index events from this handle are stamped with.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Emits the event built by `f` if a recorder is attached. `f`
    /// receives the tick index to stamp into the event.
    #[inline]
    pub fn emit(&self, f: impl FnOnce(u64) -> DecisionEvent) {
        if let Some(rec) = self.rec {
            rec.record(f(self.tick));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    struct Sink(Mutex<Vec<DecisionEvent>>);
    impl Recorder for Sink {
        fn record(&self, event: DecisionEvent) {
            self.0.lock().push(event);
        }
    }

    #[test]
    fn disabled_handle_never_runs_the_closure() {
        let h = RecorderHandle::disabled();
        assert!(!h.enabled());
        h.emit(|_| panic!("closure must not run with no recorder"));
    }

    #[test]
    fn enabled_handle_stamps_the_tick() {
        let sink = Sink(Mutex::new(Vec::new()));
        let h = RecorderHandle::new(Some(&sink), 7);
        assert!(h.enabled());
        h.emit(|tick| DecisionEvent::RegularOverload { tick });
        let evs = sink.0.lock();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].tick(), 7);
        assert_eq!(evs[0].kind(), "regular_overload");
    }

    #[test]
    fn gain_term_contribution_is_weight_times_gain() {
        let t = GainTerm {
            resource: ResourceId(0),
            weight: 0.5,
            gain: 4.0,
        };
        assert_eq!(t.contribution(), 2.0);
    }
}
