//! Event tracing and timestamp sampling (§3.2).
//!
//! Each tracing API call records a `(value, rscType, eventType)` tuple with
//! a timestamp. To keep the hot path cheap, Atropos does not read the clock
//! on every event under normal load: it samples a timestamp at a fixed
//! interval and assigns that shared timestamp to all events inside the
//! interval. When the detector sees a potential overload it switches to
//! precise per-event timestamps for accurate wait/hold measurement, and
//! back once the overload clears.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::ids::{ResourceId, TaskId};

/// The three resource operations of the paper's unified abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// `getResource`: the task acquired `amount` units.
    Get,
    /// `freeResource`: the task released `amount` units.
    Free,
    /// `slowByResource`: the task was delayed by the resource (began
    /// waiting for a lock/queue slot, or caused `amount` evictions).
    SlowBy,
}

/// Timestamping mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimestampMode {
    /// Normal load: one clock read per sampling interval, shared by all
    /// events in the interval.
    Sampled,
    /// Potential overload: one clock read per event.
    Precise,
}

/// Assigns timestamps to trace events according to the current mode.
#[derive(Debug, Clone)]
pub struct TimestampPolicy {
    mode: TimestampMode,
    interval_ns: u64,
    last_sample: u64,
    clock_reads: u64,
}

impl TimestampPolicy {
    /// Creates a policy in [`TimestampMode::Sampled`] mode.
    pub fn new(interval_ns: u64) -> Self {
        Self {
            mode: TimestampMode::Sampled,
            interval_ns: interval_ns.max(1),
            last_sample: 0,
            clock_reads: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> TimestampMode {
        self.mode
    }

    /// Switches mode (driven by the detector).
    pub fn set_mode(&mut self, mode: TimestampMode) {
        self.mode = mode;
    }

    /// Produces the timestamp to record for an event occurring at `now`.
    ///
    /// In `Sampled` mode the returned timestamp only advances when `now`
    /// has moved a full interval past the last sample, so events within an
    /// interval share a timestamp; in `Precise` mode it is `now` itself.
    pub fn stamp(&mut self, now: u64) -> u64 {
        match self.mode {
            TimestampMode::Precise => {
                self.clock_reads += 1;
                self.last_sample = now;
                now
            }
            TimestampMode::Sampled => {
                if now >= self.last_sample + self.interval_ns || self.clock_reads == 0 {
                    self.clock_reads += 1;
                    // Quantize to the interval grid so the shared stamp is
                    // stable regardless of which event triggered the sample.
                    self.last_sample = now - now % self.interval_ns;
                }
                self.last_sample
            }
        }
    }

    /// Number of clock reads performed — the quantity the sampling
    /// optimization minimizes (§5.5 overhead).
    pub fn clock_reads(&self) -> u64 {
        self.clock_reads
    }

    /// Starts a batch replay of buffered events (see [`BatchStamper`]).
    pub fn begin_batch(&self) -> BatchStamper {
        BatchStamper {
            mode: self.mode,
            interval_ns: self.interval_ns,
            last0: self.last_sample,
            first_ever: self.clock_reads == 0,
            threshold: self.last_sample.saturating_add(self.interval_ns),
            records: 0,
            max_now: 0,
            intervals: Vec::new(),
        }
    }

    /// Folds a finished batch back into the policy: the state afterwards
    /// is exactly what stamping the batch's events one by one (in global
    /// time order) would have left behind.
    pub fn commit_batch(&mut self, batch: BatchStamper) {
        if batch.records == 0 {
            return;
        }
        debug_assert_eq!(self.mode, batch.mode, "mode changed during a batch");
        match batch.mode {
            TimestampMode::Precise => {
                self.clock_reads += batch.records;
                self.last_sample = batch.max_now;
            }
            TimestampMode::Sampled => {
                let mut intervals = batch.intervals;
                intervals.sort_unstable();
                intervals.dedup();
                self.clock_reads += intervals.len() as u64;
                if batch.first_ever || batch.max_now >= batch.threshold {
                    self.last_sample = batch.max_now - batch.max_now % self.interval_ns;
                }
            }
        }
    }
}

/// Order-free replay stamping for one batch of buffered events.
///
/// Over a time-monotone event sequence — which single-threaded emission
/// is — the sequential [`TimestampPolicy::stamp`] recurrence collapses to
/// a closed form that depends only on the policy state at batch start:
///
/// - precise mode: `stamp(now) = now`;
/// - sampled mode: `stamp(now) = last0` while `now` is still inside the
///   interval open at batch start, and the interval-quantized `now`
///   otherwise (always the latter if the policy has never sampled).
///
/// No stamp depends on the *other* events in the batch, so a drain can
/// replay each ingest stripe independently — no global merge or sort —
/// and still assign every event exactly the stamp direct per-event
/// ingestion would have. [`TimestampPolicy::commit_batch`] then advances
/// the policy to the sequential end state (last sample from the batch
/// maximum, clock reads from the distinct intervals touched).
///
/// Under concurrent producers per-stripe sequences are still monotone
/// per thread, but no total time order exists in the first place; the
/// closed form then just picks one valid serialization.
#[derive(Debug)]
pub struct BatchStamper {
    mode: TimestampMode,
    interval_ns: u64,
    last0: u64,
    first_ever: bool,
    threshold: u64,
    records: u64,
    max_now: u64,
    /// Sampled intervals touched; deduped against the previous push so it
    /// stays one entry per interval per stripe, then fully deduped at
    /// commit.
    intervals: Vec<u64>,
}

impl BatchStamper {
    /// Returns the stamp for an event emitted at `now`.
    #[inline]
    pub fn stamp(&mut self, now: u64) -> u64 {
        self.records += 1;
        if now > self.max_now {
            self.max_now = now;
        }
        match self.mode {
            TimestampMode::Precise => now,
            TimestampMode::Sampled => {
                if self.first_ever || now >= self.threshold {
                    let q = now - now % self.interval_ns;
                    if self.intervals.last() != Some(&q) {
                        self.intervals.push(q);
                    }
                    q
                } else {
                    self.last0
                }
            }
        }
    }
}

/// One buffered tracing call, pending replay into the accounting state.
///
/// `now` is the raw clock reading at emit time; the shared-vs-precise
/// timestamp (the [`TimestampPolicy`] stamp) is assigned at drain time by
/// [`BatchStamper`], which produces the same stamps direct ingestion
/// would have.
/// There is deliberately no sequence number: replay needs only per-task
/// emit order, which the stripe's FIFO order preserves (a task always
/// maps to the same stripe), and a global sequence would put a shared
/// atomic back on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Clock reading at emit time (ns).
    pub now: u64,
    /// Emitting task.
    pub task: TaskId,
    /// Referenced resource.
    pub rid: ResourceId,
    /// Units acquired / released / evicted.
    pub amount: u64,
    /// Which tracing API was called.
    pub kind: EventKind,
}

/// Result of [`ShardedIngest::push`] (and its lock-free sibling,
/// [`LockFreeIngest::push`](crate::lockfree::LockFreeIngest::push)).
#[derive(Debug)]
pub enum PushOutcome {
    /// The record was appended to its stripe.
    Buffered,
    /// The stripe is at capacity; the record is handed back so the caller
    /// can either flush the buffers and retry or shed load
    /// ([`ShardedIngest::force_push`]).
    Full(TraceRecord),
}

/// Each stripe gets its own cache lines so producers on different stripes
/// never false-share.
#[repr(align(128))]
struct Stripe {
    /// Append-only between drains: a plain `Vec`, so the hot-path push is
    /// a pointer store. Drop-oldest (the rare shed path) pays the O(n)
    /// front removal instead.
    buf: Mutex<Vec<TraceRecord>>,
}

/// Striped, bounded buffers decoupling trace emission from accounting.
///
/// The tracing hot path (`get/free/slow_by_resource`) appends a compact
/// [`TraceRecord`] to one of N stripes under a stripe-local mutex instead
/// of taking the runtime's global lock and updating per-task accounting
/// inline. The records are replayed into the accounting state at the
/// next drain point (`tick`, `stats`, `free_cancel`,
/// `register_resource`), where the runtime holds its state lock anyway.
///
/// Ordering: there is deliberately no cross-stripe order. A task maps to
/// one stripe for its whole life, so per-task emit order — the only order
/// the accounting state is sensitive to — is the stripe's FIFO order, and
/// [`BatchStamper`] assigns timestamps that are independent of the replay
/// order across stripes. The emit path therefore touches no shared state
/// at all: one stripe-local lock, one plain counter increment, one
/// bounded append.
///
/// Overflow: when a stripe is full, `push` hands the record back; the
/// runtime tries a mid-window flush, and if the state lock is busy the
/// stripe sheds its oldest record ([`ShardedIngest::force_push`]) and the
/// shed count is folded into `ignored_events` at the next drain.
pub struct ShardedIngest {
    stripes: Box<[Stripe]>,
    capacity: usize,
    overflow_dropped: AtomicU64,
}

impl std::fmt::Debug for ShardedIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIngest")
            .field("stripes", &self.stripes.len())
            .field("capacity", &self.capacity)
            .field("pending", &self.pending())
            .finish()
    }
}

impl ShardedIngest {
    /// Creates at least `stripes` bounded buffers of `capacity` records
    /// each. The count rounds up to a power of two so stripe selection is
    /// a mask instead of an integer division on the emit path.
    pub fn new(stripes: usize, capacity: usize) -> Self {
        let stripes = stripes.max(1).next_power_of_two();
        Self {
            stripes: (0..stripes)
                .map(|_| Stripe {
                    buf: Mutex::new(Vec::with_capacity(capacity.min(1024))),
                })
                .collect(),
            capacity: capacity.max(1),
            overflow_dropped: AtomicU64::new(0),
        }
    }

    #[inline]
    fn stripe_for(&self, task: TaskId) -> &Stripe {
        // Task ids are assigned sequentially, so masking the low bits
        // spreads concurrent tasks evenly across stripes (the stripe
        // count is always a power of two).
        &self.stripes[task.0 as usize & (self.stripes.len() - 1)]
    }

    /// Appends one tracing call to its task's stripe.
    pub fn push(
        &self,
        task: TaskId,
        rid: ResourceId,
        amount: u64,
        kind: EventKind,
        now: u64,
    ) -> PushOutcome {
        let rec = TraceRecord {
            now,
            task,
            rid,
            amount,
            kind,
        };
        let mut buf = self.stripe_for(task).buf.lock();
        if buf.len() >= self.capacity {
            return PushOutcome::Full(rec);
        }
        buf.push(rec);
        PushOutcome::Buffered
    }

    /// Appends `rec` unconditionally, shedding the stripe's oldest records
    /// to make room. Shed records count toward
    /// [`ShardedIngest::take_overflow_dropped`].
    pub fn force_push(&self, rec: TraceRecord) {
        let mut buf = self.stripe_for(rec.task).buf.lock();
        if buf.len() >= self.capacity {
            let excess = buf.len() + 1 - self.capacity;
            buf.drain(..excess);
            self.overflow_dropped
                .fetch_add(excess as u64, Ordering::Relaxed);
        }
        buf.push(rec);
    }

    /// Empties stripe `i` by swapping its buffer with `scratch`.
    ///
    /// This is the zero-merge drain the runtime uses: tasks map to
    /// stripes statically, so replaying stripes one after another
    /// preserves every task's event order, and [`BatchStamper`] makes the
    /// stamps independent of cross-stripe order. The stripe lock is held
    /// only for the swap, and buffer allocations rotate between stripes
    /// instead of being freed and regrown.
    pub fn swap_stripe(&self, i: usize, scratch: &mut Vec<TraceRecord>) {
        std::mem::swap(&mut *self.stripes[i].buf.lock(), scratch);
    }

    /// Empties every stripe and returns the records, grouped by stripe
    /// with each stripe in emit order (for tests and benches; the runtime
    /// replays via [`ShardedIngest::swap_stripe`] without the
    /// intermediate allocation).
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for s in self.stripes.iter() {
            out.append(&mut *s.buf.lock());
        }
        out
    }

    /// Takes (and resets) the count of records shed by overflow since the
    /// last call.
    pub fn take_overflow_dropped(&self) -> u64 {
        self.overflow_dropped.swap(0, Ordering::Relaxed)
    }

    /// Number of buffered records across all stripes.
    pub fn pending(&self) -> usize {
        self.stripes.iter().map(|s| s.buf.lock().len()).sum()
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Per-stripe record capacity.
    pub fn stripe_capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_mode_returns_now() {
        let mut p = TimestampPolicy::new(1000);
        p.set_mode(TimestampMode::Precise);
        assert_eq!(p.stamp(123), 123);
        assert_eq!(p.stamp(456), 456);
        assert_eq!(p.clock_reads(), 2);
    }

    #[test]
    fn sampled_mode_shares_timestamps_within_interval() {
        let mut p = TimestampPolicy::new(1000);
        let t0 = p.stamp(100);
        let t1 = p.stamp(500);
        let t2 = p.stamp(999);
        assert_eq!(t0, t1);
        assert_eq!(t1, t2);
        assert_eq!(p.clock_reads(), 1);
    }

    #[test]
    fn sampled_mode_advances_after_interval() {
        let mut p = TimestampPolicy::new(1000);
        let t0 = p.stamp(100);
        let t1 = p.stamp(1500);
        assert!(t1 > t0);
        assert_eq!(t1, 1000); // quantized to the grid
        assert_eq!(p.clock_reads(), 2);
    }

    #[test]
    fn sampled_stamp_is_monotonic() {
        let mut p = TimestampPolicy::new(777);
        let mut last = 0;
        for now in (0..100_000).step_by(137) {
            let s = p.stamp(now);
            assert!(s >= last);
            assert!(s <= now);
            last = s;
        }
    }

    #[test]
    fn mode_switch_roundtrip_keeps_monotonicity() {
        let mut p = TimestampPolicy::new(1000);
        let a = p.stamp(100);
        p.set_mode(TimestampMode::Precise);
        let b = p.stamp(150);
        p.set_mode(TimestampMode::Sampled);
        let c = p.stamp(160);
        assert!(a <= b);
        // After returning to sampled mode the stamp may reuse the last
        // sample but never exceeds now.
        assert!(c <= 160);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let mut p = TimestampPolicy::new(0);
        let _ = p.stamp(5);
        let _ = p.stamp(6);
        assert!(p.clock_reads() >= 1);
    }

    #[test]
    fn sampled_mode_reads_clock_far_less_often() {
        let mut sampled = TimestampPolicy::new(1_000_000); // 1 ms
        let mut precise = TimestampPolicy::new(1_000_000);
        precise.set_mode(TimestampMode::Precise);
        for now in (0..10_000_000u64).step_by(1000) {
            sampled.stamp(now);
            precise.stamp(now);
        }
        assert!(sampled.clock_reads() * 100 <= precise.clock_reads());
    }

    fn push_n(ing: &ShardedIngest, n: u64) {
        for i in 0..n {
            match ing.push(TaskId(i % 5), ResourceId(0), 1, EventKind::Get, i * 10) {
                PushOutcome::Buffered => {}
                PushOutcome::Full(rec) => ing.force_push(rec),
            }
        }
    }

    #[test]
    fn drain_preserves_per_task_emit_order() {
        let ing = ShardedIngest::new(4, 64);
        push_n(&ing, 50);
        let recs = ing.drain();
        assert_eq!(recs.len(), 50);
        // Cross-stripe order is unspecified, but each task's records —
        // the order the accounting state is sensitive to — appear in
        // emit order (strictly increasing `now` here).
        for task in 0..5u64 {
            let nows: Vec<u64> = recs
                .iter()
                .filter(|r| r.task == TaskId(task))
                .map(|r| r.now)
                .collect();
            assert_eq!(nows.len(), 10);
            assert!(
                nows.windows(2).all(|w| w[0] < w[1]),
                "task {task}: {nows:?}"
            );
        }
        assert_eq!(ing.pending(), 0);
        assert_eq!(ing.take_overflow_dropped(), 0);
    }

    #[test]
    fn full_stripe_hands_the_record_back() {
        let ing = ShardedIngest::new(1, 2);
        assert!(matches!(
            ing.push(TaskId(1), ResourceId(0), 1, EventKind::Get, 0),
            PushOutcome::Buffered
        ));
        assert!(matches!(
            ing.push(TaskId(1), ResourceId(0), 1, EventKind::Free, 1),
            PushOutcome::Buffered
        ));
        let rec = match ing.push(TaskId(1), ResourceId(0), 1, EventKind::SlowBy, 2) {
            PushOutcome::Full(rec) => rec,
            other => panic!("expected Full, got {other:?}"),
        };
        assert_eq!(rec.now, 2);
        assert_eq!(ing.pending(), 2);
        // Force-pushing sheds the oldest record to make room.
        ing.force_push(rec);
        assert_eq!(ing.pending(), 2);
        assert_eq!(ing.take_overflow_dropped(), 1);
        let recs = ing.drain();
        assert_eq!(recs[0].now, 1);
        assert_eq!(recs[1].now, 2);
    }

    #[test]
    fn tasks_spread_across_stripes() {
        let ing = ShardedIngest::new(4, 1);
        // Four sequential tasks land on four distinct stripes: with
        // capacity 1 per stripe, all four pushes fit.
        for t in 0..4u64 {
            assert!(matches!(
                ing.push(TaskId(t), ResourceId(0), 1, EventKind::Get, 0),
                PushOutcome::Buffered
            ));
        }
        assert_eq!(ing.pending(), 4);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        use std::sync::Arc;
        let ing = Arc::new(ShardedIngest::new(8, 10_000));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let ing = ing.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        match ing.push(TaskId(t), ResourceId(0), 1, EventKind::Get, i) {
                            PushOutcome::Buffered => {}
                            PushOutcome::Full(rec) => ing.force_push(rec),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let recs = ing.drain();
        assert_eq!(recs.len() as u64 + ing.take_overflow_dropped(), 20_000);
        // Each producer's records kept their emit order: within a task,
        // `now` strictly increases.
        for task in 0..4u64 {
            let mine: Vec<_> = recs.iter().filter(|r| r.task == TaskId(task)).collect();
            assert_eq!(mine.len(), 5_000);
            for w in mine.windows(2) {
                assert!(w[0].now < w[1].now);
            }
        }
    }

    /// The closed-form batch stamper must agree with the sequential
    /// policy on every monotone emission sequence — per-record stamps,
    /// final sample state, and clock-read count — even when records are
    /// replayed stripe by stripe instead of in global time order.
    #[test]
    fn batch_stamper_matches_sequential_policy() {
        const INTERVAL: u64 = 1_000;
        const STRIPES: usize = 4;
        // A deterministic monotone `now` sequence with interval-internal
        // clusters, exact boundary hits, and long gaps.
        let mut nows = Vec::new();
        let mut now = 0u64;
        for i in 0u64..400 {
            now += match i % 7 {
                0 => 0,        // duplicate timestamps
                1..=3 => 37,   // intra-interval steps
                4 => INTERVAL, // exactly one interval
                5 => 13,
                _ => 2_481, // multi-interval jump
            };
            nows.push(now);
        }
        // Exercise both modes and mid-stream switches, batching 100
        // records at a time (mode is constant within a batch, as in the
        // runtime, where mode only changes at the drain point). The
        // precise→sampled case matters: it leaves a last sample that is
        // not interval-aligned.
        use TimestampMode::{Precise, Sampled};
        let schedules: [&[TimestampMode]; 4] = [
            &[Sampled, Sampled, Sampled, Sampled],
            &[Sampled, Precise, Precise, Precise],
            &[Sampled, Precise, Sampled, Sampled],
            &[Precise, Sampled, Precise, Sampled],
        ];
        for schedule in schedules {
            let mut seq_policy = TimestampPolicy::new(INTERVAL);
            let mut batch_policy = TimestampPolicy::new(INTERVAL);
            for (chunk_idx, chunk) in nows.chunks(100).enumerate() {
                seq_policy.set_mode(schedule[chunk_idx]);
                batch_policy.set_mode(schedule[chunk_idx]);
                let expected: Vec<u64> = chunk.iter().map(|&n| seq_policy.stamp(n)).collect();
                // Replay stripe by stripe: stripe s gets every STRIPES-th
                // record, so cross-stripe order is maximally shuffled
                // while per-stripe order stays monotone.
                let mut got = vec![0u64; chunk.len()];
                let mut stamper = batch_policy.begin_batch();
                for s in 0..STRIPES {
                    for (j, &n) in chunk.iter().enumerate() {
                        if j % STRIPES == s {
                            got[j] = stamper.stamp(n);
                        }
                    }
                }
                batch_policy.commit_batch(stamper);
                assert_eq!(got, expected, "stamps diverged in chunk {chunk_idx}");
                assert_eq!(
                    batch_policy.clock_reads(),
                    seq_policy.clock_reads(),
                    "clock reads diverged in chunk {chunk_idx}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_leaves_policy_untouched() {
        let mut p = TimestampPolicy::new(1_000);
        p.stamp(5_500);
        let before_reads = p.clock_reads();
        let stamper = p.begin_batch();
        p.commit_batch(stamper);
        assert_eq!(p.clock_reads(), before_reads);
        assert_eq!(p.stamp(5_600), 5_000);
    }

    #[test]
    fn swap_stripe_reuses_the_scratch_allocation() {
        let ing = ShardedIngest::new(2, 64);
        for t in 0..4u64 {
            ing.push(TaskId(t), ResourceId(0), 1, EventKind::Get, t);
        }
        let mut scratch = Vec::new();
        let mut seen = 0;
        for i in 0..ing.stripe_count() {
            ing.swap_stripe(i, &mut scratch);
            seen += scratch.len();
            scratch.clear();
        }
        assert_eq!(seen, 4);
        assert_eq!(ing.pending(), 0);
        // The stripe buffers received the (cleared) scratch in exchange.
        ing.push(TaskId(0), ResourceId(0), 1, EventKind::Get, 9);
        assert_eq!(ing.pending(), 1);
    }
}
