//! Event tracing and timestamp sampling (§3.2).
//!
//! Each tracing API call records a `(value, rscType, eventType)` tuple with
//! a timestamp. To keep the hot path cheap, Atropos does not read the clock
//! on every event under normal load: it samples a timestamp at a fixed
//! interval and assigns that shared timestamp to all events inside the
//! interval. When the detector sees a potential overload it switches to
//! precise per-event timestamps for accurate wait/hold measurement, and
//! back once the overload clears.

use serde::{Deserialize, Serialize};

/// The three resource operations of the paper's unified abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// `getResource`: the task acquired `amount` units.
    Get,
    /// `freeResource`: the task released `amount` units.
    Free,
    /// `slowByResource`: the task was delayed by the resource (began
    /// waiting for a lock/queue slot, or caused `amount` evictions).
    SlowBy,
}

/// Timestamping mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimestampMode {
    /// Normal load: one clock read per sampling interval, shared by all
    /// events in the interval.
    Sampled,
    /// Potential overload: one clock read per event.
    Precise,
}

/// Assigns timestamps to trace events according to the current mode.
#[derive(Debug, Clone)]
pub struct TimestampPolicy {
    mode: TimestampMode,
    interval_ns: u64,
    last_sample: u64,
    clock_reads: u64,
}

impl TimestampPolicy {
    /// Creates a policy in [`TimestampMode::Sampled`] mode.
    pub fn new(interval_ns: u64) -> Self {
        Self {
            mode: TimestampMode::Sampled,
            interval_ns: interval_ns.max(1),
            last_sample: 0,
            clock_reads: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> TimestampMode {
        self.mode
    }

    /// Switches mode (driven by the detector).
    pub fn set_mode(&mut self, mode: TimestampMode) {
        self.mode = mode;
    }

    /// Produces the timestamp to record for an event occurring at `now`.
    ///
    /// In `Sampled` mode the returned timestamp only advances when `now`
    /// has moved a full interval past the last sample, so events within an
    /// interval share a timestamp; in `Precise` mode it is `now` itself.
    pub fn stamp(&mut self, now: u64) -> u64 {
        match self.mode {
            TimestampMode::Precise => {
                self.clock_reads += 1;
                self.last_sample = now;
                now
            }
            TimestampMode::Sampled => {
                if now >= self.last_sample + self.interval_ns || self.clock_reads == 0 {
                    self.clock_reads += 1;
                    // Quantize to the interval grid so the shared stamp is
                    // stable regardless of which event triggered the sample.
                    self.last_sample = now - now % self.interval_ns;
                }
                self.last_sample
            }
        }
    }

    /// Number of clock reads performed — the quantity the sampling
    /// optimization minimizes (§5.5 overhead).
    pub fn clock_reads(&self) -> u64 {
        self.clock_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_mode_returns_now() {
        let mut p = TimestampPolicy::new(1000);
        p.set_mode(TimestampMode::Precise);
        assert_eq!(p.stamp(123), 123);
        assert_eq!(p.stamp(456), 456);
        assert_eq!(p.clock_reads(), 2);
    }

    #[test]
    fn sampled_mode_shares_timestamps_within_interval() {
        let mut p = TimestampPolicy::new(1000);
        let t0 = p.stamp(100);
        let t1 = p.stamp(500);
        let t2 = p.stamp(999);
        assert_eq!(t0, t1);
        assert_eq!(t1, t2);
        assert_eq!(p.clock_reads(), 1);
    }

    #[test]
    fn sampled_mode_advances_after_interval() {
        let mut p = TimestampPolicy::new(1000);
        let t0 = p.stamp(100);
        let t1 = p.stamp(1500);
        assert!(t1 > t0);
        assert_eq!(t1, 1000); // quantized to the grid
        assert_eq!(p.clock_reads(), 2);
    }

    #[test]
    fn sampled_stamp_is_monotonic() {
        let mut p = TimestampPolicy::new(777);
        let mut last = 0;
        for now in (0..100_000).step_by(137) {
            let s = p.stamp(now);
            assert!(s >= last);
            assert!(s <= now);
            last = s;
        }
    }

    #[test]
    fn mode_switch_roundtrip_keeps_monotonicity() {
        let mut p = TimestampPolicy::new(1000);
        let a = p.stamp(100);
        p.set_mode(TimestampMode::Precise);
        let b = p.stamp(150);
        p.set_mode(TimestampMode::Sampled);
        let c = p.stamp(160);
        assert!(a <= b);
        // After returning to sampled mode the stamp may reuse the last
        // sample but never exceeds now.
        assert!(c <= 160);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let mut p = TimestampPolicy::new(0);
        let _ = p.stamp(5);
        let _ = p.stamp(6);
        assert!(p.clock_reads() >= 1);
    }

    #[test]
    fn sampled_mode_reads_clock_far_less_often() {
        let mut sampled = TimestampPolicy::new(1_000_000); // 1 ms
        let mut precise = TimestampPolicy::new(1_000_000);
        precise.set_mode(TimestampMode::Precise);
        for now in (0..10_000_000u64).step_by(1000) {
            sampled.stamp(now);
            precise.stamp(now);
        }
        assert!(sampled.clock_reads() * 100 <= precise.clock_reads());
    }
}
