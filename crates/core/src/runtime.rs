//! The Atropos runtime manager (§3.2, Figure 5).
//!
//! [`AtroposRuntime`] is the object applications integrate against. It owns
//! the task and resource registries, the trace accounting, the overload
//! detector, the estimator, the cancellation policy, and the cancel
//! manager, and exposes the paper's Figure 6 API in idiomatic Rust. All
//! methods are thread-safe; the runtime serves real multi-threaded
//! programs and the single-threaded simulator alike.

use std::collections::HashMap;
use std::sync::Arc;

use atropos_sim::Clock;
use parking_lot::Mutex;

use crate::cancel::{CancelDecision, CancelManager, CancelStats};
use crate::config::AtroposConfig;
use crate::detect::{Detector, OverloadSignal};
use crate::estimator::{estimate, EstimatorSnapshot};
use crate::ids::{ResourceId, ResourceType, TaskId, TaskKey};
use crate::policy::CancellationPolicy;
use crate::resource::ResourceRegistry;
use crate::task::{TaskRecord, TaskState};
use crate::trace::{TimestampMode, TimestampPolicy};

/// Auto-generated keys live in the top half of the key space so they never
/// collide with developer-provided keys (which are expected to be small
/// identifiers such as thread or connection ids).
const AUTO_KEY_BASE: u64 = 1 << 63;

/// Result of one [`AtroposRuntime::tick`].
#[derive(Debug, Clone, PartialEq)]
pub enum TickOutcome {
    /// No overload candidate this window.
    Idle,
    /// Candidate confirmed as resource overload.
    ResourceOverload {
        /// Bottlenecked resources, most contended first.
        resources: Vec<ResourceId>,
        /// Key of the task whose cancellation was issued, if any.
        canceled: Option<TaskKey>,
        /// The decision taken for the selected task (if one was selected).
        decision: Option<CancelDecision>,
    },
    /// Candidate without a bottlenecked application resource: regular
    /// (demand) overload, delegated to the fallback handler.
    RegularOverload,
}

/// Aggregate runtime counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeStats {
    /// Tracing API calls processed.
    pub trace_events: u64,
    /// Tracing API calls that referenced an unknown task/resource and were
    /// ignored (e.g. events racing with `free_cancel`).
    pub ignored_events: u64,
    /// `tick` invocations.
    pub ticks: u64,
    /// Candidate overloads reported by the detector.
    pub candidates: u64,
    /// Candidates confirmed as resource overload.
    pub resource_overloads: u64,
    /// Candidates classified as regular overload.
    pub regular_overloads: u64,
    /// Work units completed.
    pub completions: u64,
    /// Confirmed resource overloads by the hottest resource's type,
    /// indexed Lock/Memory/Queue/System (diagnostic: which kind of
    /// resource kept bottlenecking).
    pub overloads_by_type: [u64; 4],
    /// Cancellation counters.
    pub cancel: CancelStats,
}

struct Inner {
    cfg: AtroposConfig,
    resources: ResourceRegistry,
    tasks: HashMap<TaskId, TaskRecord>,
    next_task: u64,
    next_auto_key: u64,
    detector: Detector,
    policy: Box<dyn CancellationPolicy>,
    cancel: CancelManager,
    ts: TimestampPolicy,
    last_estimate: Option<EstimatorSnapshot>,
    regular_overload_hook: Option<Box<dyn Fn() + Send + Sync>>,
    stats: RuntimeStats,
}

/// The Atropos runtime. See the [crate-level docs](crate) for an overview
/// and a usage example.
pub struct AtroposRuntime {
    clock: Arc<dyn Clock>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for AtroposRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("AtroposRuntime")
            .field("tasks", &inner.tasks.len())
            .field("resources", &inner.resources.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl AtroposRuntime {
    /// Creates a runtime.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation; use [`AtroposRuntime::try_new`]
    /// for a fallible constructor.
    pub fn new(cfg: AtroposConfig, clock: Arc<dyn Clock>) -> Self {
        Self::try_new(cfg, clock).expect("invalid AtroposConfig")
    }

    /// Creates a runtime, returning a description of any configuration
    /// error.
    pub fn try_new(cfg: AtroposConfig, clock: Arc<dyn Clock>) -> Result<Self, String> {
        cfg.validate()?;
        let origin = clock.now_ns();
        let inner = Inner {
            detector: Detector::new(cfg.detector.clone(), origin),
            policy: cfg.policy.build(),
            cancel: CancelManager::new(&cfg),
            ts: TimestampPolicy::new(cfg.sample_interval_ns),
            resources: ResourceRegistry::new(),
            tasks: HashMap::new(),
            next_task: 1,
            next_auto_key: AUTO_KEY_BASE,
            last_estimate: None,
            regular_overload_hook: None,
            stats: RuntimeStats::default(),
            cfg,
        };
        Ok(Self {
            clock,
            inner: Mutex::new(inner),
        })
    }

    // ---- integration API (Figure 6a) ----

    /// Registers an application resource for tracking.
    pub fn register_resource(&self, name: impl Into<String>, rtype: ResourceType) -> ResourceId {
        let mut inner = self.inner.lock();
        let id = inner.resources.register(name, rtype);
        let n = inner.resources.len();
        for t in inner.tasks.values_mut() {
            t.ensure_resources(n);
        }
        id
    }

    /// Marks the beginning of a cancellable task's scope (`createCancel`).
    ///
    /// `key` identifies the task to the *application* (e.g. a thread id);
    /// if `None`, a unique key is generated. A task whose key was canceled
    /// before is registered non-cancellable (re-execution fairness, §4).
    pub fn create_cancel(&self, key: Option<u64>) -> TaskId {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock();
        let key = match key {
            Some(k) => TaskKey(k),
            None => {
                let k = inner.next_auto_key;
                inner.next_auto_key += 1;
                TaskKey(k)
            }
        };
        let id = TaskId(inner.next_task);
        inner.next_task += 1;
        let n = inner.resources.len();
        let mut rec = TaskRecord::new(id, key, now, n);
        if inner.cancel.was_canceled(key) {
            rec.cancellable = false;
        }
        inner.tasks.insert(id, rec);
        id
    }

    /// Ends a cancellable task's scope (`freeCancel`). Unknown ids are
    /// ignored.
    pub fn free_cancel(&self, task: TaskId) {
        let mut inner = self.inner.lock();
        if let Some(rec) = inner.tasks.remove(&task) {
            inner.cancel.note_finished(rec.key);
        }
    }

    /// Registers the application's cancellation initiator
    /// (`setCancelAction`). The callback receives the task's key.
    pub fn set_cancel_action(&self, f: impl Fn(TaskKey) + Send + Sync + 'static) {
        self.inner.lock().cancel.set_cancel_action(Box::new(f));
    }

    /// Registers the coarse thread-level cancellation fallback (§3.6).
    ///
    /// Used only when no application initiator is registered and
    /// [`AtroposConfig::allow_thread_level_cancel`] is set — e.g. the
    /// paper's Apache integration, whose PHP scripts have no built-in
    /// cancellation and are aborted with `pthread_cancel` after the
    /// developers established that it is safe (§5.2).
    pub fn set_thread_cancel_action(&self, f: impl Fn(TaskKey) + Send + Sync + 'static) {
        self.inner
            .lock()
            .cancel
            .set_thread_cancel_action(Box::new(f));
    }

    /// Registers the re-execution callback (§4 fairness).
    pub fn set_reexec_action(&self, f: impl Fn(TaskKey) + Send + Sync + 'static) {
        self.inner.lock().cancel.set_reexec_action(Box::new(f));
    }

    /// Registers the callback invoked when a canceled task is dropped for
    /// missing its SLO deadline.
    pub fn set_drop_action(&self, f: impl Fn(TaskKey) + Send + Sync + 'static) {
        self.inner.lock().cancel.set_drop_action(Box::new(f));
    }

    /// Registers the fallback invoked on *regular* (non-resource) overload,
    /// e.g. an admission-control mechanism.
    pub fn set_regular_overload_action(&self, f: impl Fn() + Send + Sync + 'static) {
        self.inner.lock().regular_overload_hook = Some(Box::new(f));
    }

    /// Links `child` as a sub-task of `parent` (the distributed extension
    /// sketched in §4: a root request fanning work out to child tasks,
    /// possibly on other nodes). Canceling the parent propagates the
    /// cancellation signal to every descendant's key.
    ///
    /// Cycles are ignored at traversal time, so a buggy linkage cannot
    /// hang cancellation.
    pub fn link_child(&self, parent: TaskId, child: TaskId) {
        let mut inner = self.inner.lock();
        if parent != child && inner.tasks.contains_key(&child) {
            if let Some(p) = inner.tasks.get_mut(&parent) {
                if !p.children.contains(&child) {
                    p.children.push(child);
                }
            }
        }
    }

    /// Marks a task as a background task (no SLO; force-re-executed after
    /// the configured maximum wait instead of being dropped).
    pub fn mark_background(&self, task: TaskId) {
        if let Some(t) = self.inner.lock().tasks.get_mut(&task) {
            t.background = true;
        }
    }

    /// Overrides whether the policy may cancel this task.
    pub fn set_cancellable(&self, task: TaskId, cancellable: bool) {
        if let Some(t) = self.inner.lock().tasks.get_mut(&task) {
            t.cancellable = cancellable;
        }
    }

    // ---- tracing API (Figure 6b) ----

    fn trace(&self, task: TaskId, rid: ResourceId, amount: u64, kind: u8) {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock();
        let stamp = inner.ts.stamp(now);
        if inner.resources.get(rid).is_none() {
            inner.stats.ignored_events += 1;
            return;
        }
        let Some(t) = inner.tasks.get_mut(&task) else {
            inner.stats.ignored_events += 1;
            return;
        };
        let u = &mut t.usage[rid.index()];
        match kind {
            0 => u.on_get(stamp, amount),
            1 => u.on_free(stamp, amount),
            _ => u.on_slow(stamp, amount),
        }
        inner.stats.trace_events += 1;
    }

    /// Records that `task` acquired `amount` units of resource `rid`
    /// (`getResource`).
    pub fn get_resource(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, 0);
    }

    /// Records that `task` released `amount` units (`freeResource`).
    pub fn free_resource(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, 1);
    }

    /// Records that `task` is delayed by the resource (`slowByResource`):
    /// it began waiting for a lock/queue slot or caused `amount` evictions.
    pub fn slow_by_resource(&self, task: TaskId, rid: ResourceId, amount: u64) {
        self.trace(task, rid, amount, 2);
    }

    /// Reports GetNext progress for a task: `done` of `total` work units.
    pub fn report_progress(&self, task: TaskId, done: u64, total: u64) {
        if let Some(t) = self.inner.lock().tasks.get_mut(&task) {
            t.progress.report(done, total);
        }
    }

    // ---- performance signal ----

    /// Marks the start of a work unit (one request) on this task.
    pub fn unit_started(&self, task: TaskId) {
        let now = self.clock.now_ns();
        if let Some(t) = self.inner.lock().tasks.get_mut(&task) {
            t.on_unit_start(now);
        }
    }

    /// Marks the completion of the open work unit; feeds the detector.
    /// Returns the measured latency if a unit was open.
    pub fn unit_finished(&self, task: TaskId) -> Option<u64> {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock();
        let latency = inner.tasks.get_mut(&task)?.on_unit_finish(now)?;
        inner.detector.record_completion(now, latency);
        inner.stats.completions += 1;
        Some(latency)
    }

    /// Records an externally dropped request so the detector's series stays
    /// complete.
    pub fn record_drop(&self) {
        let now = self.clock.now_ns();
        self.inner.lock().detector.record_drop(now);
    }

    // ---- the periodic driver ----

    /// Runs one detection → estimation → policy → cancellation cycle.
    ///
    /// Call this periodically (the detector window is the natural period).
    pub fn tick(&self) -> TickOutcome {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock();
        inner.stats.ticks += 1;
        // Close the accounting window on every task.
        for t in inner.tasks.values_mut() {
            t.roll_window(now);
        }
        let in_flight = inner.tasks.values().filter(|t| t.is_active()).count() as u64;
        let signal = inner.detector.evaluate(now, in_flight);
        let outcome = match signal {
            OverloadSignal::Ok => {
                inner.ts.set_mode(TimestampMode::Sampled);
                inner.cancel.on_window(now, false);
                TickOutcome::Idle
            }
            OverloadSignal::Candidate { .. } => {
                inner.stats.candidates += 1;
                // Potential overload: switch to precise timestamps (§3.2).
                inner.ts.set_mode(TimestampMode::Precise);
                let snapshot = estimate(inner.tasks.values(), &inner.resources, &inner.cfg);
                let hot = snapshot.bottlenecked(inner.cfg.detector.min_contention);
                let outcome = if hot.is_empty() {
                    inner.stats.regular_overloads += 1;
                    if let Some(hook) = &inner.regular_overload_hook {
                        hook();
                    }
                    TickOutcome::RegularOverload
                } else {
                    inner.stats.resource_overloads += 1;
                    let hottest = snapshot.resources[hot[0].index()].rtype;
                    let type_idx = match hottest {
                        ResourceType::Lock => 0,
                        ResourceType::Memory => 1,
                        ResourceType::Queue => 2,
                        ResourceType::System => 3,
                    };
                    inner.stats.overloads_by_type[type_idx] += 1;
                    let sel = inner.policy.select(&snapshot);
                    let (canceled, decision) = match sel {
                        Some(s) => {
                            let background = inner
                                .tasks
                                .get(&s.task)
                                .map(|t| t.background)
                                .unwrap_or(false);
                            if let Some(t) = inner.tasks.get_mut(&s.task) {
                                t.state = TaskState::CancelRequested;
                            }
                            let d = inner.cancel.request_cancel(now, s.key, background);
                            if d == CancelDecision::Issued {
                                // Distributed extension: propagate the root
                                // cancellation to all descendant tasks.
                                let keys = descendant_keys(&inner.tasks, s.task);
                                if !keys.is_empty() {
                                    inner.cancel.propagate(&keys);
                                }
                            }
                            ((d == CancelDecision::Issued).then_some(s.key), Some(d))
                        }
                        None => (None, None),
                    };
                    TickOutcome::ResourceOverload {
                        resources: hot,
                        canceled,
                        decision,
                    }
                };
                inner.last_estimate = Some(snapshot);
                inner.cancel.on_window(now, true);
                outcome
            }
        };
        if inner.stats.cancel != inner.cancel.stats() {
            inner.stats.cancel = inner.cancel.stats();
        }
        outcome
    }

    // ---- introspection ----

    /// Current timestamp mode (sampled under normal load, precise under
    /// potential overload).
    pub fn timestamp_mode(&self) -> TimestampMode {
        self.inner.lock().ts.mode()
    }

    /// The estimator snapshot from the most recent overloaded tick.
    pub fn last_estimate(&self) -> Option<EstimatorSnapshot> {
        self.inner.lock().last_estimate.clone()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RuntimeStats {
        let inner = self.inner.lock();
        let mut s = inner.stats;
        s.cancel = inner.cancel.stats();
        s
    }

    /// Number of live (registered) tasks.
    pub fn task_count(&self) -> usize {
        self.inner.lock().tasks.len()
    }

    /// The configuration the runtime was built with.
    pub fn config(&self) -> AtroposConfig {
        self.inner.lock().cfg.clone()
    }
}

/// Collects the keys of every descendant of `root` (excluding the root),
/// breadth-first and cycle-safe.
fn descendant_keys(tasks: &HashMap<TaskId, TaskRecord>, root: TaskId) -> Vec<TaskKey> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    seen.insert(root);
    let mut frontier = vec![root];
    while let Some(id) = frontier.pop() {
        let Some(rec) = tasks.get(&id) else { continue };
        for &child in &rec.children {
            if seen.insert(child) {
                if let Some(c) = tasks.get(&child) {
                    out.push(c.key);
                }
                frontier.push(child);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_sim::{SimTime, VirtualClock};
    use std::sync::atomic::{AtomicU64, Ordering};

    const MS: u64 = 1_000_000;

    fn setup(slo_ms: u64) -> (Arc<VirtualClock>, AtroposRuntime) {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = AtroposConfig::default();
        cfg.detector.slo_latency_ns = slo_ms * MS;
        cfg.detector.window_ns = 100 * MS;
        cfg.cancel_min_interval_ns = 0;
        let rt = AtroposRuntime::new(cfg, clock.clone());
        (clock, rt)
    }

    #[test]
    fn auto_keys_do_not_collide_with_explicit_keys() {
        let (_c, rt) = setup(10);
        let _a = rt.create_cancel(Some(7));
        let _b = rt.create_cancel(None);
        assert_eq!(rt.task_count(), 2);
    }

    #[test]
    fn free_cancel_removes_task() {
        let (_c, rt) = setup(10);
        let t = rt.create_cancel(None);
        rt.free_cancel(t);
        assert_eq!(rt.task_count(), 0);
        rt.free_cancel(t); // idempotent
    }

    #[test]
    fn events_on_freed_tasks_are_ignored() {
        let (_c, rt) = setup(10);
        let pool = rt.register_resource("pool", ResourceType::Memory);
        let t = rt.create_cancel(None);
        rt.free_cancel(t);
        rt.get_resource(t, pool, 10);
        assert_eq!(rt.stats().ignored_events, 1);
        assert_eq!(rt.stats().trace_events, 0);
    }

    #[test]
    fn resources_registered_late_are_visible_to_existing_tasks() {
        let (_c, rt) = setup(10);
        let t = rt.create_cancel(None);
        let lock = rt.register_resource("lock", ResourceType::Lock);
        rt.get_resource(t, lock, 1);
        assert_eq!(rt.stats().trace_events, 1);
    }

    #[test]
    fn unit_lifecycle_feeds_detector() {
        let (clock, rt) = setup(10);
        let t = rt.create_cancel(None);
        rt.unit_started(t);
        clock.advance_to(SimTime::from_millis(5));
        assert_eq!(rt.unit_finished(t), Some(5 * MS));
        assert_eq!(rt.stats().completions, 1);
    }

    /// Drives a full overload scenario: many light tasks blocked on a lock
    /// held by one hog; the hog must be the task canceled.
    #[test]
    fn end_to_end_lock_hog_is_canceled() {
        let (clock, rt) = setup(10);
        let lock = rt.register_resource("table_lock", ResourceType::Lock);
        let canceled = Arc::new(AtomicU64::new(0));
        let canceled2 = canceled.clone();
        rt.set_cancel_action(move |key| {
            canceled2.store(key.0, Ordering::SeqCst);
        });

        let hog = rt.create_cancel(Some(99));
        rt.unit_started(hog);
        rt.report_progress(hog, 10, 100); // early in its work
        rt.get_resource(hog, lock, 1); // holds the lock from t=0

        let mut victims = Vec::new();
        for i in 0..10 {
            let v = rt.create_cancel(Some(i));
            rt.unit_started(v);
            rt.slow_by_resource(v, lock, 1); // all wait on the lock
            victims.push(v);
        }

        // Window 0: healthy completions to establish a throughput base.
        for step in 1..=20u64 {
            clock.advance_to(SimTime::from_nanos(step * 5 * MS / 2));
            let t = rt.create_cancel(None);
            rt.unit_started(t);
            rt.unit_finished(t);
            rt.free_cancel(t);
        }
        clock.advance_to(SimTime::from_millis(100));
        assert_eq!(rt.tick(), TickOutcome::Idle);

        // Window 1: only slow completions (latency >> SLO), lock still held.
        for step in 1..=10u64 {
            clock.advance_to(SimTime::from_nanos(100 * MS + step * 9 * MS));
            let t = rt.create_cancel(None);
            rt.unit_started(t);
            // Make each completion slow by back-dating the start: simulate
            // via a second task started in window 0 — simpler: finish a
            // victim that started at t=0.
            rt.unit_finished(t);
            rt.free_cancel(t);
        }
        // Finish two victims with huge latency so p99 violates the SLO.
        clock.advance_to(SimTime::from_millis(195));
        rt.unit_finished(victims[0]);
        rt.unit_finished(victims[1]);
        clock.advance_to(SimTime::from_millis(200));
        let outcome = rt.tick();
        match outcome {
            TickOutcome::ResourceOverload {
                resources,
                canceled: Some(key),
                ..
            } => {
                assert_eq!(resources, vec![lock]);
                assert_eq!(key, TaskKey(99));
                assert_eq!(canceled.load(Ordering::SeqCst), 99);
            }
            other => panic!("expected hog cancellation, got {other:?}"),
        }
        assert_eq!(rt.stats().cancel.issued, 1);
        assert_eq!(rt.timestamp_mode(), TimestampMode::Precise);
    }

    #[test]
    fn regular_overload_invokes_fallback() {
        let (clock, rt) = setup(10);
        rt.register_resource("lock", ResourceType::Lock);
        let fallback_hits = Arc::new(AtomicU64::new(0));
        let fh = fallback_hits.clone();
        rt.set_regular_overload_action(move || {
            fh.fetch_add(1, Ordering::SeqCst);
        });
        // Slow completions with NO resource waits: latency violates the
        // SLO but no application resource is bottlenecked.
        let t = rt.create_cancel(None);
        for w in 0..2u64 {
            for step in 0..5u64 {
                clock.advance_to(SimTime::from_nanos(w * 100 * MS + step * 16 * MS));
                rt.unit_started(t);
                clock.advance_to(SimTime::from_nanos(w * 100 * MS + step * 16 * MS + 15 * MS));
                rt.unit_finished(t);
            }
        }
        clock.advance_to(SimTime::from_millis(100));
        rt.tick();
        clock.advance_to(SimTime::from_millis(200));
        let outcome = rt.tick();
        assert_eq!(outcome, TickOutcome::RegularOverload);
        assert_eq!(fallback_hits.load(Ordering::SeqCst), 1);
        assert_eq!(rt.stats().regular_overloads, 1);
    }

    #[test]
    fn reexecuted_key_registers_non_cancellable() {
        let (_c, rt) = setup(10);
        rt.set_cancel_action(|_| {});
        // Force a cancellation directly through the manager by simulating
        // an issued cancel for key 5.
        {
            let mut inner = rt.inner.lock();
            inner.cancel.request_cancel(0, TaskKey(5), false);
        }
        let t = rt.create_cancel(Some(5));
        let inner = rt.inner.lock();
        assert!(!inner.tasks[&t].cancellable);
    }

    #[test]
    fn timestamp_mode_returns_to_sampled_when_calm() {
        let (clock, rt) = setup(1000);
        // Healthy traffic for two windows.
        let t = rt.create_cancel(None);
        for w in 0..2u64 {
            for step in 1..=5u64 {
                clock.advance_to(SimTime::from_nanos(w * 100 * MS + step * 19 * MS));
                rt.unit_started(t);
                rt.unit_finished(t);
            }
        }
        clock.advance_to(SimTime::from_millis(250));
        assert_eq!(rt.tick(), TickOutcome::Idle);
        assert_eq!(rt.timestamp_mode(), TimestampMode::Sampled);
    }

    /// The distributed extension: canceling a root task propagates to all
    /// linked descendants' keys via the same initiator.
    #[test]
    fn cancellation_propagates_to_descendants() {
        let (clock, rt) = setup(10);
        let lock = rt.register_resource("lock", ResourceType::Lock);
        let canceled_keys = Arc::new(parking_lot::Mutex::new(Vec::new()));
        {
            let keys = canceled_keys.clone();
            rt.set_cancel_action(move |key| keys.lock().push(key.0));
        }
        let root = rt.create_cancel(Some(100));
        let child = rt.create_cancel(Some(101));
        let grandchild = rt.create_cancel(Some(102));
        rt.link_child(root, child);
        rt.link_child(child, grandchild);
        rt.link_child(grandchild, root); // cycle: must be harmless
        rt.unit_started(root);
        rt.report_progress(root, 5, 100);
        rt.get_resource(root, lock, 1);
        let mut victims = Vec::new();
        for i in 0..10 {
            let v = rt.create_cancel(Some(i));
            rt.unit_started(v);
            rt.slow_by_resource(v, lock, 1);
            victims.push(v);
        }
        // Healthy window then stall window (as in the hog test).
        for step in 1..=20u64 {
            clock.advance_to(SimTime::from_nanos(step * 5 * MS / 2));
            let t = rt.create_cancel(None);
            rt.unit_started(t);
            rt.unit_finished(t);
            rt.free_cancel(t);
        }
        clock.advance_to(SimTime::from_millis(100));
        rt.tick();
        clock.advance_to(SimTime::from_millis(195));
        rt.unit_finished(victims[0]);
        rt.unit_finished(victims[1]);
        clock.advance_to(SimTime::from_millis(200));
        let outcome = rt.tick();
        assert!(matches!(
            outcome,
            TickOutcome::ResourceOverload {
                canceled: Some(_),
                ..
            }
        ));
        let keys = canceled_keys.lock().clone();
        assert!(keys.contains(&100), "root not canceled: {keys:?}");
        assert!(keys.contains(&101), "child not canceled: {keys:?}");
        assert!(keys.contains(&102), "grandchild not canceled: {keys:?}");
        assert_eq!(rt.stats().cancel.issued, 1);
        assert_eq!(rt.stats().cancel.propagated, 2);
    }

    #[test]
    fn link_child_ignores_unknown_and_self_links() {
        let (_c, rt) = setup(10);
        let a = rt.create_cancel(Some(1));
        rt.link_child(a, a); // self
        rt.link_child(a, TaskId(999)); // unknown child
        let inner = rt.inner.lock();
        assert!(inner.tasks[&a].children.is_empty());
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = AtroposConfig::default();
        cfg.detector.window_ns = 0;
        assert!(AtroposRuntime::try_new(cfg, clock).is_err());
    }
}
