//! Multi-producer stress for the lock-free ingest path at 2/4/8 real
//! threads.
//!
//! Three contracts under genuine parallelism:
//!
//! - **conservation**: every emitted record is harvested, handed back
//!   (`Full` with the driver declining to force), or shed into the
//!   overflow count — `emitted == drained + handed_back + dropped`;
//! - **per-producer FIFO**: each producer's records come out in its emit
//!   order (strictly increasing per-producer sequence numbers);
//! - **bounded drain**: a drainer running concurrently with live
//!   producers terminates every epoch (the boundary snapshot caps the
//!   harvest; an unpublished cell stops it), so drain-during-emit can
//!   neither deadlock nor spin unboundedly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use atropos::ids::{ResourceId, TaskId};
use atropos::lockfree::LockFreeIngest;
use atropos::trace::{EventKind, PushOutcome};

const EVENTS_PER_PRODUCER: u64 = 30_000;

/// Runs `producers` threads against a drainer that harvests continuously
/// while they emit, then checks conservation and per-producer FIFO.
fn stress(producers: u64) {
    // Queues sized so overflow genuinely happens (capacity far below the
    // event volume) and producers share queues (queue count below the
    // producer count at 8 threads).
    let ing = Arc::new(LockFreeIngest::new(4, 256));
    let emitted = Arc::new(AtomicU64::new(0));
    let handed_back = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(producers as usize + 1));

    // The single consumer: epoch after epoch while producers are live.
    // Per-producer order of the harvested stream is checked here, as
    // records arrive.
    let drainer = {
        let ing = Arc::clone(&ing);
        let stop = Arc::clone(&stop);
        let start = Arc::clone(&start);
        std::thread::spawn(move || {
            start.wait();
            let mut last_seen = vec![0u64; producers as usize];
            let mut drained = 0u64;
            let mut epochs = 0u64;
            loop {
                let finishing = stop.load(Ordering::Acquire);
                for rec in ing.drain() {
                    let p = rec.task.0 as usize;
                    assert!(
                        rec.now > last_seen[p],
                        "producer {p} reordered: {} after {}",
                        rec.now,
                        last_seen[p]
                    );
                    last_seen[p] = rec.now;
                    drained += 1;
                }
                epochs += 1;
                if finishing {
                    // One final epoch after the producers joined saw
                    // everything still buffered.
                    break;
                }
            }
            assert_eq!(ing.epochs(), epochs, "epoch counter diverged");
            drained
        })
    };

    std::thread::scope(|s| {
        for p in 0..producers {
            let ing = Arc::clone(&ing);
            let emitted = Arc::clone(&emitted);
            let handed_back = Arc::clone(&handed_back);
            let start = Arc::clone(&start);
            s.spawn(move || {
                start.wait();
                let task = TaskId(p);
                for i in 1..=EVENTS_PER_PRODUCER {
                    emitted.fetch_add(1, Ordering::Relaxed);
                    match ing.push(task, ResourceId(0), 1, EventKind::Get, i) {
                        PushOutcome::Buffered => {}
                        PushOutcome::Full(r) => {
                            // Alternate the two caller strategies: hand
                            // back (decline) or force (shed on refill).
                            if i % 2 == 0 {
                                handed_back.fetch_add(1, Ordering::Relaxed);
                            } else {
                                ing.force_push(r);
                            }
                        }
                    }
                }
            });
        }
    });
    stop.store(true, Ordering::Release);
    let drained = drainer.join().expect("drainer panicked");

    let emitted = emitted.load(Ordering::Relaxed);
    let handed_back = handed_back.load(Ordering::Relaxed);
    let dropped = ing.take_overflow_dropped();
    assert_eq!(emitted, producers * EVENTS_PER_PRODUCER);
    assert_eq!(
        drained + handed_back + dropped,
        emitted,
        "conservation violated: drained {drained} + handed_back {handed_back} \
         + dropped {dropped} != emitted {emitted}"
    );
    assert_eq!(ing.pending(), 0, "records stranded after final epoch");
    assert!(drained > 0, "nothing was ever harvested");
}

#[test]
fn two_producers_conserve_and_keep_fifo() {
    stress(2);
}

#[test]
fn four_producers_conserve_and_keep_fifo() {
    stress(4);
}

#[test]
fn eight_producers_conserve_and_keep_fifo() {
    stress(8);
}

/// A drain that starts while every producer is mid-burst still finishes:
/// the epoch boundary caps each queue's harvest at the records claimed
/// before the snapshot, so the drainer's work per epoch is bounded by
/// the queue capacity no matter how fast producers append.
#[test]
fn drain_during_emit_is_bounded_per_epoch() {
    let ing = Arc::new(LockFreeIngest::new(2, 512));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for p in 0..2u64 {
            let ing = Arc::clone(&ing);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    if let PushOutcome::Full(r) =
                        ing.push(TaskId(p), ResourceId(0), 1, EventKind::Get, i)
                    {
                        ing.force_push(r);
                    }
                }
            });
        }
        // Each epoch harvests at most queue_count * capacity records,
        // whatever the producers do concurrently.
        let cap_per_epoch = (ing.queue_count() * ing.queue_capacity()) as u64;
        for _ in 0..200 {
            let boundary = ing.begin_epoch();
            let mut out = Vec::new();
            for q in 0..ing.queue_count() {
                ing.harvest(q, &boundary, &mut out);
            }
            assert!(
                (out.len() as u64) <= cap_per_epoch,
                "epoch harvested {} > bound {}",
                out.len(),
                cap_per_epoch
            );
        }
        stop.store(true, Ordering::Relaxed);
    });
}
