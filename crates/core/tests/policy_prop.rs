//! Oracle-differential properties for the optimized policy paths.
//!
//! The skyline fast path ([`CancellationPolicy::select`]) must agree
//! *bit-for-bit* — same winner, same tie-break, same f64 score — with the
//! literal Algorithm-1 transcription kept as
//! [`CancellationPolicy::select_naive`]. Gains are drawn from a small
//! quantized set so equal scores, dominance ties, and duplicate gain
//! vectors (the hard cases for a sort-based skyline) occur constantly
//! rather than almost never.

use atropos::estimator::{EstimatorSnapshot, ResourceSnapshot, TaskGainSnapshot};
use atropos::policy::{
    ranked, ranked_naive, CancellationPolicy, CurrentUsagePolicy, HeuristicPolicy,
    MultiObjectivePolicy,
};
use atropos::{ResourceId, ResourceType, TaskId, TaskKey};
use proptest::prelude::*;

/// A gain drawn from a tiny lattice: ties and exact dominance everywhere.
fn quantized_gain() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(0.0), Just(0.25), Just(0.5), Just(1.0),]
}

/// Maximum resource count; each sampled snapshot truncates to a random
/// `1..=MAX_RES` so different dimensionalities are exercised.
const MAX_RES: usize = 3;

fn snapshot_strategy() -> impl Strategy<Value = EstimatorSnapshot> {
    let task = (
        0u64..40,
        prop::collection::vec(quantized_gain(), MAX_RES),
        prop::collection::vec(quantized_gain(), MAX_RES),
        any::<bool>(),
    )
        .prop_map(|(id, gains, current, cancellable)| TaskGainSnapshot {
            task: TaskId(id),
            key: TaskKey(id),
            cancellable,
            gains,
            current,
            progress: None,
        });
    (
        1usize..(MAX_RES + 1),
        prop::collection::vec(quantized_gain(), MAX_RES),
        prop::collection::vec(task, 0..40),
    )
        .prop_map(|(n_res, weights, mut tasks)| {
            tasks.sort_by_key(|t| t.task);
            tasks.dedup_by_key(|t| t.task);
            for t in &mut tasks {
                t.gains.truncate(n_res);
                t.current.truncate(n_res);
            }
            let weights = &weights[..n_res];
            let total: f64 = weights.iter().sum();
            let resources = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| ResourceSnapshot {
                    id: ResourceId(i as u32),
                    rtype: ResourceType::Lock,
                    contention: w,
                    normalized: w,
                    weight: if total > 0.0 { w / total } else { 0.0 },
                    wait_ns: 0,
                    hold_ns: 0,
                    acquired: 0,
                    slow_amount: 0,
                })
                .collect();
            EstimatorSnapshot {
                resources,
                tasks,
                t_exec_ns: 1,
            }
        })
}

/// Bitwise equality for optional selections: the contract is *identical*
/// output, not merely an equally good winner.
fn assert_identical(
    fast: Option<atropos::policy::Selection>,
    naive: Option<atropos::policy::Selection>,
) {
    match (fast, naive) {
        (None, None) => {}
        (Some(f), Some(n)) => {
            assert_eq!(f.task, n.task);
            assert_eq!(f.key, n.key);
            assert_eq!(
                f.score.to_bits(),
                n.score.to_bits(),
                "scores differ in bits"
            );
        }
        (f, n) => panic!("fast {f:?} vs naive {n:?}"),
    }
}

proptest! {
    /// The skyline select is bit-identical to the naive oracle for both
    /// multi-objective policies on arbitrary tie-heavy snapshots.
    #[test]
    fn select_matches_naive_oracle(snap in snapshot_strategy()) {
        assert_identical(
            MultiObjectivePolicy.select(&snap),
            MultiObjectivePolicy.select_naive(&snap),
        );
        assert_identical(
            CurrentUsagePolicy.select(&snap),
            CurrentUsagePolicy.select_naive(&snap),
        );
        // The heuristic has a single shared implementation; the default
        // `select_naive` must trivially agree with it.
        assert_identical(
            HeuristicPolicy.select(&snap),
            HeuristicPolicy.select_naive(&snap),
        );
    }

    /// The skyline ranking equals the naive candidates → all-pairs
    /// non-dominated → score → sort pipeline, element for element.
    #[test]
    fn ranked_matches_naive_oracle(snap in snapshot_strategy()) {
        let fast = ranked(&snap);
        let naive = ranked_naive(&snap);
        prop_assert_eq!(fast.len(), naive.len(), "ranking lengths differ");
        for (f, n) in fast.iter().zip(naive.iter()) {
            prop_assert_eq!(f.task, n.task);
            prop_assert_eq!(f.key, n.key);
            prop_assert_eq!(f.score.to_bits(), n.score.to_bits());
        }
    }

    /// The selected task is always the head of the ranking (when both
    /// exist), tying the tick path's pick to the recorder's explanation.
    #[test]
    fn selection_heads_the_ranking(snap in snapshot_strategy()) {
        let sel = MultiObjectivePolicy.select(&snap);
        let top = ranked(&snap).into_iter().next();
        match (sel, top) {
            (None, None) => {}
            (Some(s), Some(t)) => {
                prop_assert_eq!(s.task, t.task);
                prop_assert_eq!(s.score.to_bits(), t.score.to_bits());
            }
            (s, t) => panic!("select {s:?} vs ranked head {t:?}"),
        }
    }
}
