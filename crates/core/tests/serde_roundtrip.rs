//! Serde round-trips for every serializable public type: configurations
//! and experiment payloads survive JSON encoding unchanged.

use atropos::{AtroposConfig, PolicyKind, ResourceId, ResourceType, TaskId, TaskKey};

#[test]
fn config_roundtrips_through_json() {
    let cfg = AtroposConfig::default()
        .with_slo_ns(123_456)
        .with_policy(PolicyKind::CurrentUsage);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: AtroposConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.detector.slo_latency_ns, 123_456);
    assert_eq!(back.policy, PolicyKind::CurrentUsage);
    assert_eq!(back.cancel_min_interval_ns, cfg.cancel_min_interval_ns);
    assert_eq!(back.progress_floor, cfg.progress_floor);
    assert!(back.validate().is_ok());
}

#[test]
fn ids_roundtrip_through_json() {
    let ids = (TaskId(7), TaskKey(9), ResourceId(3), ResourceType::Memory);
    let json = serde_json::to_string(&ids).unwrap();
    let back: (TaskId, TaskKey, ResourceId, ResourceType) = serde_json::from_str(&json).unwrap();
    assert_eq!(back, ids);
}

#[test]
fn invalid_config_still_deserializes_but_fails_validation() {
    let mut cfg = AtroposConfig::default();
    cfg.detector.window_ns = 0;
    let json = serde_json::to_string(&cfg).unwrap();
    let back: AtroposConfig = serde_json::from_str(&json).unwrap();
    assert!(back.validate().is_err());
}

#[test]
fn all_policy_kinds_roundtrip() {
    for kind in [
        PolicyKind::MultiObjective,
        PolicyKind::Heuristic,
        PolicyKind::CurrentUsage,
    ] {
        let json = serde_json::to_string(&kind).unwrap();
        let back: PolicyKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, kind);
    }
}
