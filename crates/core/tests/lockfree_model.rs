//! Model-based differential for the lock-free ingest path.
//!
//! A proptest op-sequence — pushes, forced pushes, epoch advances,
//! per-queue harvests, full drains — drives [`LockFreeIngest`] against a
//! single-threaded reference model (per-queue `VecDeque`s with the same
//! logical-capacity and shed-newest semantics). After every op the two
//! must agree on the push outcome, the exact harvested record sequence,
//! the pending count, and the overflow accounting: no record is ever
//! lost, duplicated, or reordered within its producer. This mirrors the
//! executor-vs-reference-model proptest of `async-live`: the model is the
//! specification, the queue is the implementation under test.

use std::collections::VecDeque;

use atropos::ids::{ResourceId, TaskId};
use atropos::lockfree::{EpochBoundary, LockFreeIngest};
use atropos::trace::{EventKind, PushOutcome, TraceRecord};
use proptest::prelude::*;

/// One step of the differential. `task` is masked onto the queue count;
/// `now_step` accumulates so emission stays time-monotone, as in the
/// runtime.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Regular push; on `Full` the record is handed back (and dropped by
    /// the driver, as a shedding caller would after a failed flush).
    Push { task: u8, now_step: u16 },
    /// Forced push: sheds (counts) the record when the queue stays full.
    Force { task: u8, now_step: u16 },
    /// Open a new drain epoch (replaces any outstanding boundary).
    BeginEpoch,
    /// Harvest one queue up to the outstanding boundary (no-op without
    /// one, and a second harvest of the same queue must yield nothing).
    Harvest { queue: u8 },
    /// One full epoch over every queue (what a tick drain does).
    DrainAll,
}

/// The single-threaded specification of `LockFreeIngest`.
struct Model {
    queues: Vec<VecDeque<TraceRecord>>,
    capacity: usize,
    dropped: u64,
    /// Records-per-queue still harvestable under the open boundary.
    boundary: Option<Vec<usize>>,
}

impl Model {
    fn new(queues: usize, capacity: usize) -> Self {
        Self {
            queues: (0..queues.next_power_of_two())
                .map(|_| VecDeque::new())
                .collect(),
            capacity,
            dropped: 0,
            boundary: None,
        }
    }

    fn queue_idx(&self, task: TaskId) -> usize {
        task.0 as usize & (self.queues.len() - 1)
    }

    /// Mirrors `LockFreeIngest::push`: `Full` at the logical capacity.
    fn push(&mut self, rec: TraceRecord) -> bool {
        let q = self.queue_idx(rec.task);
        if self.queues[q].len() >= self.capacity {
            return false;
        }
        self.queues[q].push_back(rec);
        true
    }

    /// Mirrors `force_push`: shed-newest into the drop count.
    fn force_push(&mut self, rec: TraceRecord) {
        if !self.push(rec) {
            self.dropped += 1;
        }
    }

    fn begin_epoch(&mut self) {
        self.boundary = Some(self.queues.iter().map(|q| q.len()).collect());
    }

    fn harvest(&mut self, q: usize) -> Vec<TraceRecord> {
        let Some(boundary) = &mut self.boundary else {
            return Vec::new();
        };
        let n = boundary[q];
        boundary[q] = 0;
        self.queues[q].drain(..n).collect()
    }

    fn drain_all(&mut self) -> Vec<TraceRecord> {
        self.begin_epoch();
        let out = (0..self.queues.len())
            .flat_map(|q| self.harvest(q))
            .collect();
        self.boundary = None;
        out
    }

    fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, 0u16..100).prop_map(|(task, now_step)| Op::Push { task, now_step }),
        (0u8..12, 0u16..100).prop_map(|(task, now_step)| Op::Force { task, now_step }),
        Just(Op::BeginEpoch),
        (0u8..8).prop_map(|queue| Op::Harvest { queue }),
        Just(Op::DrainAll),
    ]
}

fn rec(task: u8, now: u64) -> TraceRecord {
    TraceRecord {
        now,
        task: TaskId(task as u64),
        rid: ResourceId(task as u32 % 3),
        amount: 1 + now % 5,
        kind: match now % 3 {
            0 => EventKind::Get,
            1 => EventKind::Free,
            _ => EventKind::SlowBy,
        },
    }
}

proptest! {
    /// Op-sequence differential over varying geometries: every
    /// interleaving of push / force / epoch-advance / harvest / drain
    /// agrees with the reference model exactly.
    #[test]
    fn lockfree_ingest_matches_reference_model(
        queues in 1usize..5,
        capacity in 1usize..24,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let ing = LockFreeIngest::new(queues, capacity);
        let mut model = Model::new(queues, capacity);
        prop_assert_eq!(ing.queue_count(), model.queues.len());
        let mut now = 0u64;
        let mut real_boundary: Option<EpochBoundary> = None;
        let mut emitted = 0u64;
        let mut harvested = 0u64;
        let mut handed_back = 0u64;

        for op in ops {
            match op {
                Op::Push { task, now_step } => {
                    now += now_step as u64;
                    emitted += 1;
                    let r = rec(task, now);
                    let real_ok = matches!(
                        ing.push(r.task, r.rid, r.amount, r.kind, r.now),
                        PushOutcome::Buffered
                    );
                    let model_ok = model.push(r);
                    prop_assert_eq!(real_ok, model_ok, "push outcome diverged");
                    if !real_ok {
                        handed_back += 1;
                    }
                }
                Op::Force { task, now_step } => {
                    now += now_step as u64;
                    emitted += 1;
                    let r = rec(task, now);
                    ing.force_push(r);
                    model.force_push(r);
                }
                Op::BeginEpoch => {
                    real_boundary = Some(ing.begin_epoch());
                    model.begin_epoch();
                }
                Op::Harvest { queue } => {
                    if let Some(boundary) = &real_boundary {
                        let q = queue as usize % ing.queue_count();
                        let mut out = Vec::new();
                        ing.harvest(q, boundary, &mut out);
                        let expect = model.harvest(q);
                        prop_assert_eq!(&out, &expect, "harvest of queue {} diverged", q);
                        harvested += out.len() as u64;
                    }
                }
                Op::DrainAll => {
                    // drain() opens its own (newer) epoch; the stale
                    // boundary must then harvest nothing (enforced below
                    // by the next Harvest ops through the model's zeroed
                    // counts and the queue's `pos < upto` guard).
                    let out = ing.drain();
                    let expect = model.drain_all();
                    prop_assert_eq!(&out, &expect, "full drain diverged");
                    harvested += out.len() as u64;
                }
            }
            prop_assert_eq!(ing.pending(), model.pending(), "pending diverged");
        }

        // Conservation: every emitted record was harvested, is still
        // pending, was handed back to the caller, or was shed (counted).
        let final_harvest = ing.drain();
        let expect = model.drain_all();
        prop_assert_eq!(&final_harvest, &expect, "final drain diverged");
        harvested += final_harvest.len() as u64;
        let dropped = ing.take_overflow_dropped();
        prop_assert_eq!(dropped, model.dropped, "overflow accounting diverged");
        prop_assert_eq!(
            harvested + handed_back + dropped,
            emitted,
            "records lost or duplicated"
        );
        prop_assert_eq!(ing.pending(), 0);
    }
}
