//! Multi-threaded stress test for sharded trace ingestion.
//!
//! Eight producer threads hammer the tracing API on their own tasks while
//! a ticker drains concurrently and a churn thread creates and frees
//! tasks (so replay races against task removal). The accounting contract
//! under this contention is conservation: every emitted event is counted
//! exactly once — applied (`trace_events`) or ignored (unknown task or
//! resource at replay time, or shed by stripe overflow while the state
//! lock was busy) — and no task record leaks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use atropos::{AtroposConfig, AtroposRuntime, IngestMode, ResourceId, ResourceType};
use atropos_sim::SystemClock;

const PRODUCERS: u64 = 8;
const EVENTS_PER_PRODUCER: u64 = 10_000;
const CHURN_TASKS: u64 = 2_000;

#[test]
fn concurrent_producers_conserve_event_accounting_sharded() {
    concurrent_producers_conserve_event_accounting(IngestMode::Sharded);
}

#[test]
fn concurrent_producers_conserve_event_accounting_lockfree() {
    concurrent_producers_conserve_event_accounting(IngestMode::LockFree);
}

fn concurrent_producers_conserve_event_accounting(mode: IngestMode) {
    let clock = Arc::new(SystemClock::new());
    let cfg = AtroposConfig {
        ingest_mode: mode,
        ingest_stripes: 4,
        // Far smaller than the event volume so overflow handling (the
        // mid-window flush and, when the ticker holds the state lock,
        // shedding — drop-oldest under Sharded, shed-newest under
        // LockFree) is actually exercised.
        ingest_stripe_capacity: 128,
        ..AtroposConfig::default()
    };
    let rt = Arc::new(AtroposRuntime::new(cfg, clock));
    let pool = rt.register_resource("pool", ResourceType::Memory);
    let lock = rt.register_resource("lock", ResourceType::Lock);

    let emitted = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Ticker: drains concurrently with the producers, the way a real
    // integration's periodic driver would.
    let ticker = {
        let rt = rt.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut ticks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                rt.tick();
                ticks += 1;
                std::thread::yield_now();
            }
            ticks
        })
    };

    // Churn: tasks created, traced once, and freed while producers and
    // ticker run — replay must tolerate records whose task is gone.
    let churner = {
        let rt = rt.clone();
        let emitted = emitted.clone();
        std::thread::spawn(move || {
            for _ in 0..CHURN_TASKS {
                let t = rt.create_cancel(None);
                rt.get_resource(t, pool, 1);
                emitted.fetch_add(1, Ordering::Relaxed);
                rt.free_cancel(t);
            }
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let rt = rt.clone();
            let emitted = emitted.clone();
            std::thread::spawn(move || {
                let task = rt.create_cancel(Some(p));
                rt.unit_started(task);
                for i in 0..EVENTS_PER_PRODUCER {
                    match i % 4 {
                        0 => rt.get_resource(task, pool, 1 + i % 7),
                        1 => rt.free_resource(task, pool, 1 + i % 7),
                        2 => rt.slow_by_resource(task, lock, 1),
                        // An unregistered resource: must be counted as
                        // ignored, never dropped on the floor.
                        _ => rt.get_resource(task, ResourceId(999), 1),
                    }
                    emitted.fetch_add(1, Ordering::Relaxed);
                }
                rt.unit_finished(task);
                rt.free_cancel(task);
            })
        })
        .collect();

    for h in producers {
        h.join().expect("producer panicked");
    }
    churner.join().expect("churner panicked");
    stop.store(true, Ordering::Relaxed);
    let ticks = ticker.join().expect("ticker panicked");
    assert!(ticks > 0);

    // stats() performs the final drain.
    let stats = rt.stats();
    let sent = emitted.load(Ordering::Relaxed);
    assert_eq!(sent, PRODUCERS * EVENTS_PER_PRODUCER + CHURN_TASKS);
    assert_eq!(
        stats.trace_events + stats.ignored_events,
        sent,
        "event accounting leaked: trace {} + ignored {} != sent {} \
         (mid-window flushes: {})",
        stats.trace_events,
        stats.ignored_events,
        sent,
        stats.mid_window_flushes
    );
    // At least the quarter aimed at the unregistered resource is ignored.
    assert!(stats.ignored_events >= PRODUCERS * EVENTS_PER_PRODUCER / 4);
    // Most of the valid traffic actually landed in the accounting: the
    // buffers are small, but every stripe-full either flushes inline or
    // sheds only that stripe's oldest records.
    assert!(
        stats.trace_events > 0,
        "no events survived to the accounting state"
    );
    assert_eq!(rt.ingest_pending(), 0);
    assert_eq!(rt.task_count(), 0, "task records leaked");
}
