//! The supervisor-thread pattern: a [`Ticker`] drives `tick()` on its own
//! thread at a wall-clock cadence while application threads emit tracing
//! events and an observer polls [`AtroposRuntime::stats_relaxed`] — the
//! exact thread topology of a live integration (`atropos-live`, or the
//! paper's MySQL plugin). The contract under this interleaving: no
//! panics, no lost events, counters from the relaxed snapshot never
//! exceed the final drained truth.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use atropos::{AtroposConfig, AtroposRuntime, ResourceType, Ticker};
use atropos_sim::SystemClock;

const PRODUCERS: u64 = 4;
const OPS_PER_PRODUCER: u64 = 5_000;

#[test]
fn ticker_thread_races_event_producers_safely() {
    let rt = Arc::new(AtroposRuntime::new(
        AtroposConfig::default(),
        Arc::new(SystemClock::new()),
    ));
    let lock = rt.register_resource("lock", ResourceType::Lock);

    // Supervisor thread: ticks every millisecond, concurrently with all
    // producers below.
    let mut ticker = Ticker::spawn(rt.clone(), Duration::from_millis(1), |_| {});

    // Observer thread: polls the non-draining snapshot while everything
    // races. Its only job is to not deadlock, not panic, and report
    // monotonically plausible counters.
    let stop_observer = Arc::new(AtomicBool::new(false));
    let observer = {
        let rt = rt.clone();
        let stop = stop_observer.clone();
        std::thread::spawn(move || {
            let mut max_seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = rt.stats_relaxed();
                assert!(
                    s.trace_events >= max_seen,
                    "applied-event counter went backwards: {} < {}",
                    s.trace_events,
                    max_seen
                );
                max_seen = s.trace_events;
                std::thread::yield_now();
            }
            max_seen
        })
    };

    let emitted = Arc::new(AtomicU64::new(0));
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let rt = rt.clone();
            let emitted = emitted.clone();
            std::thread::spawn(move || {
                for i in 0..OPS_PER_PRODUCER {
                    let task = rt.create_cancel(Some(p * OPS_PER_PRODUCER + i));
                    rt.unit_started(task);
                    rt.get_resource(task, lock, 1);
                    rt.free_resource(task, lock, 1);
                    rt.unit_finished(task);
                    rt.free_cancel(task);
                    emitted.fetch_add(2, Ordering::Relaxed);
                }
            })
        })
        .collect();

    for h in producers {
        h.join().expect("producer panicked");
    }
    ticker.stop();
    stop_observer.store(true, Ordering::Relaxed);
    let relaxed_max = observer.join().expect("observer panicked");

    let ticks_before_final = rt.stats_relaxed().ticks;
    assert!(ticks_before_final > 0, "supervisor never ticked");
    assert_eq!(ticker.ticks(), ticks_before_final);

    // Final truth: stats() drains whatever the last tick had not. Every
    // get/free pair emitted by every producer must be applied — all tasks
    // and the resource were registered, so nothing may be ignored or shed.
    let stats = rt.stats();
    let sent = emitted.load(Ordering::Relaxed);
    assert_eq!(sent, PRODUCERS * OPS_PER_PRODUCER * 2);
    assert_eq!(
        stats.trace_events + stats.ignored_events,
        sent,
        "event accounting leaked under ticker contention"
    );
    // The relaxed observer can lag but never overshoot the drained total.
    assert!(relaxed_max <= stats.trace_events);
    assert_eq!(rt.ingest_pending(), 0);
    assert_eq!(rt.task_count(), 0, "task records leaked");
}
