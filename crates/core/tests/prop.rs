//! Property-based tests for the framework's accounting and policy
//! invariants.

use atropos::accounting::UsageStats;
use atropos::estimator::{EstimatorSnapshot, ResourceSnapshot, TaskGainSnapshot};
use atropos::policy::{CancellationPolicy, CurrentUsagePolicy, MultiObjectivePolicy};
use atropos::{ResourceId, ResourceType, TaskId, TaskKey};
use proptest::prelude::*;

/// Arbitrary event for the accounting state machine.
#[derive(Debug, Clone)]
enum Ev {
    Get(u64),
    Free(u64),
    Slow(u64),
    Roll,
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (1u64..100).prop_map(Ev::Get),
        (1u64..100).prop_map(Ev::Free),
        (1u64..10).prop_map(Ev::Slow),
        Just(Ev::Roll),
    ]
}

proptest! {
    /// Summed window figures always equal the cumulative totals after the
    /// final roll, for any event sequence with non-decreasing timestamps.
    #[test]
    fn window_sums_match_totals(evs in prop::collection::vec(ev_strategy(), 0..200),
                                gaps in prop::collection::vec(1u64..1_000, 0..200)) {
        let mut s = UsageStats::default();
        let mut now = 0u64;
        let (mut w_wait, mut w_hold, mut w_acq, mut w_freed, mut w_slow) = (0u64, 0, 0, 0, 0);
        for (i, ev) in evs.iter().enumerate() {
            now += gaps.get(i).copied().unwrap_or(1);
            match ev {
                Ev::Get(a) => s.on_get(now, *a),
                Ev::Free(a) => s.on_free(now, *a),
                Ev::Slow(a) => s.on_slow(now, *a),
                Ev::Roll => {
                    s.roll_window(now);
                    let w = s.window();
                    w_wait += w.wait_ns;
                    w_hold += w.hold_ns;
                    w_acq += w.acquired;
                    w_freed += w.freed;
                    w_slow += w.slow_amount;
                }
            }
        }
        now += 1;
        s.roll_window(now);
        let w = s.window();
        w_wait += w.wait_ns;
        w_hold += w.hold_ns;
        w_acq += w.acquired;
        w_freed += w.freed;
        w_slow += w.slow_amount;
        prop_assert_eq!(w_wait, s.total_wait_ns);
        prop_assert_eq!(w_hold, s.total_hold_ns);
        prop_assert_eq!(w_acq, s.acquired);
        prop_assert_eq!(w_freed, s.freed);
        prop_assert_eq!(w_slow, s.slow_amount);
        // Held units never exceed acquired and never underflow.
        prop_assert!(s.held <= s.acquired);
    }
}

fn snapshot_strategy() -> impl Strategy<Value = EstimatorSnapshot> {
    let n_res = 3usize;
    let task = (0u64..50, prop::collection::vec(0.0f64..5.0, n_res)).prop_map(move |(id, g)| {
        TaskGainSnapshot {
            task: TaskId(id),
            key: TaskKey(id),
            cancellable: true,
            gains: g.clone(),
            current: g,
            progress: None,
        }
    });
    (
        prop::collection::vec(0.0f64..1.0, n_res),
        prop::collection::vec(task, 0..30),
    )
        .prop_map(move |(weights, mut tasks)| {
            // De-duplicate task ids so determinism checks are meaningful.
            tasks.sort_by_key(|t| t.task);
            tasks.dedup_by_key(|t| t.task);
            let total: f64 = weights.iter().sum();
            let resources = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| ResourceSnapshot {
                    id: ResourceId(i as u32),
                    rtype: ResourceType::Lock,
                    contention: w,
                    normalized: w,
                    weight: if total > 0.0 { w / total } else { 0.0 },
                    wait_ns: 0,
                    hold_ns: 0,
                    acquired: 0,
                    slow_amount: 0,
                })
                .collect();
            EstimatorSnapshot {
                resources,
                tasks,
                t_exec_ns: 1,
            }
        })
}

proptest! {
    /// The multi-objective policy's pick is never dominated by another
    /// candidate and never a non-cancellable or zero-gain task.
    #[test]
    fn selection_is_non_dominated(snap in snapshot_strategy()) {
        if let Some(sel) = MultiObjectivePolicy.select(&snap) {
            let picked = snap.tasks.iter().find(|t| t.task == sel.task).unwrap();
            prop_assert!(picked.cancellable);
            prop_assert!(picked.gains.iter().any(|&g| g > 0.0));
            for other in &snap.tasks {
                if other.task == picked.task {
                    continue;
                }
                let dominates = other
                    .gains
                    .iter()
                    .zip(picked.gains.iter())
                    .all(|(o, p)| o >= p)
                    && other
                        .gains
                        .iter()
                        .zip(picked.gains.iter())
                        .any(|(o, p)| o > p);
                prop_assert!(!dominates, "picked task is dominated by {:?}", other.task);
            }
        }
    }

    /// Selection is deterministic: the same snapshot yields the same pick.
    #[test]
    fn selection_is_deterministic(snap in snapshot_strategy()) {
        let a = MultiObjectivePolicy.select(&snap);
        let b = MultiObjectivePolicy.select(&snap);
        prop_assert_eq!(a.map(|s| s.task), b.map(|s| s.task));
        let c = CurrentUsagePolicy.select(&snap);
        let d = CurrentUsagePolicy.select(&snap);
        prop_assert_eq!(c.map(|s| s.task), d.map(|s| s.task));
    }

    /// Scaling every task's gains on one resource by a positive constant
    /// never changes *dominance* relations; the winner remains in the
    /// non-dominated set computed after scaling.
    #[test]
    fn dominance_invariant_under_per_resource_scaling(
        snap in snapshot_strategy(),
        scale in 0.1f64..10.0,
    ) {
        let before = MultiObjectivePolicy.select(&snap);
        let mut scaled = snap.clone();
        for t in &mut scaled.tasks {
            if let Some(g) = t.gains.get_mut(0) {
                *g *= scale;
            }
            if let Some(g) = t.current.get_mut(0) {
                *g *= scale;
            }
        }
        if let Some(sel) = MultiObjectivePolicy.select(&scaled) {
            let picked = scaled.tasks.iter().find(|t| t.task == sel.task).unwrap();
            for other in &scaled.tasks {
                if other.task == picked.task {
                    continue;
                }
                let dominates = other.gains.iter().zip(&picked.gains).all(|(o, p)| o >= p)
                    && other.gains.iter().zip(&picked.gains).any(|(o, p)| o > p);
                prop_assert!(!dominates);
            }
        }
        // If there was nothing selectable before, scaling cannot create
        // gain out of nothing (scale > 0 preserves zero/non-zero).
        if before.is_none() {
            prop_assert!(MultiObjectivePolicy.select(&scaled).is_none());
        }
    }
}
