//! Port overhead guard: the `RuntimePort` seam must be free.
//!
//! Both substrates now emit tracing through `Arc<dyn RuntimePort>`
//! instead of calling `AtroposRuntime` inherent methods, so every hot
//! `get_resource` pays one vtable dispatch. This guard re-measures that
//! ported emit path and holds it to within 2% of the `get_resource/
//! sampled` figure recorded in `BENCH_trace.json` — the same inherent
//! call the baseline was taken on, so any regression is the port seam
//! itself.
//!
//! The baseline is an absolute wall-clock figure from the machine that
//! recorded it; on slower hardware a faithful port would fail a purely
//! absolute bound for reasons that have nothing to do with the seam. So
//! the guard also measures the *un-ported* inherent call in the same
//! process and compares against the larger of the two anchors: a fast
//! machine is held to the checked-in baseline, a slow one to its own
//! direct-call figure — either way the port may cost at most 2%. As in
//! `recorder_overhead.rs`, the bound only binds in optimized builds (a
//! debug build measures the compiler, not the design), but the path is
//! exercised either way.

use std::sync::Arc;

use atropos::{AtroposConfig, AtroposRuntime, ResourceType};
use atropos_sim::{Clock, SystemClock};
use atropos_substrate::RuntimePort;

/// Allowed regression over the checked-in baseline in optimized builds.
const MAX_REGRESSION: f64 = 1.02;
/// Measurement attempts before declaring a real regression (the minimum
/// over all attempts is compared, so transient scheduling noise only
/// costs retries). The port seam is a single vtable hop — around a
/// nanosecond on an ~80 ns call — so the estimator needs more attempts
/// than the recorder guard to resolve a 2% question.
const ATTEMPTS: u32 = 25;
/// Per-attempt measurement budget handed to the criterion shim.
const BUDGET_MS: u64 = 40;

/// Pulls a leaf number out of `BENCH_trace.json` by key. The vendored
/// serde_json shim parses into typed structs, not an indexable `Value`,
/// so a baseline file with a known shape is scanned directly.
fn baseline_ns(json: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\":");
    let at = json
        .find(&tag)
        .unwrap_or_else(|| panic!("{key} not in BENCH_trace.json"));
    let rest = &json[at + tag.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("{key}: {e}"))
}

/// Minimum ns/iter over `runs` measurements taken with the vendored
/// criterion shim's own adaptive-batch loop, so the figure is directly
/// comparable to the `BENCH_trace.json` baseline it is checked against.
fn min_ns_per_iter(runs: u32, budget_ms: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        best = best.min(criterion::measure_ns_per_iter(
            std::time::Duration::from_millis(budget_ms),
            &mut f,
        ));
    }
    best
}

#[test]
fn ported_emit_path_stays_within_two_percent_of_baseline() {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trace.json"
    ))
    .expect("BENCH_trace.json at repo root");
    let base = baseline_ns(&json, "get_resource/sampled");

    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let rt = Arc::new(AtroposRuntime::new(AtroposConfig::default(), clock));
    let rid = rt.register_resource("bench", ResourceType::Memory);
    let task = rt.create_cancel(Some(1));
    rt.unit_started(task);
    // Same-process calibration: the exact call BENCH_trace.json's figure
    // was recorded on, so hardware drift cancels out of the comparison.
    // Each attempt measures the two paths back to back and the *best
    // paired ratio* is what the bound is checked against: one clean pair
    // is enough to acquit the seam, while a real regression inflates
    // every pair. (Comparing separately-taken minima instead would let
    // frequency scaling between the two pools fake a regression.)
    let port: Arc<dyn RuntimePort> = rt.clone();
    let mut direct = f64::INFINITY;
    let mut measured = f64::INFINITY;
    let mut ratio = f64::INFINITY;
    for _ in 0..ATTEMPTS {
        let d = min_ns_per_iter(1, BUDGET_MS, || {
            rt.get_resource(std::hint::black_box(task), std::hint::black_box(rid), 1)
        });
        let p = min_ns_per_iter(1, BUDGET_MS, || {
            port.get(std::hint::black_box(task), std::hint::black_box(rid), 1)
        });
        direct = direct.min(d);
        measured = measured.min(p);
        ratio = ratio.min(p / d);
    }

    if cfg!(debug_assertions) {
        // Unoptimized build: the 2% bound would measure rustc -O0, not
        // the port. Exercise the path and sanity-bound it loosely.
        assert!(
            measured < base.max(direct) * 100.0,
            "ported emit path unrecognizably slow even for a debug build: \
             {measured:.2} ns/iter vs baseline {base:.2} / direct {direct:.2}"
        );
        return;
    }
    // Two ways to pass, strictest applicable wins: the reference-machine
    // contract (absolute figure within 2% of the checked-in baseline), or
    // the seam contract (port path within 2% of the same-process direct
    // call) for hardware the baseline doesn't describe.
    assert!(
        measured <= base * MAX_REGRESSION || ratio <= MAX_REGRESSION,
        "ported emit path regressed past the port budget: {measured:.2} \
         ns/iter vs baseline {base:.2}, best paired overhead {:.2}% vs \
         direct {direct:.2} ns/iter (limit {:.0}%)",
        (ratio - 1.0) * 100.0,
        (MAX_REGRESSION - 1.0) * 100.0
    );
}
