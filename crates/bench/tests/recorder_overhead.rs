//! Recorder overhead guard: the observability layer must be free when
//! disabled and non-blocking when enabled.
//!
//! The disabled guard re-measures the PR 1 emit path (`ShardedIngest::
//! push`, the producer-visible hot-path cost recorded in
//! `BENCH_trace.json`) with the recorder hooks compiled in and no
//! recorder attached, and holds it to within 2% of the checked-in
//! baseline. The threshold only binds in optimized builds — a debug
//! build measures the compiler, not the design — but the measurement
//! always runs so the path is exercised either way.

use std::sync::Arc;

use atropos::record::{CancelOrigin, DecisionEvent};
use atropos::trace::{PushOutcome, ShardedIngest};
use atropos_obs::FlightRecorder;

/// Allowed regression over the checked-in baseline in optimized builds.
const MAX_REGRESSION: f64 = 1.02;
/// Measurement attempts before declaring a real regression (the minimum
/// over all attempts is compared, so transient scheduling noise only
/// costs retries).
const ATTEMPTS: u32 = 8;
/// Per-attempt measurement budget handed to the criterion shim.
const BUDGET_MS: u64 = 60;

/// Pulls a leaf number out of `BENCH_trace.json` by key. The vendored
/// serde_json shim parses into typed structs, not an indexable `Value`,
/// so a baseline file with a known shape is scanned directly.
fn baseline_ns(json: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\":");
    let at = json
        .find(&tag)
        .unwrap_or_else(|| panic!("{key} not in BENCH_trace.json"));
    let rest = &json[at + tag.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("{key}: {e}"))
}

/// Minimum ns/iter over `runs` measurements taken with the vendored
/// criterion shim's own adaptive-batch loop, so the figure is directly
/// comparable to the `BENCH_trace.json` baseline it is checked against.
/// The minimum is the standard robust estimator for "how fast can this
/// go", immune to one-sided scheduling noise.
fn min_ns_per_iter(runs: u32, budget_ms: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        best = best.min(criterion::measure_ns_per_iter(
            std::time::Duration::from_millis(budget_ms),
            &mut f,
        ));
    }
    best
}

#[test]
fn disabled_recorder_keeps_the_emit_path_within_two_percent_of_baseline() {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trace.json"
    ))
    .expect("BENCH_trace.json at repo root");
    let base = baseline_ns(&json, "sharded_push");

    let ing = ShardedIngest::new(8, 1 << 14);
    let task = atropos::TaskId(1);
    let rid = atropos::ResourceId(0);
    let measured = min_ns_per_iter(ATTEMPTS, BUDGET_MS, || {
        match ing.push(task, rid, 1, atropos::trace::EventKind::Get, 0) {
            PushOutcome::Buffered => {}
            PushOutcome::Full(_) => {
                let _ = ing.drain();
            }
        }
    });

    if cfg!(debug_assertions) {
        // Unoptimized build: the 2% bound would measure rustc -O0, not
        // the recorder. Exercise the path and sanity-bound it loosely.
        assert!(
            measured < base * 100.0,
            "emit path unrecognizably slow even for a debug build: \
             {measured:.2} ns/iter vs baseline {base:.2}"
        );
        return;
    }
    assert!(
        measured <= base * MAX_REGRESSION,
        "disabled-recorder emit path regressed: {measured:.2} ns/iter vs \
         baseline {base:.2} (limit {:.2})",
        base * MAX_REGRESSION
    );
}

#[test]
fn enabled_recorder_never_blocks_and_accounts_for_every_event() {
    // A deliberately tiny ring hammered from several threads: every
    // record call must return (push a seq, write or shed) and the
    // accounting identity drained + dropped + overwritten == recorded
    // must hold exactly — nothing waits, nothing is lost silently.
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 5_000;
    let ring = Arc::new(FlightRecorder::new(4));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ring = ring.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    ring.record(DecisionEvent::CancelIssued {
                        tick: t,
                        key: atropos::TaskKey(i),
                        now_ns: i,
                        origin: CancelOrigin::Policy,
                    });
                }
            });
        }
    });
    assert_eq!(ring.recorded(), THREADS * PER_THREAD);
    let drained = ring.drain().len() as u64;
    assert!(drained <= 4, "ring of 4 slots drained {drained} events");
    assert!(
        ring.overwritten() > 0,
        "hammering a 4-slot ring with {} events must overwrite",
        THREADS * PER_THREAD
    );
    assert_eq!(
        drained + ring.dropped() + ring.overwritten(),
        ring.recorded(),
        "recorder accounting leak: drained {drained} dropped {} overwritten {} recorded {}",
        ring.dropped(),
        ring.overwritten(),
        ring.recorded()
    );
}
