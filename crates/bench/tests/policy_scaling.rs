//! Policy scaling guard: Algorithm 1 must stay within a constant factor
//! of the greedy baseline.
//!
//! Before the skyline rewrite, `multi_objective/1024` ran the all-pairs
//! non-dominated filter — O(n²·R) — and sat three orders of magnitude
//! above `heuristic/1024`. The sort-based skyline brings it to O(n·R),
//! the same complexity class as the heuristic's single-resource scan, so
//! the ratio between the two is a small constant. This guard holds that
//! ratio at 10× on the bench suite's own 1024-task snapshot: anyone who
//! reintroduces an accidentally quadratic step into the selection path
//! fails this test loudly instead of silently regressing the tick.
//!
//! The bound is a *paired ratio* measured in-process — both policies run
//! on the same snapshot, same machine, interleaved attempts, minimum
//! ratio wins — so hardware speed cancels out and the guard is meaningful
//! on any builder. Like the other perf guards, the numeric bound only
//! binds in optimized builds; a debug build still exercises both paths.

use atropos::estimator::{EstimatorSnapshot, ResourceSnapshot, TaskGainSnapshot};
use atropos::policy::{CancellationPolicy, HeuristicPolicy, MultiObjectivePolicy};
use atropos::{ResourceId, ResourceType, TaskId, TaskKey};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Maximum allowed `multi_objective/1024 ÷ heuristic/1024` in optimized
/// builds (the ISSUE's acceptance bound).
const MAX_RATIO: f64 = 10.0;
/// Interleaved measurement attempts; the minimum paired ratio is used.
const ATTEMPTS: u32 = 15;
/// Per-attempt measurement budget handed to the criterion shim.
const BUDGET_MS: u64 = 40;

/// Same snapshot builder (and seed) as `benches/policy.rs`, so the guard
/// measures exactly the workload the recorded bench figures describe.
fn snapshot(n_tasks: usize, seed: u64) -> EstimatorSnapshot {
    const N_RESOURCES: usize = 7;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let resources = (0..N_RESOURCES)
        .map(|i| {
            let c = rng.gen_range(0.0..2.0);
            ResourceSnapshot {
                id: ResourceId(i as u32),
                rtype: ResourceType::Lock,
                contention: c,
                normalized: c / 10.0,
                weight: 1.0 / N_RESOURCES as f64,
                wait_ns: 0,
                hold_ns: 0,
                acquired: 0,
                slow_amount: 0,
            }
        })
        .collect();
    let tasks = (0..n_tasks)
        .map(|i| {
            let gains: Vec<f64> = (0..N_RESOURCES).map(|_| rng.gen_range(0.0..1.0)).collect();
            TaskGainSnapshot {
                task: TaskId(i as u64),
                key: TaskKey(i as u64),
                cancellable: true,
                current: gains.clone(),
                gains,
                progress: Some(rng.gen_range(0.02..1.0)),
            }
        })
        .collect();
    EstimatorSnapshot {
        resources,
        tasks,
        t_exec_ns: 1_000_000,
    }
}

fn ns_per_iter(budget_ms: u64, mut f: impl FnMut()) -> f64 {
    criterion::measure_ns_per_iter(std::time::Duration::from_millis(budget_ms), &mut f)
}

#[test]
fn multi_objective_within_ten_x_of_heuristic_at_1024() {
    let snap = snapshot(1024, 7);
    // Both selections must agree on the workload being non-trivial.
    assert!(MultiObjectivePolicy.select(&snap).is_some());
    assert!(HeuristicPolicy.select(&snap).is_some());

    let mut best_ratio = f64::INFINITY;
    let mut mo_best = f64::INFINITY;
    let mut h_best = f64::INFINITY;
    for _ in 0..ATTEMPTS {
        let mo = ns_per_iter(BUDGET_MS, || {
            black_box(MultiObjectivePolicy.select(black_box(&snap)));
        });
        let h = ns_per_iter(BUDGET_MS, || {
            black_box(HeuristicPolicy.select(black_box(&snap)));
        });
        mo_best = mo_best.min(mo);
        h_best = h_best.min(h);
        best_ratio = best_ratio.min(mo / h);
    }

    if cfg!(debug_assertions) {
        // Unoptimized builds measure rustc -O0, not the algorithm; keep a
        // loose sanity bound so the guard still runs the code.
        assert!(
            best_ratio <= MAX_RATIO * 20.0,
            "multi-objective unrecognizably slow even for a debug build: \
             {mo_best:.0} ns/iter vs heuristic {h_best:.0} ns/iter"
        );
        return;
    }
    assert!(
        best_ratio <= MAX_RATIO,
        "multi_objective/1024 regressed to {mo_best:.0} ns/iter, \
         {best_ratio:.1}x heuristic/1024 ({h_best:.0} ns/iter); \
         limit is {MAX_RATIO:.0}x — did the selection path go quadratic?"
    );
}
