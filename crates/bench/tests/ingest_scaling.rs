//! Emit-path scaling-efficiency guard for the lock-free ingest default.
//!
//! The tentpole's whole point is that N producers emitting concurrently
//! get close to N× one producer's throughput: the push path is a
//! wait-free append to a per-producer ring, so producers on distinct
//! cores never serialize against each other (only against their own
//! lane, which they own). This guard holds that property at ≥ 70%
//! parallel efficiency — `eps(N) ≥ 0.7 · N · eps(1)` — so a change that
//! sneaks a shared lock, a shared contended cacheline, or a serial
//! section back into `LockFreeIngest::push` fails loudly instead of
//! silently flattening the scaling curve.
//!
//! Both sides of the ratio come from the same harness the `emit_scaling`
//! criterion group uses (`atropos_bench::scaling`): persistent producer
//! teams released by barrier, background drainer playing the tick side,
//! emit phase only inside the timed region. The ratio is paired
//! (same machine, interleaved attempts, best-of-attempts each) so
//! absolute hardware speed cancels out.
//!
//! **Core-count gate**: parallel efficiency is meaningless when the OS
//! time-slices the producers onto too few cores, so each N is guarded
//! only when `available_parallelism() >= N + 1` (producers + drainer).
//! On smaller runners the test *skips loudly* — it prints an
//! unmistakable `SKIPPED` line (surfaced by `--nocapture` in CI's bench
//! job) rather than passing silently, and the bench snapshot records the
//! same core count next to the scaling curves so degenerate numbers are
//! labeled as such.

use std::time::{Duration, Instant};

use atropos_bench::scaling::{sink_for, BackgroundDrainer, ProducerTeam, BURST};

/// Minimum parallel efficiency in optimized builds: eps(N) ≥ 0.7·N·eps(1).
const MIN_EFFICIENCY: f64 = 0.7;
/// Interleaved attempts; best (minimum) burst time wins on each side.
const ATTEMPTS: u32 = 7;
/// Warmup bursts per team before anything is timed.
const WARMUP: u32 = 2;

/// Detected hardware parallelism (0 if unknown — then every N skips).
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0)
}

/// Best-of-`ATTEMPTS` wall time for one synchronized burst of `team`.
fn best_burst_ns(team: &ProducerTeam) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..ATTEMPTS {
        let t = Instant::now();
        team.burst();
        best = best.min(t.elapsed());
    }
    best.as_nanos() as f64
}

/// Measures eps(1) and eps(N) on fresh lock-free sinks and returns the
/// parallel efficiency eps(N) / (N · eps(1)).
fn lockfree_efficiency(n: u64) -> f64 {
    // Separate sinks so the single-producer baseline never shares lanes
    // or a drainer with the contended run.
    let base_sink = sink_for("lockfree");
    let _base_drain = BackgroundDrainer::start(base_sink.clone());
    let base_team = ProducerTeam::new(1, base_sink);

    let sink = sink_for("lockfree");
    let _drain = BackgroundDrainer::start(sink.clone());
    let team = ProducerTeam::new(n, sink);

    for _ in 0..WARMUP {
        base_team.burst();
        team.burst();
    }
    let t1 = best_burst_ns(&base_team);
    let tn = best_burst_ns(&team);
    let eps1 = BURST as f64 * 1e9 / t1;
    let epsn = (n * BURST) as f64 * 1e9 / tn;
    epsn / (n as f64 * eps1)
}

fn guard(n: u64) {
    let cores = cores();
    if cores < n as usize + 1 {
        eprintln!(
            "SKIPPED ingest_scaling guard at {n} producers: only {cores} core(s) \
             detected, need {} (N producers + 1 drainer) for a meaningful \
             parallel-efficiency measurement; curves from this host are degenerate",
            n + 1
        );
        return;
    }
    let efficiency = lockfree_efficiency(n);
    eprintln!(
        "ingest_scaling: {n} producers at {:.0}% parallel efficiency",
        efficiency * 100.0
    );
    if cfg!(debug_assertions) {
        // -O0 measures rustc, not the ring; just prove the harness runs.
        assert!(efficiency.is_finite() && efficiency > 0.0);
        return;
    }
    assert!(
        efficiency >= MIN_EFFICIENCY,
        "lock-free emit path stopped scaling: {n} producers reach only \
         {:.0}% parallel efficiency (floor {:.0}%) on a {cores}-core host — \
         did a shared lock or contended cacheline sneak into the push path?",
        efficiency * 100.0,
        MIN_EFFICIENCY * 100.0,
    );
}

#[test]
fn lockfree_emit_scales_at_2_producers() {
    guard(2);
}

#[test]
fn lockfree_emit_scales_at_4_producers() {
    guard(4);
}

#[test]
fn lockfree_emit_scales_at_8_producers() {
    guard(8);
}
