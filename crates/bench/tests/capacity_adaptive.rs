//! The capacity acceptance claim: on the deterministic simulator, the
//! adaptive feedback controller's knee is never below the best static
//! configuration's knee.
//!
//! This holds by construction — the adaptive sweep retries a failed step
//! across the whole static ladder before conceding, and the sim is
//! deterministic given (descriptor, seed, knobs, rps) — but construction
//! arguments rot; this test keeps the property load-bearing.

use atropos_bench::capacity::{
    knee_of, run_capacity, sweep_sim, sweep_sim_adaptive, CapacityOptions, STATIC_LADDER,
};
use atropos_workload::{capacity_descriptor, SubstrateSel};

#[test]
fn adaptive_knee_matches_or_beats_best_static() {
    let d = capacity_descriptor("capacity_smoke").expect("smoke descriptor is checked in");
    let opts = CapacityOptions { quick: true };
    let report = run_capacity(d, &[SubstrateSel::Sim], &opts);

    assert_eq!(report.curves.len(), 1, "one sim curve requested");
    assert_eq!(report.static_sweeps.len(), STATIC_LADDER.len());
    let best_static = report.best_static_knee_rps();
    let adaptive = report.adaptive.knee_rps;
    match (adaptive, best_static) {
        (Some(a), Some(b)) => assert!(
            a >= b,
            "adaptive knee {a} rps fell below the best static knee {b} rps"
        ),
        (None, Some(b)) => panic!("adaptive found no knee but a static config reached {b} rps"),
        // No static config passes the first step: adaptive owes nothing.
        (_, None) => {}
    }
    // The delta the snapshot reports must agree with the knees.
    if let (Some(a), Some(b)) = (adaptive, best_static) {
        assert_eq!(report.adaptive_delta_rps(), Some(a - b));
    }
}

#[test]
fn sim_sweep_is_deterministic() {
    let d = capacity_descriptor("capacity_smoke").expect("smoke descriptor is checked in");
    let opts = CapacityOptions { quick: true };
    let a = sweep_sim(d, &STATIC_LADDER[1], &opts);
    let b = sweep_sim(d, &STATIC_LADDER[1], &opts);
    assert_eq!(a.knee_rps, b.knee_rps);
    for (x, y) in a.steps.iter().zip(&b.steps) {
        assert_eq!(
            x.p99_ns, y.p99_ns,
            "sim step at {} rps not reproducible",
            x.rps
        );
        assert_eq!(x.cancels, y.cancels);
    }
}

#[test]
fn adaptive_steps_cover_the_whole_ramp() {
    let d = capacity_descriptor("capacity_smoke").expect("smoke descriptor is checked in");
    let opts = CapacityOptions { quick: true };
    let adaptive = sweep_sim_adaptive(d, &opts);
    let ramp = d.require_ramp().expect("[ramp]");
    assert_eq!(adaptive.steps.len(), ramp.steps().len());
    let rpss: Vec<f64> = adaptive.steps.iter().map(|s| s.rps).collect();
    assert_eq!(
        rpss,
        ramp.steps(),
        "adaptive visits every ramp step in order"
    );
    assert_eq!(adaptive.knee_rps, knee_of(&adaptive.steps));
}
