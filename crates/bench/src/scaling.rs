//! Multi-producer emit-phase measurement harness.
//!
//! Shared by the `emit_scaling` criterion group (`benches/tracing.rs`)
//! and the scaling-efficiency regression guard
//! (`tests/ingest_scaling.rs`) so both measure exactly the same thing:
//! the **emit phase only** — N persistent producer threads released by a
//! barrier, each appending a fixed burst of records, timed until the
//! last one finishes. Thread spawn cost is paid once at team
//! construction (not per measurement), and the tick-side drain runs on a
//! separate [`BackgroundDrainer`] thread so queues never saturate but
//! drain work is never inside the timed region's critical path the way a
//! serial post-burst drain would be.
//!
//! Producer `p` emits on `TaskId(p)`, so up to the queue/stripe count
//! producers land on distinct lanes (the same task→lane mask the runtime
//! uses) and the measurement reflects the per-producer independence the
//! lock-free path is designed for.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use atropos::ids::{ResourceId, TaskId};
use atropos::lockfree::LockFreeIngest;
use atropos::trace::{EventKind, PushOutcome, ShardedIngest};

/// Records each producer emits per measured burst. Large enough that
/// the two barrier crossings per burst are noise against the push work.
pub const BURST: u64 = 32_768;

/// The emit-path sinks the harness can drive, so the bench and the
/// guard enumerate modes over one type.
#[derive(Clone)]
pub enum EmitSink {
    /// Stripe-locked buffered ingest (the previous default).
    Sharded(Arc<ShardedIngest>),
    /// Lock-free per-producer ingest (the current default).
    LockFree(Arc<LockFreeIngest>),
}

impl EmitSink {
    /// Emits one record for producer `p`; sheds (never blocks or spins
    /// on the consumer) if the sink is full.
    fn emit(&self, p: u64, i: u64) {
        let task = TaskId(p);
        let rid = ResourceId(0);
        match self {
            EmitSink::Sharded(ing) => {
                if let PushOutcome::Full(r) = ing.push(task, rid, 1, EventKind::Get, i) {
                    ing.force_push(r);
                }
            }
            EmitSink::LockFree(ing) => {
                if let PushOutcome::Full(r) = ing.push(task, rid, 1, EventKind::Get, i) {
                    ing.force_push(r);
                }
            }
        }
    }

    fn drain_len(&self) -> usize {
        match self {
            EmitSink::Sharded(ing) => ing.drain().len(),
            EmitSink::LockFree(ing) => ing.drain().len(),
        }
    }
}

/// N persistent producer threads parked on a barrier, released for one
/// burst at a time. Construction spawns the threads; [`burst`] runs one
/// synchronized emit phase; dropping the team stops and joins them.
///
/// [`burst`]: ProducerTeam::burst
pub struct ProducerTeam {
    go: Arc<Barrier>,
    done: Arc<Barrier>,
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ProducerTeam {
    /// Spawns `producers` threads emitting into `sink`.
    pub fn new(producers: u64, sink: EmitSink) -> Self {
        let go = Arc::new(Barrier::new(producers as usize + 1));
        let done = Arc::new(Barrier::new(producers as usize + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..producers)
            .map(|p| {
                let go = Arc::clone(&go);
                let done = Arc::clone(&done);
                let stop = Arc::clone(&stop);
                let sink = sink.clone();
                std::thread::spawn(move || loop {
                    go.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    for i in 1..=BURST {
                        sink.emit(p, i);
                    }
                    done.wait();
                })
            })
            .collect();
        Self {
            go,
            done,
            stop,
            handles,
        }
    }

    /// Releases every producer for one burst and returns when the last
    /// one finishes — the interval callers time.
    pub fn burst(&self) {
        self.go.wait();
        self.done.wait();
    }
}

impl Drop for ProducerTeam {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.go.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A continuous tick-side consumer on its own thread: drains the sink in
/// a loop so producers always find room, the way the runtime's periodic
/// tick would under sustained load. Dropping it stops and joins the
/// thread.
pub struct BackgroundDrainer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl BackgroundDrainer {
    /// Starts draining `sink` until dropped.
    pub fn start(sink: EmitSink) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    if sink.drain_len() == 0 {
                        std::thread::yield_now();
                    }
                }
                // One last sweep so nothing is left pending for the next
                // measurement against the same sink.
                sink.drain_len();
            })
        };
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for BackgroundDrainer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Builds the sink geometry both the bench and the guard use: 8 lanes
/// (so every producer count up to 8 gets its own lane) sized deep enough
/// that a burst rarely sheds while the drainer keeps up.
pub fn sink_for(mode: &str) -> EmitSink {
    match mode {
        "sharded" => EmitSink::Sharded(Arc::new(ShardedIngest::new(8, 1 << 13))),
        "lockfree" => EmitSink::LockFree(Arc::new(LockFreeIngest::new(8, 1 << 13))),
        other => panic!("unknown emit sink mode {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn team_bursts_conserve_records() {
        // No drainer here, so the burst overruns the lanes and sheds;
        // conservation (drained + shed == emitted) must still hold.
        for mode in ["sharded", "lockfree"] {
            let sink = sink_for(mode);
            let team = ProducerTeam::new(2, sink.clone());
            team.burst();
            drop(team);
            let drained = sink.drain_len() as u64;
            let shed = match &sink {
                EmitSink::Sharded(ing) => ing.take_overflow_dropped(),
                EmitSink::LockFree(ing) => ing.take_overflow_dropped(),
            };
            assert_eq!(drained + shed, 2 * BURST, "{mode}");
        }
    }

    #[test]
    fn background_drainer_keeps_up_and_stops() {
        let sink = sink_for("lockfree");
        let drainer = BackgroundDrainer::start(sink.clone());
        let team = ProducerTeam::new(2, sink.clone());
        for _ in 0..3 {
            team.burst();
        }
        drop(team);
        drop(drainer);
        let EmitSink::LockFree(ing) = &sink else {
            unreachable!()
        };
        assert_eq!(ing.pending(), 0, "final sweep left records behind");
    }
}
