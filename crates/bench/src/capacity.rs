//! Capacity sweep: execute a descriptor's `[ramp]` stanza against the
//! sim, thread and async substrates and find each one's knee.
//!
//! One [`WorkloadDescriptor`] pins everything a sweep needs: the `[case]`
//! stanza shapes the simulator workload, the `[scenario]` stanza shapes
//! the two wall-clock harnesses, the `[ramp]` stanza declares the offered
//! loads (`initial_rps` stepping by `increment_rps` up to `max_rps`), and
//! the `[slo]` stanza declares the victim-p99 budget a step must meet.
//! The **knee** is the last offered load of the contiguous passing prefix
//! — the highest load the controlled system absorbs before the victim
//! tail blows the budget.
//!
//! On top of the per-substrate knee curves, [`run_capacity`] sweeps the
//! simulator under a ladder of static control configurations
//! ([`STATIC_LADDER`]: relaxed / default / aggressive) and under an
//! **adaptive** feedback controller ([`sweep_sim_adaptive`]) that retunes
//! the detection threshold and cancellation aggressiveness per ramp step
//! from the previous step's observed victim p99 and time-to-cancel, and
//! retries a failed step across the ladder before conceding. On a
//! deterministic simulator the adaptive pass-set therefore contains every
//! static pass-set, so its knee is never below the best static knee —
//! the property `tests/capacity_adaptive.rs` locks in.

use atropos::AtroposConfig;
use atropos_app::glue::AtroposController;
use atropos_app::server::SimServer;
use atropos_app::NoControl;
use atropos_live::{live_atropos_config, ControlMode, LiveConfig};
use atropos_scenarios::cases::{build_case, CaseParams};
use atropos_sim::SimTime;
use atropos_substrate::ScenarioDescriptor;
use atropos_workload::{CaseDescriptor, SubstrateSel, WorkloadDescriptor};
use std::time::Duration;

/// One setting of the two control knobs the sweep varies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlKnobs {
    /// Label used in reports (`relaxed` / `default` / `aggressive` /
    /// `adaptive@…`).
    pub label: &'static str,
    /// Multiplier on the detector's SLO latency threshold (1.0 = the
    /// substrate default). Below 1.0 the detector blames earlier.
    pub slo_scale: f64,
    /// Floor between successive cancellations, ns (the §5.3
    /// aggressiveness/recovery knob).
    pub cancel_min_interval_ns: u64,
}

/// The static configurations every sweep compares: a forgiving detector
/// that cancels rarely, the substrate default, and a hair-trigger
/// detector that cancels up to 4× as often.
pub const STATIC_LADDER: [ControlKnobs; 3] = [
    ControlKnobs {
        label: "relaxed",
        slo_scale: 2.0,
        cancel_min_interval_ns: 200_000_000,
    },
    ControlKnobs {
        label: "default",
        slo_scale: 1.0,
        cancel_min_interval_ns: 50_000_000,
    },
    ControlKnobs {
        label: "aggressive",
        slo_scale: 0.5,
        cancel_min_interval_ns: 12_500_000,
    },
];

/// Sweep-wide options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CapacityOptions {
    /// Shorten the simulator's virtual run so CI smoke stays fast.
    pub quick: bool,
}

impl CapacityOptions {
    fn sim_duration(&self) -> SimTime {
        if self.quick {
            SimTime::from_secs(5)
        } else {
            SimTime::from_secs(10)
        }
    }

    fn sim_warmup(&self) -> SimTime {
        if self.quick {
            SimTime::from_millis(1_250)
        } else {
            SimTime::from_secs(2)
        }
    }
}

/// What one ramp step observed.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Offered load of the step, rps.
    pub rps: f64,
    /// Measured victim p99, ns.
    pub p99_ns: u64,
    /// Whether the step met the descriptor's `[slo]` budget.
    pub met_slo: bool,
    /// Disturbance → first cancellation on the substrate's own clock, ns.
    pub time_to_cancel_ns: Option<u64>,
    /// Cancellations executed during the step.
    pub cancels: u64,
    /// Knob setting the (passing, or last) attempt ran under.
    pub knobs: String,
}

/// One substrate's full ramp.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Substrate name (`sim` / `thread` / `async`).
    pub substrate: &'static str,
    /// Knob label the sweep ran under (`default`, `adaptive`, …).
    pub config: String,
    /// Per-step observations, ramp order.
    pub steps: Vec<StepOutcome>,
    /// Last rps of the contiguous passing prefix (`None`: the first step
    /// already failed).
    pub knee_rps: Option<f64>,
}

/// Knee of a step sequence: the contiguous passing prefix's last rps.
pub fn knee_of(steps: &[StepOutcome]) -> Option<f64> {
    let mut knee = None;
    for s in steps {
        if !s.met_slo {
            break;
        }
        knee = Some(s.rps);
    }
    knee
}

fn sweep_outcome(
    substrate: &'static str,
    config: impl Into<String>,
    steps: Vec<StepOutcome>,
) -> SweepOutcome {
    let knee_rps = knee_of(&steps);
    SweepOutcome {
        substrate,
        config: config.into(),
        steps,
        knee_rps,
    }
}

fn sim_params(case: &CaseDescriptor, rps: f64, opts: &CapacityOptions) -> CaseParams {
    CaseParams {
        load_scale: rps / case.base_qps,
        duration: opts.sim_duration(),
        ..CaseParams::default()
    }
}

/// Calibrates the sim side once per sweep: the undisturbed case under no
/// control yields the detector's nominal SLO (baseline p99 × 1.2, the
/// repo-wide 20% tolerance), which the knobs then scale.
fn calibrate_sim(case: &CaseDescriptor, opts: &CapacityOptions) -> u64 {
    let params = CaseParams {
        duration: opts.sim_duration(),
        ..CaseParams::default()
    };
    let built = build_case(case, &params, false);
    let metrics = SimServer::new(built.server, built.workload, Box::new(NoControl))
        .run(opts.sim_duration(), opts.sim_warmup());
    (metrics.latency.p99() as f64 * 1.2) as u64
}

fn sim_step(
    d: &WorkloadDescriptor,
    nominal_slo_ns: u64,
    knobs: &ControlKnobs,
    rps: f64,
    opts: &CapacityOptions,
) -> StepOutcome {
    let case = d
        .require_case()
        .expect("capacity descriptor carries [case]");
    let params = sim_params(case, rps, opts);
    let built = build_case(case, &params, true);
    let mut cfg =
        AtroposConfig::default().with_slo_ns(((nominal_slo_ns as f64) * knobs.slo_scale) as u64);
    cfg.cancel_min_interval_ns = knobs.cancel_min_interval_ns;
    let metrics = SimServer::new_with(built.server, built.workload, |clock, groups| {
        Box::new(AtroposController::new(cfg, clock, groups, true))
    })
    .run(opts.sim_duration(), opts.sim_warmup());
    let p99_ns = metrics.latency.p99();
    let disturb_ns = params.disturb_at.as_nanos();
    StepOutcome {
        rps,
        p99_ns,
        met_slo: p99_ns <= slo_ns(d),
        time_to_cancel_ns: metrics
            .cancel_log
            .first()
            .map(|r| r.at.as_nanos().saturating_sub(disturb_ns)),
        cancels: metrics.canceled,
        knobs: knobs.label.to_string(),
    }
}

fn slo_ns(d: &WorkloadDescriptor) -> u64 {
    d.slo
        .as_ref()
        .expect("capacity descriptor carries [slo]")
        .victim_p99_ns()
}

/// Sweeps the simulator under one static knob setting.
pub fn sweep_sim(
    d: &WorkloadDescriptor,
    knobs: &ControlKnobs,
    opts: &CapacityOptions,
) -> SweepOutcome {
    let case = d
        .require_case()
        .expect("capacity descriptor carries [case]");
    let ramp = d
        .require_ramp()
        .expect("capacity descriptor carries [ramp]");
    let nominal = calibrate_sim(case, opts);
    let steps = ramp
        .steps()
        .into_iter()
        .map(|rps| sim_step(d, nominal, knobs, rps, opts))
        .collect();
    sweep_outcome("sim", knobs.label, steps)
}

/// Sweeps the simulator under the adaptive feedback controller.
///
/// The controller owns the two knobs and retunes them between ramp steps
/// from the step's own observations:
///
/// - a failed step, or a victim p99 within 10% of the budget, **tightens**
///   (halve the detector threshold, halve the cancellation floor) — blame
///   earlier, relieve harder;
/// - a comfortable step (victim p99 under half the budget) **relaxes**
///   (threshold ×1.25, floor ×1.5) — spend fewer cancellations when the
///   tail has slack;
/// - a slow decision (time-to-cancel above 2 detector windows' worth,
///   200 ms virtual) also tightens the floor only.
///
/// A step that fails under the tuned knobs is retried across the
/// remaining [`STATIC_LADDER`] settings before it is recorded as failed,
/// so per-step retuning can only widen the pass-set relative to any
/// single static configuration.
pub fn sweep_sim_adaptive(d: &WorkloadDescriptor, opts: &CapacityOptions) -> SweepOutcome {
    let case = d
        .require_case()
        .expect("capacity descriptor carries [case]");
    let ramp = d
        .require_ramp()
        .expect("capacity descriptor carries [ramp]");
    let budget = slo_ns(d);
    let nominal = calibrate_sim(case, opts);
    let mut slo_scale: f64 = 1.0;
    let mut interval: u64 = 50_000_000;
    let mut steps = Vec::new();
    for rps in ramp.steps() {
        let tuned = ControlKnobs {
            label: "adaptive",
            slo_scale,
            cancel_min_interval_ns: interval,
        };
        let mut best = sim_step(d, nominal, &tuned, rps, opts);
        best.knobs = format!("adaptive({slo_scale:.2},{interval})");
        if !best.met_slo {
            for k in STATIC_LADDER.iter() {
                if (k.slo_scale, k.cancel_min_interval_ns)
                    == (tuned.slo_scale, tuned.cancel_min_interval_ns)
                {
                    continue;
                }
                let retry = sim_step(d, nominal, k, rps, opts);
                if retry.met_slo {
                    // Adopt the rescuing setting as the new operating
                    // point — the feedback loop learned this load level
                    // needs it.
                    slo_scale = k.slo_scale;
                    interval = k.cancel_min_interval_ns;
                    best = retry;
                    best.knobs = format!("adaptive-retry({})", k.label);
                    break;
                }
            }
        }
        // Feedback for the next step.
        if !best.met_slo || best.p99_ns as f64 > budget as f64 * 0.9 {
            slo_scale = (slo_scale * 0.5).max(0.25);
            interval = (interval / 2).max(10_000_000);
        } else if (best.p99_ns as f64) < budget as f64 * 0.5 {
            slo_scale = (slo_scale * 1.25).min(2.0);
            interval = ((interval as f64 * 1.5) as u64).min(200_000_000);
        }
        if best.time_to_cancel_ns.is_some_and(|t| t > 200_000_000) {
            interval = (interval / 2).max(10_000_000);
        }
        steps.push(best);
    }
    sweep_outcome("sim", "adaptive", steps)
}

fn live_config_for_step(
    scen: &ScenarioDescriptor,
    ramp_step_ms: u64,
    ramp_warmup_ms: u64,
    rps: f64,
) -> LiveConfig {
    let mut cfg = LiveConfig::from_scenario(scen);
    cfg.interarrival = Duration::from_nanos((1e9 / rps).max(1.0) as u64);
    cfg.run_for = Duration::from_millis(ramp_warmup_ms + ramp_step_ms);
    cfg
}

fn wall_clock_step(
    d: &WorkloadDescriptor,
    substrate: SubstrateSel,
    knobs: &ControlKnobs,
    rps: f64,
) -> StepOutcome {
    let scen = d
        .require_scenario()
        .expect("capacity descriptor carries [scenario]");
    let ramp = d
        .require_ramp()
        .expect("capacity descriptor carries [ramp]");
    let cfg = live_config_for_step(scen, ramp.step_ms, ramp.warmup_ms, rps);
    let mut acfg = live_atropos_config();
    acfg.detector.slo_latency_ns = ((acfg.detector.slo_latency_ns as f64) * knobs.slo_scale) as u64;
    acfg.cancel_min_interval_ns = knobs.cancel_min_interval_ns;
    let report = match substrate {
        SubstrateSel::Thread => atropos_live::run(cfg, ControlMode::Atropos(acfg)),
        SubstrateSel::Async => atropos_async::run(cfg, ControlMode::Atropos(acfg)),
        SubstrateSel::Sim => unreachable!("sim steps go through sim_step"),
    };
    StepOutcome {
        rps,
        p99_ns: report.victim.p99_ns,
        met_slo: report.victim.p99_ns <= slo_ns(d),
        time_to_cancel_ns: report.time_to_cancel.map(|t| t.as_nanos() as u64),
        cancels: report.canceled_keys.len() as u64,
        knobs: knobs.label.to_string(),
    }
}

/// Sweeps a wall-clock substrate (thread or async) under one knob
/// setting.
pub fn sweep_wall_clock(
    d: &WorkloadDescriptor,
    substrate: SubstrateSel,
    knobs: &ControlKnobs,
) -> SweepOutcome {
    let ramp = d
        .require_ramp()
        .expect("capacity descriptor carries [ramp]");
    let name = match substrate {
        SubstrateSel::Thread => "thread",
        SubstrateSel::Async => "async",
        SubstrateSel::Sim => unreachable!("sim sweeps go through sweep_sim"),
    };
    let steps = ramp
        .steps()
        .into_iter()
        .map(|rps| wall_clock_step(d, substrate, knobs, rps))
        .collect();
    sweep_outcome(name, knobs.label, steps)
}

fn default_knobs() -> &'static ControlKnobs {
    &STATIC_LADDER[1]
}

fn step_json(s: &StepOutcome) -> serde_json::Value {
    serde_json::json!({
        "rps": s.rps,
        "p99_ns": s.p99_ns,
        "met_slo": s.met_slo,
        "time_to_cancel_ns": s.time_to_cancel_ns,
        "cancels": s.cancels,
        "knobs": s.knobs,
    })
}

fn sweep_json(sw: &SweepOutcome) -> serde_json::Value {
    serde_json::json!({
        "substrate": sw.substrate,
        "config": sw.config,
        "knee_rps": sw.knee_rps,
        "steps": sw.steps.iter().map(step_json).collect::<Vec<_>>(),
    })
}

/// The full capacity study for one descriptor.
#[derive(Debug, Clone)]
pub struct CapacityReport {
    /// Default-knob knee curve per selected substrate, selection order.
    pub curves: Vec<SweepOutcome>,
    /// The [`STATIC_LADDER`] sweeps on the simulator, ladder order.
    pub static_sweeps: Vec<SweepOutcome>,
    /// The adaptive sweep on the simulator.
    pub adaptive: SweepOutcome,
}

impl CapacityReport {
    /// Highest knee any static configuration reached.
    pub fn best_static_knee_rps(&self) -> Option<f64> {
        self.static_sweeps
            .iter()
            .filter_map(|s| s.knee_rps)
            .fold(None, |acc, k| Some(acc.map_or(k, |a: f64| a.max(k))))
    }

    /// Adaptive knee minus the best static knee (`None` when neither
    /// ramp produced a knee).
    pub fn adaptive_delta_rps(&self) -> Option<f64> {
        match (self.adaptive.knee_rps, self.best_static_knee_rps()) {
            (Some(a), Some(b)) => Some(a - b),
            (Some(a), None) => Some(a),
            _ => None,
        }
    }
}

/// Runs the full capacity study for one descriptor: a default-knob knee
/// curve per selected substrate, plus the static-ladder vs adaptive
/// comparison on the simulator.
pub fn run_capacity(
    d: &WorkloadDescriptor,
    substrates: &[SubstrateSel],
    opts: &CapacityOptions,
) -> CapacityReport {
    let curves = substrates
        .iter()
        .map(|&s| match s {
            SubstrateSel::Sim => sweep_sim(d, default_knobs(), opts),
            SubstrateSel::Thread | SubstrateSel::Async => sweep_wall_clock(d, s, default_knobs()),
        })
        .collect();
    let static_sweeps = STATIC_LADDER
        .iter()
        .map(|k| sweep_sim(d, k, opts))
        .collect();
    let adaptive = sweep_sim_adaptive(d, opts);
    CapacityReport {
        curves,
        static_sweeps,
        adaptive,
    }
}

/// Renders a report as the `BENCH_capacity.json` payload
/// (`schema: bench_capacity/v1`).
pub fn report_json(
    d: &WorkloadDescriptor,
    opts: &CapacityOptions,
    report: &CapacityReport,
) -> serde_json::Value {
    let ramp = d
        .require_ramp()
        .expect("capacity descriptor carries [ramp]");
    let slo = d.slo.as_ref().expect("capacity descriptor carries [slo]");
    serde_json::json!({
        "schema": "bench_capacity/v1",
        "workload": d.name,
        "slo_victim_p99_ms": slo.victim_p99_ms,
        "ramp": {
            "initial_rps": ramp.initial_rps,
            "increment_rps": ramp.increment_rps,
            "max_rps": ramp.max_rps,
            "step_ms": ramp.step_ms,
            "warmup_ms": ramp.warmup_ms,
        },
        "quick": opts.quick,
        "substrates": report.curves.iter().map(sweep_json).collect::<Vec<_>>(),
        "adaptive_vs_static": {
            "substrate": "sim",
            "static": report.static_sweeps.iter().map(sweep_json).collect::<Vec<_>>(),
            "adaptive": sweep_json(&report.adaptive),
            "best_static_knee_rps": report.best_static_knee_rps(),
            "adaptive_knee_rps": report.adaptive.knee_rps,
            "adaptive_delta_rps": report.adaptive_delta_rps(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_is_the_contiguous_passing_prefix() {
        let step = |rps: f64, met: bool| StepOutcome {
            rps,
            p99_ns: 0,
            met_slo: met,
            time_to_cancel_ns: None,
            cancels: 0,
            knobs: "default".into(),
        };
        assert_eq!(knee_of(&[]), None);
        assert_eq!(knee_of(&[step(1.0, false), step(2.0, true)]), None);
        assert_eq!(
            knee_of(&[
                step(1.0, true),
                step(2.0, true),
                step(3.0, false),
                step(4.0, true)
            ]),
            Some(2.0)
        );
    }

    #[test]
    fn ladder_spans_relaxed_to_aggressive() {
        assert!(STATIC_LADDER[0].slo_scale > STATIC_LADDER[2].slo_scale);
        assert!(STATIC_LADDER[0].cancel_min_interval_ns > STATIC_LADDER[2].cancel_min_interval_ns);
        assert_eq!(default_knobs().label, "default");
    }
}
