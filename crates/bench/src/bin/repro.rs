//! Regenerates the paper's figures and tables.
//!
//! ```text
//! repro [--quick] [--seed N] [--out DIR] <exp>...
//! repro all                    # everything, paper order
//! repro fig9 fig10             # a subset
//! repro --list                 # show available experiment ids
//! ```
//!
//! Each experiment prints the same rows/series the paper reports and
//! writes a JSON payload to `--out` (default `results/`).

use std::path::PathBuf;
use std::time::Instant;

use atropos_bench::{all_ids, run_by_id, save_report, ExpOptions};

fn main() {
    let mut quick = false;
    let mut seed = 42u64;
    let mut out = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--list" => {
                for id in all_ids() {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                println!("usage: repro [--quick] [--seed N] [--out DIR] <exp>... | all | --list");
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        die("no experiments given; try `repro all` or `repro --list`");
    }
    if targets.iter().any(|t| t == "all") {
        targets = all_ids().iter().map(|s| s.to_string()).collect();
    }
    let opts = ExpOptions { quick, seed };
    for target in &targets {
        let started = Instant::now();
        let Some(report) = run_by_id(target, &opts) else {
            eprintln!("unknown experiment `{target}`; see `repro --list`");
            std::process::exit(2);
        };
        println!("==== {} ====", report.title);
        println!("{}", report.text);
        match save_report(&out, &report) {
            Ok(path) => println!(
                "[{}s] wrote {}\n",
                started.elapsed().as_secs(),
                path.display()
            ),
            Err(e) => eprintln!("failed to write report: {e}"),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
