//! `capacity` — execute a workload descriptor's offered-load ramp against
//! the sim / thread / async substrates and emit knee curves.
//!
//! ```text
//! capacity --workload capacity_smoke [--substrate sim,thread,async]
//!          [--out results/BENCH_capacity.json] [--adaptive-only]
//!          [--quick]
//! capacity --check-corpus
//! ```
//!
//! `--workload` accepts either the name of a checked-in descriptor
//! (`capacity_smoke`, `capacity_c5`) or a path to a `.toml` descriptor
//! file on disk. `--check-corpus` parses every checked-in descriptor and
//! exits non-zero on the first failure — the CI fail-loud gate.

use atropos_bench::capacity::{report_json, run_capacity, CapacityOptions};
use atropos_workload::{SubstrateSel, WorkloadDescriptor};

fn usage() -> ! {
    eprintln!(
        "usage: capacity --workload <name|file.toml> [--substrate sim,thread,async] \
         [--out PATH] [--quick]\n       capacity --check-corpus"
    );
    std::process::exit(2);
}

fn check_corpus() -> ! {
    // Touching the parsed corpus validates every file; a parse failure
    // panics with file, line and field.
    let all = atropos_workload::all_descriptors();
    for d in all {
        println!("ok: {}", d.name);
    }
    println!("{} descriptors parse", all.len());
    std::process::exit(0);
}

fn resolve(workload: &str) -> WorkloadDescriptor {
    if let Some(d) = atropos_workload::descriptor(workload) {
        return d.clone();
    }
    let text = std::fs::read_to_string(workload).unwrap_or_else(|e| {
        eprintln!(
            "capacity: `{workload}` is neither a checked-in descriptor nor a readable file: {e}"
        );
        std::process::exit(2);
    });
    let name = std::path::Path::new(workload)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(workload)
        .to_string();
    WorkloadDescriptor::parse(&name, &text).unwrap_or_else(|e| {
        eprintln!("capacity: {e}");
        std::process::exit(2);
    })
}

fn parse_substrates(arg: &str) -> Vec<SubstrateSel> {
    arg.split(',')
        .map(|s| match s.trim() {
            "sim" => SubstrateSel::Sim,
            "thread" => SubstrateSel::Thread,
            "async" => SubstrateSel::Async,
            other => {
                eprintln!("capacity: unknown substrate `{other}` (expected sim|thread|async)");
                std::process::exit(2);
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload: Option<String> = None;
    let mut out = std::path::PathBuf::from("results/BENCH_capacity.json");
    let mut substrates: Option<Vec<SubstrateSel>> = None;
    let mut opts = CapacityOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check-corpus" => check_corpus(),
            "--workload" => {
                i += 1;
                workload = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| usage()).into();
            }
            "--substrate" => {
                i += 1;
                substrates = Some(parse_substrates(
                    &args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--quick" => opts.quick = true,
            _ => usage(),
        }
        i += 1;
    }
    let Some(workload) = workload else { usage() };
    let d = resolve(&workload);
    if d.ramp.is_none() {
        eprintln!("capacity: descriptor `{}` has no [ramp] stanza", d.name);
        std::process::exit(2);
    }
    let substrates = substrates.unwrap_or_else(|| {
        if d.substrates.is_empty() {
            vec![SubstrateSel::Sim, SubstrateSel::Thread, SubstrateSel::Async]
        } else {
            d.substrates.clone()
        }
    });

    eprintln!(
        "capacity: sweeping `{}` over {:?}{}",
        d.name,
        substrates,
        if opts.quick { " (quick)" } else { "" }
    );
    let report = run_capacity(&d, &substrates, &opts);
    let payload = report_json(&d, &opts, &report);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    let pretty = serde_json::to_string_pretty(&payload).expect("serialize payload");
    std::fs::write(&out, &pretty).expect("write BENCH_capacity.json");
    // Human-readable knee summary on stdout; the JSON is the artifact.
    let show = |k: Option<f64>| k.map_or("none".to_string(), |v| format!("{v}"));
    for curve in &report.curves {
        println!("{:>7}: knee {} rps", curve.substrate, show(curve.knee_rps));
    }
    println!(
        "adaptive: knee {} rps (best static {}, delta {})",
        show(report.adaptive.knee_rps),
        show(report.best_static_knee_rps()),
        show(report.adaptive_delta_rps())
    );
    println!("wrote {}", out.display());
}
