#![warn(missing_docs)]

//! Benchmark harness for the Atropos reproduction.
//!
//! Two kinds of benchmarks live here:
//!
//! - the `repro` binary (`cargo run --release -p atropos-bench --bin repro
//!   -- all`) regenerates every figure and table of the paper's evaluation
//!   through the scenario harness and writes the results to `results/`,
//! - criterion microbenches (`cargo bench`) measure the real cost of the
//!   framework's hot paths: the tracing APIs in sampled vs precise mode,
//!   the multi-objective policy at scale, accounting window rollups, and
//!   the simulator substrate itself.

pub mod capacity;
pub mod scaling;

pub use atropos_scenarios::experiments::{all_ids, run_by_id, ExpOptions, ExpReport};

/// Writes a report's JSON payload under `dir`, creating it if needed.
///
/// Returns the path written.
pub fn save_report(
    dir: &std::path::Path,
    report: &ExpReport,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", report.id));
    let pretty = serde_json::to_string_pretty(&report.data)?;
    std::fs::write(&path, pretty)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_report_writes_json() {
        let dir = std::env::temp_dir().join("atropos-bench-test");
        let report = ExpReport {
            id: "unit".into(),
            title: "t".into(),
            text: "x".into(),
            data: serde_json::json!({"k": 1}),
        };
        let path = save_report(&dir, &report).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"k\": 1"));
        std::fs::remove_file(path).ok();
    }
}
