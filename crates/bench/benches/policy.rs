//! Criterion bench: estimation + Algorithm 1 at scale.
//!
//! The paper requires cancellation decisions "at microsecond granularity"
//! (§3.4). This bench measures the non-dominated-set + scalarization
//! policy and the full estimator pass as the number of live tasks grows.

use atropos::estimator::{EstimatorSnapshot, ResourceSnapshot, TaskGainSnapshot};
use atropos::policy::{CancellationPolicy, HeuristicPolicy, MultiObjectivePolicy};
use atropos::{ResourceId, ResourceType, TaskId, TaskKey};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N_RESOURCES: usize = 7;

fn snapshot(n_tasks: usize, seed: u64) -> EstimatorSnapshot {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let resources = (0..N_RESOURCES)
        .map(|i| {
            let c = rng.gen_range(0.0..2.0);
            ResourceSnapshot {
                id: ResourceId(i as u32),
                rtype: ResourceType::Lock,
                contention: c,
                normalized: c / 10.0,
                weight: 1.0 / N_RESOURCES as f64,
                wait_ns: 0,
                hold_ns: 0,
                acquired: 0,
                slow_amount: 0,
            }
        })
        .collect();
    let tasks = (0..n_tasks)
        .map(|i| {
            let gains: Vec<f64> = (0..N_RESOURCES).map(|_| rng.gen_range(0.0..1.0)).collect();
            TaskGainSnapshot {
                task: TaskId(i as u64),
                key: TaskKey(i as u64),
                cancellable: true,
                current: gains.clone(),
                gains,
                progress: Some(rng.gen_range(0.02..1.0)),
            }
        })
        .collect();
    EstimatorSnapshot {
        resources,
        tasks,
        t_exec_ns: 1_000_000,
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy");
    g.sample_size(30);
    for &n in &[16usize, 64, 256, 1024, 4096, 16384] {
        let snap = snapshot(n, 7);
        g.bench_with_input(BenchmarkId::new("multi_objective", n), &snap, |b, s| {
            b.iter(|| MultiObjectivePolicy.select(black_box(s)))
        });
        g.bench_with_input(BenchmarkId::new("heuristic", n), &snap, |b, s| {
            b.iter(|| HeuristicPolicy.select(black_box(s)))
        });
    }
    g.finish();
}

/// The incremental engine: full rebuild vs. steady-state delta refresh
/// vs. indexed selection, at populations the naive path cannot survive.
fn bench_policy_index(c: &mut Criterion) {
    use atropos::policy::PolicyIndex;
    use atropos::resource::ResourceRegistry;
    use atropos::task::TaskRecord;
    use atropos::{AtroposConfig, PolicyKind};
    use std::collections::HashMap;

    let mut g = c.benchmark_group("policy_index");
    g.sample_size(30);
    let mut reg = ResourceRegistry::new();
    for i in 0..N_RESOURCES {
        reg.register(format!("r{i}"), ResourceType::Lock);
    }
    let cfg = AtroposConfig::default();

    // `busy` tasks keep an open unit and held resources, so every window
    // re-derives them; the rest touch a resource once, release it, and
    // settle into the quiescent fixpoint after two rolls.
    let build = |n: usize, busy: usize| -> HashMap<TaskId, TaskRecord> {
        let mut tasks = HashMap::new();
        for i in 0..n {
            let mut t = TaskRecord::new(TaskId(i as u64), TaskKey(i as u64), 0, N_RESOURCES);
            if i < busy {
                t.on_unit_start(0);
                t.usage[i % N_RESOURCES].on_get(10, 1 + (i as u64 % 5));
                if i % 3 == 0 {
                    t.usage[(i + 1) % N_RESOURCES].on_slow(20, 1);
                }
            } else {
                t.usage[i % N_RESOURCES].on_get(10, 1);
                t.usage[i % N_RESOURCES].on_free(20, 1);
            }
            t.roll_window(1_000_000);
            tasks.insert(TaskId(i as u64), t);
        }
        tasks
    };

    for &n in &[4096usize, 16384] {
        let tasks = build(n, n);
        g.bench_with_input(BenchmarkId::new("full_build", n), &tasks, |b, ts| {
            let mut index = PolicyIndex::new();
            b.iter(|| {
                index.invalidate_all();
                index.refresh(black_box(ts), &reg, &cfg);
            })
        });
    }

    // Steady state: K busy tasks churn inside a large, mostly quiescent
    // population. Each iteration is one tick — roll every window (idle
    // tasks short-circuit) and refresh the index.
    let n = 16384usize;
    for &k in &[16usize, 256] {
        let mut tasks = build(n, k);
        let mut index = PolicyIndex::new();
        let mut now = 1_000_000u64;
        // Settle the idle population into quiescent+settled slots.
        for _ in 0..2 {
            now += 1_000_000;
            for t in tasks.values_mut() {
                t.roll_window(now);
            }
            index.refresh(&tasks, &reg, &cfg);
        }
        g.bench_function(BenchmarkId::new("delta_refresh", k), |b| {
            b.iter(|| {
                now += 1_000_000;
                for t in tasks.values_mut() {
                    t.roll_window(now);
                }
                index.refresh(black_box(&tasks), &reg, &cfg);
            })
        });
    }

    // Indexed selection over a fully refreshed 16k-task index.
    let tasks = build(n, n);
    let mut index = PolicyIndex::new();
    index.refresh(&tasks, &reg, &cfg);
    g.bench_function(BenchmarkId::new("select", n), |b| {
        b.iter(|| black_box(&index).select(PolicyKind::MultiObjective))
    });
    g.finish();
}

fn bench_estimate(c: &mut Criterion) {
    use atropos::resource::ResourceRegistry;
    use atropos::task::TaskRecord;
    use atropos::AtroposConfig;
    let mut g = c.benchmark_group("estimate");
    g.sample_size(30);
    let mut reg = ResourceRegistry::new();
    for i in 0..N_RESOURCES {
        reg.register(format!("r{i}"), ResourceType::Lock);
    }
    let cfg = AtroposConfig::default();
    for &n in &[64usize, 512, 4096] {
        let mut tasks: Vec<TaskRecord> = (0..n)
            .map(|i| {
                let mut t = TaskRecord::new(TaskId(i as u64), TaskKey(i as u64), 0, N_RESOURCES);
                t.on_unit_start(0);
                t.usage[i % N_RESOURCES].on_get(10, 1 + (i as u64 % 5));
                if i % 3 == 0 {
                    t.usage[(i + 1) % N_RESOURCES].on_slow(20, 1);
                }
                t.roll_window(1_000_000);
                t
            })
            .collect();
        // Re-roll each iteration is unnecessary: estimate() is read-only.
        let tasks_ref = &mut tasks;
        g.bench_with_input(BenchmarkId::new("full_pass", n), &n, |b, _| {
            b.iter(|| atropos::estimator::estimate(black_box(tasks_ref.iter()), &reg, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies, bench_policy_index, bench_estimate);
criterion_main!(benches);
