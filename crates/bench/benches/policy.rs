//! Criterion bench: estimation + Algorithm 1 at scale.
//!
//! The paper requires cancellation decisions "at microsecond granularity"
//! (§3.4). This bench measures the non-dominated-set + scalarization
//! policy and the full estimator pass as the number of live tasks grows.

use atropos::estimator::{EstimatorSnapshot, ResourceSnapshot, TaskGainSnapshot};
use atropos::policy::{CancellationPolicy, HeuristicPolicy, MultiObjectivePolicy};
use atropos::{ResourceId, ResourceType, TaskId, TaskKey};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N_RESOURCES: usize = 7;

fn snapshot(n_tasks: usize, seed: u64) -> EstimatorSnapshot {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let resources = (0..N_RESOURCES)
        .map(|i| {
            let c = rng.gen_range(0.0..2.0);
            ResourceSnapshot {
                id: ResourceId(i as u32),
                rtype: ResourceType::Lock,
                contention: c,
                normalized: c / 10.0,
                weight: 1.0 / N_RESOURCES as f64,
                wait_ns: 0,
                hold_ns: 0,
                acquired: 0,
                slow_amount: 0,
            }
        })
        .collect();
    let tasks = (0..n_tasks)
        .map(|i| {
            let gains: Vec<f64> = (0..N_RESOURCES).map(|_| rng.gen_range(0.0..1.0)).collect();
            TaskGainSnapshot {
                task: TaskId(i as u64),
                key: TaskKey(i as u64),
                cancellable: true,
                current: gains.clone(),
                gains,
                progress: Some(rng.gen_range(0.02..1.0)),
            }
        })
        .collect();
    EstimatorSnapshot {
        resources,
        tasks,
        t_exec_ns: 1_000_000,
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy");
    g.sample_size(30);
    for &n in &[16usize, 64, 256, 1024] {
        let snap = snapshot(n, 7);
        g.bench_with_input(BenchmarkId::new("multi_objective", n), &snap, |b, s| {
            b.iter(|| MultiObjectivePolicy.select(black_box(s)))
        });
        g.bench_with_input(BenchmarkId::new("heuristic", n), &snap, |b, s| {
            b.iter(|| HeuristicPolicy.select(black_box(s)))
        });
    }
    g.finish();
}

fn bench_estimate(c: &mut Criterion) {
    use atropos::resource::ResourceRegistry;
    use atropos::task::TaskRecord;
    use atropos::AtroposConfig;
    let mut g = c.benchmark_group("estimate");
    g.sample_size(30);
    let mut reg = ResourceRegistry::new();
    for i in 0..N_RESOURCES {
        reg.register(format!("r{i}"), ResourceType::Lock);
    }
    let cfg = AtroposConfig::default();
    for &n in &[64usize, 512, 4096] {
        let mut tasks: Vec<TaskRecord> = (0..n)
            .map(|i| {
                let mut t = TaskRecord::new(TaskId(i as u64), TaskKey(i as u64), 0, N_RESOURCES);
                t.on_unit_start(0);
                t.usage[i % N_RESOURCES].on_get(10, 1 + (i as u64 % 5));
                if i % 3 == 0 {
                    t.usage[(i + 1) % N_RESOURCES].on_slow(20, 1);
                }
                t.roll_window(1_000_000);
                t
            })
            .collect();
        // Re-roll each iteration is unnecessary: estimate() is read-only.
        let tasks_ref = &mut tasks;
        g.bench_with_input(BenchmarkId::new("full_pass", n), &n, |b, _| {
            b.iter(|| atropos::estimator::estimate(black_box(tasks_ref.iter()), &reg, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies, bench_estimate);
criterion_main!(benches);
