//! Criterion bench: the cost of the Figure 6b tracing APIs.
//!
//! This is the real-time counterpart of §5.5: the per-event cost of
//! `get/free/slow_by_resource` in sampled-timestamp mode (the normal-load
//! hot path) vs precise mode (potential overload), plus task lifecycle
//! and progress reporting.

use std::sync::Arc;

use atropos::{AtroposConfig, AtroposRuntime, ResourceType};
use atropos_sim::{Clock, SystemClock};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn runtime() -> (Arc<AtroposRuntime>, atropos::TaskId, atropos::ResourceId) {
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let rt = Arc::new(AtroposRuntime::new(AtroposConfig::default(), clock));
    let rid = rt.register_resource("bench", ResourceType::Memory);
    let task = rt.create_cancel(Some(1));
    rt.unit_started(task);
    (rt, task, rid)
}

fn bench_tracing(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracing");
    g.sample_size(50);

    let (rt, task, rid) = runtime();
    g.bench_function("get_resource/sampled", |b| {
        b.iter(|| rt.get_resource(black_box(task), black_box(rid), 1))
    });
    g.bench_function("slow_by_resource/sampled", |b| {
        b.iter(|| rt.slow_by_resource(black_box(task), black_box(rid), 1))
    });
    g.bench_function("get_free_pair/sampled", |b| {
        b.iter(|| {
            rt.get_resource(task, rid, 4);
            rt.free_resource(task, rid, 4);
        })
    });
    g.bench_function("report_progress", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            rt.report_progress(task, k, 1_000_000)
        })
    });
    g.bench_function("task_lifecycle", |b| {
        b.iter(|| {
            let t = rt.create_cancel(None);
            rt.unit_started(t);
            rt.unit_finished(t);
            rt.free_cancel(t);
        })
    });
    g.finish();
}

fn bench_timestamp_modes(c: &mut Criterion) {
    use atropos::trace::TimestampPolicy;
    use atropos::TimestampMode;
    let mut g = c.benchmark_group("timestamp");
    let clock = SystemClock::new();
    let mut sampled = TimestampPolicy::new(1_000_000);
    g.bench_function("stamp/sampled", |b| {
        b.iter(|| sampled.stamp(black_box(clock.now_ns())))
    });
    let mut precise = TimestampPolicy::new(1_000_000);
    precise.set_mode(TimestampMode::Precise);
    g.bench_function("stamp/precise", |b| {
        b.iter(|| precise.stamp(black_box(clock.now_ns())))
    });
    g.finish();
}

criterion_group!(benches, bench_tracing, bench_timestamp_modes);
criterion_main!(benches);
