//! Criterion bench: the cost of the Figure 6b tracing APIs.
//!
//! This is the real-time counterpart of §5.5: the per-event cost of
//! `get/free/slow_by_resource` in sampled-timestamp mode (the normal-load
//! hot path) vs precise mode (potential overload), plus task lifecycle
//! and progress reporting.

use std::sync::Arc;

use atropos::lockfree::LockFreeIngest;
use atropos::trace::{PushOutcome, ShardedIngest};
use atropos::{AtroposConfig, AtroposRuntime, IngestMode, ResourceType, TimestampMode};
use atropos_bench::scaling;
use atropos_sim::{Clock, SystemClock};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn runtime_with(mode: IngestMode) -> Arc<AtroposRuntime> {
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let cfg = AtroposConfig {
        ingest_mode: mode,
        ..AtroposConfig::default()
    };
    Arc::new(AtroposRuntime::new(cfg, clock))
}

fn runtime() -> (Arc<AtroposRuntime>, atropos::TaskId, atropos::ResourceId) {
    let rt = runtime_with(IngestMode::Direct);
    let rid = rt.register_resource("bench", ResourceType::Memory);
    let task = rt.create_cancel(Some(1));
    rt.unit_started(task);
    (rt, task, rid)
}

fn bench_tracing(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracing");
    g.sample_size(50);

    let (rt, task, rid) = runtime();
    g.bench_function("get_resource/sampled", |b| {
        b.iter(|| rt.get_resource(black_box(task), black_box(rid), 1))
    });
    g.bench_function("slow_by_resource/sampled", |b| {
        b.iter(|| rt.slow_by_resource(black_box(task), black_box(rid), 1))
    });
    g.bench_function("get_free_pair/sampled", |b| {
        b.iter(|| {
            rt.get_resource(task, rid, 4);
            rt.free_resource(task, rid, 4);
        })
    });
    g.bench_function("report_progress", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            rt.report_progress(task, k, 1_000_000)
        })
    });
    g.bench_function("task_lifecycle", |b| {
        b.iter(|| {
            let t = rt.create_cancel(None);
            rt.unit_started(t);
            rt.unit_finished(t);
            rt.free_cancel(t);
        })
    });
    g.finish();
}

/// Full ingest cycle under producer contention: `threads` producers each
/// emit `events` tracing calls on their own task. In `Direct` mode every
/// call takes the runtime's global lock and lands in the accounting
/// inline; in `Sharded` mode calls append to stripe-locked buffers, and
/// in `LockFree` mode to wait-free per-producer rings; for both buffered
/// modes the periodic replay (here the mid-window flush whenever a lane
/// fills) is paid inside the measured interval, so the comparison
/// includes the drain work, not just the cheap append.
fn contended_emit(rt: &Arc<AtroposRuntime>, threads: u64, events: u64) {
    std::thread::scope(|s| {
        for p in 0..threads {
            let rt = rt.clone();
            s.spawn(move || {
                let task = rt.create_cancel(Some(p));
                let rid = atropos::ResourceId(0);
                for i in 0..events {
                    match i % 3 {
                        0 => rt.get_resource(task, rid, 1),
                        1 => rt.free_resource(task, rid, 1),
                        _ => rt.slow_by_resource(task, rid, 1),
                    }
                }
                rt.free_cancel(task);
            });
        }
    });
}

fn bench_contended_ingest(c: &mut Criterion) {
    const EVENTS: u64 = 4_096;
    let mut g = c.benchmark_group("contended_ingest");
    g.sample_size(30);
    for (mode, mode_name) in [
        (IngestMode::Direct, "direct"),
        (IngestMode::Sharded, "sharded"),
        (IngestMode::LockFree, "lockfree"),
    ] {
        for (ts, ts_name) in [
            (TimestampMode::Sampled, "sampled"),
            (TimestampMode::Precise, "precise"),
        ] {
            for threads in [1u64, 4, 8] {
                let rt = runtime_with(mode);
                rt.register_resource("bench", ResourceType::Memory);
                rt.set_timestamp_mode(ts);
                g.throughput(Throughput::Elements(threads * EVENTS));
                g.bench_with_input(
                    BenchmarkId::new(
                        format!("{mode_name}/{ts_name}"),
                        format!("{threads}threads"),
                    ),
                    &threads,
                    |b, &threads| b.iter(|| contended_emit(&rt, threads, EVENTS)),
                );
                // Settle any buffered remainder so runs stay independent.
                rt.stats();
            }
        }
    }
    g.finish();
}

/// The isolated hot-path cost the tentpole optimizes: a stripe-locked
/// bounded append (`ShardedIngest::push`) vs a wait-free seqlock-cell
/// claim (`LockFreeIngest::push`) vs the direct path's
/// global-lock-plus-inline-accounting, measured per event without any
/// drain in the loop.
fn bench_emit_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest_emit");
    let ing = ShardedIngest::new(8, 1 << 14);
    let task = atropos::TaskId(1);
    let rid = atropos::ResourceId(0);
    g.bench_function("sharded_push", |b| {
        b.iter(|| {
            match ing.push(
                black_box(task),
                black_box(rid),
                1,
                atropos::trace::EventKind::Get,
                0,
            ) {
                PushOutcome::Buffered => {}
                PushOutcome::Full(_) => {
                    // Keep the buffer from saturating without an Inner to
                    // drain into: empty the stripes and continue.
                    let _ = ing.drain();
                }
            }
        })
    });
    let lf = LockFreeIngest::new(8, 1 << 14);
    g.bench_function("lockfree_push", |b| {
        b.iter(|| {
            match lf.push(
                black_box(task),
                black_box(rid),
                1,
                atropos::trace::EventKind::Get,
                0,
            ) {
                PushOutcome::Buffered => {}
                PushOutcome::Full(_) => {
                    let _ = lf.drain();
                }
            }
        })
    });
    let (rt, task, rid) = runtime();
    g.bench_function("direct_apply", |b| {
        b.iter(|| rt.get_resource(black_box(task), black_box(rid), 1))
    });
    g.finish();
}

/// Multi-core emit-phase scaling: N persistent producers burst into the
/// buffered sinks while a background drainer plays the tick side, and
/// only the emit phase is timed (see `atropos_bench::scaling`). On a
/// single-core runner these curves are degenerate — the snapshot script
/// records the detected core count next to them, and the efficiency
/// regression guard (`tests/ingest_scaling.rs`) skips loudly rather
/// than gate on time-sliced numbers.
fn bench_emit_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("emit_scaling");
    g.sample_size(20);
    for mode in ["sharded", "lockfree"] {
        for producers in [1u64, 2, 4, 8] {
            let sink = scaling::sink_for(mode);
            let _drainer = scaling::BackgroundDrainer::start(sink.clone());
            let team = scaling::ProducerTeam::new(producers, sink);
            g.throughput(Throughput::Elements(producers * scaling::BURST));
            g.bench_with_input(
                BenchmarkId::new(mode, format!("{producers}producers")),
                &producers,
                |b, _| b.iter(|| team.burst()),
            );
        }
    }
    g.finish();
}

/// Cost of the tick-side replay: emit a batch into the stripes, then
/// drain it through `stats()`. Per-event drain latency is this figure
/// divided by the batch size, minus the push cost measured above.
fn bench_tick_drain(c: &mut Criterion) {
    const BATCH: u64 = 1_024;
    let mut g = c.benchmark_group("tick_drain");
    g.sample_size(50);
    g.throughput(Throughput::Elements(BATCH));
    let rt = runtime_with(IngestMode::Sharded);
    let rid = rt.register_resource("bench", ResourceType::Memory);
    let task = rt.create_cancel(Some(1));
    g.bench_function("emit_and_drain_1024", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                rt.get_resource(task, rid, 1);
            }
            black_box(rt.stats().trace_events)
        })
    });
    g.finish();
}

fn bench_timestamp_modes(c: &mut Criterion) {
    use atropos::trace::TimestampPolicy;
    use atropos::TimestampMode;
    let mut g = c.benchmark_group("timestamp");
    let clock = SystemClock::new();
    let mut sampled = TimestampPolicy::new(1_000_000);
    g.bench_function("stamp/sampled", |b| {
        b.iter(|| sampled.stamp(black_box(clock.now_ns())))
    });
    let mut precise = TimestampPolicy::new(1_000_000);
    precise.set_mode(TimestampMode::Precise);
    g.bench_function("stamp/precise", |b| {
        b.iter(|| precise.stamp(black_box(clock.now_ns())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tracing,
    bench_contended_ingest,
    bench_emit_path,
    bench_emit_scaling,
    bench_tick_drain,
    bench_timestamp_modes
);
criterion_main!(benches);
