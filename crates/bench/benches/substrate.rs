//! Criterion bench: the simulation substrate and the substrate port.
//!
//! Measures the building blocks whose cost bounds how much virtual time
//! the harness can simulate per wall-clock second: event queue churn,
//! buffer-pool accesses (hit and thrash paths), lock grant chains, and an
//! end-to-end slice of the minidb server — plus the dispatch cost of the
//! `RuntimePort` abstraction both substrates now emit through (bare
//! vtable call, and with probe / quiet-injector middleware stacked).

use std::sync::Arc;

use atropos::{AtroposConfig, AtroposRuntime, ResourceType};
use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
use atropos_app::ids::{ClientId, RequestId};
use atropos_app::op::AccessPattern;
use atropos_app::resources::bufferpool::{BufferPool, BufferPoolConfig};
use atropos_app::resources::lock::LockManager;
use atropos_app::server::SimServer;
use atropos_app::workload::WorkloadSpec;
use atropos_app::NoControl;
use atropos_chaos::{FaultInjector, FaultPlan};
use atropos_sim::{Clock, EventQueue, SimRng, SimTime, SystemClock};
use atropos_substrate::{ProbePort, RuntimePort};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 4096), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    // Cancel-heavy churn: the pattern a cancellation framework's own
    // simulator produces. 90% of scheduled events are canceled before
    // firing; tombstone compaction keeps the heap from accumulating dead
    // entries across rounds.
    g.bench_function("churn_cancel_90pct_10rounds", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for round in 0..10u64 {
                let toks: Vec<_> = (0..1_000u64)
                    .map(|i| q.schedule(SimTime::from_nanos(round * 4096 + (i * 7919) % 4096), i))
                    .collect();
                for tok in &toks[..900] {
                    q.cancel(*tok);
                }
                for _ in 0..100 {
                    q.pop();
                }
            }
            black_box(q.compactions())
        })
    });
    g.finish();
}

fn bench_bufferpool(c: &mut Criterion) {
    let mut g = c.benchmark_group("bufferpool");
    let cfg = BufferPoolConfig {
        capacity: 32_768,
        hot_keys: 26_000,
        zipf_theta: 0.85,
        hit_ns: 800,
        miss_ns: 250_000,
        scan_miss_ns: 20_000,
        evict_ns: 20_000,
    };
    let mut warm = BufferPool::new(cfg.clone());
    warm.prewarm(26_000);
    let mut rng = SimRng::new(3);
    g.bench_function("hot_access_6", |b| {
        b.iter(|| {
            warm.access(
                RequestId(1),
                ClientId(0),
                AccessPattern::Skewed,
                6,
                0,
                &mut rng,
            )
        })
    });
    let mut thrash = BufferPool::new(cfg);
    thrash.prewarm(26_000);
    let mut pos = 0u64;
    g.bench_function("scan_chunk_512", |b| {
        b.iter(|| {
            pos += 512;
            thrash.access(
                RequestId(2),
                ClientId(0),
                AccessPattern::Scan { base: 0 },
                512,
                pos,
                &mut rng,
            )
        })
    });
    g.finish();
}

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");
    g.bench_function("grant_chain_64", |b| {
        b.iter(|| {
            let mut m = LockManager::new(1);
            let l = atropos_app::ids::LockId(0);
            m.acquire(l, RequestId(0), atropos_app::op::LockMode::Exclusive);
            for i in 1..=64u64 {
                m.acquire(l, RequestId(i), atropos_app::op::LockMode::Shared);
            }
            black_box(m.release(l, RequestId(0)))
        })
    });
    g.finish();
}

fn bench_minidb_slice(c: &mut Criterion) {
    let mut g = c.benchmark_group("minidb");
    g.sample_size(10);
    g.bench_function("one_virtual_second_8kqps", |b| {
        b.iter(|| {
            let db = MiniDb::new(MiniDbConfig::default());
            let wl = WorkloadSpec::new(vec![db.point_select(0.65), db.row_update(0.35)], 8_000.0);
            let m = SimServer::new(db.server_config(), wl, Box::new(NoControl))
                .run(SimTime::from_secs(1), SimTime::ZERO);
            black_box(m.completed)
        })
    });
    g.finish();
}

/// The cost of the port seam itself: one `get` emission measured on the
/// concrete runtime, through a bare `Arc<dyn RuntimePort>` (one vtable
/// hop — the price every ported substrate pays), and with middleware
/// stacked per the documented order (probe "recorder", quiet fault
/// injector). The `port_overhead` regression test in `tests/` holds the
/// bare-port figure against the checked-in baseline; this group is for
/// reading the layer-by-layer breakdown.
fn bench_port_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("port_dispatch");
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let rt = Arc::new(AtroposRuntime::new(AtroposConfig::default(), clock));
    let rid = rt.register_resource("bench", ResourceType::Memory);
    let task = rt.create_cancel(Some(1));
    rt.unit_started(task);

    g.bench_function("get/direct", |b| {
        b.iter(|| rt.get_resource(black_box(task), black_box(rid), 1))
    });
    let port: Arc<dyn RuntimePort> = rt.clone();
    g.bench_function("get/port", |b| {
        b.iter(|| port.get(black_box(task), black_box(rid), 1))
    });
    let probed: Arc<dyn RuntimePort> = Arc::new(ProbePort::new(rt.clone()));
    g.bench_function("get/port+probe", |b| {
        b.iter(|| probed.get(black_box(task), black_box(rid), 1))
    });
    let injected: Arc<dyn RuntimePort> = Arc::new(FaultInjector::over(
        rt.clone() as Arc<dyn RuntimePort>,
        &FaultPlan::quiet(1),
    ));
    g.bench_function("get/port+quiet_injector", |b| {
        b.iter(|| injected.get(black_box(task), black_box(rid), 1))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_bufferpool,
    bench_locks,
    bench_minidb_slice,
    bench_port_dispatch
);
criterion_main!(benches);
