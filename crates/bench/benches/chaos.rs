//! Criterion bench: fault-injector interposition overhead.
//!
//! The chaos harness routes every Figure 6b protocol event through
//! [`atropos_chaos::FaultInjector`] so it can drop/duplicate/delay them
//! and keep ground truth for the invariant checker. That wrapper is only
//! useful if it stays cheap enough to run everywhere in the test suite:
//! this bench pins the per-event cost of the interposed path (quiet plan
//! and an armed plan) against direct runtime calls, plus the cost of a
//! full scripted scenario run with invariant checks after every tick.

use std::sync::Arc;

use atropos::{AtroposConfig, AtroposRuntime, ResourceType};
use atropos_chaos::{run_scenario, Fault, FaultInjector, FaultPlan, ScenarioKind};
use atropos_sim::{Clock, SystemClock};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn runtime() -> (Arc<AtroposRuntime>, atropos::TaskId, atropos::ResourceId) {
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let rt = Arc::new(AtroposRuntime::new(AtroposConfig::default(), clock));
    let rid = rt.register_resource("bench", ResourceType::Memory);
    let task = rt.create_cancel(Some(1));
    rt.unit_started(task);
    (rt, task, rid)
}

fn bench_injector_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos");
    g.sample_size(50);
    g.throughput(Throughput::Elements(2));

    // Baseline: the same get/free pair straight into the runtime.
    let (rt, task, rid) = runtime();
    g.bench_function("get_free_pair/direct", |b| {
        b.iter(|| {
            rt.get_resource(black_box(task), rid, 4);
            rt.free_resource(task, rid, 4);
        })
    });

    // Interposed, nothing armed: the cost of truth-keeping alone.
    let (rt, task, rid) = runtime();
    let inj = FaultInjector::new(rt, &FaultPlan::quiet(7));
    g.bench_function("get_free_pair/injected_quiet", |b| {
        b.iter(|| {
            inj.get_resource(black_box(task), rid, 4);
            inj.free_resource(task, rid, 4);
        })
    });

    // Interposed with live fault sites: every event draws from the
    // seeded sub-streams (budgets large enough to never exhaust).
    let (rt, task, rid) = runtime();
    let plan = FaultPlan {
        seed: 7,
        faults: vec![
            Fault::DropFree {
                probability: 0.01,
                budget: u64::MAX,
            },
            Fault::DelayBatch {
                probability: 0.01,
                budget: u64::MAX,
                ticks: 1,
            },
        ],
    };
    let inj = FaultInjector::new(rt, &plan);
    g.bench_function("get_free_pair/injected_armed", |b| {
        b.iter(|| {
            inj.get_resource(black_box(task), rid, 4);
            inj.free_resource(task, rid, 4);
        })
    });
    g.finish();

    // One full scripted scenario (12 windows, every invariant checked
    // after every tick) — the unit the soak binary and proptest suite
    // repeat hundreds of times.
    let mut g = c.benchmark_group("chaos_scenario");
    g.sample_size(10);
    g.bench_function("lock_hog_quiet_checked", |b| {
        b.iter(|| run_scenario(ScenarioKind::LockHog, &FaultPlan::quiet(11), 1))
    });
    g.bench_function("lock_hog_sampled_checked", |b| {
        b.iter(|| run_scenario(ScenarioKind::LockHog, &FaultPlan::sample(11), 1))
    });
    g.finish();
}

criterion_group!(benches, bench_injector_overhead);
criterion_main!(benches);
