//! Live-harness smoke benchmark: wall-clock victim tail latency with and
//! without Atropos on an identical overload, plus the per-op cost of the
//! traced primitives.
//!
//! Unlike the microbenches this one measures *end-to-end outcomes*, so it
//! does not iterate under criterion: each mode is one short serving run
//! (a convoy forms either way; the question is how long it lasts). It
//! prints the same machine-readable lines as the criterion shim —
//!   BENCHRESULT {"id":...,"ns_per_iter":...,"iters":N}
//! — so `scripts/bench_snapshot.sh` can distill them into BENCH_live.json.

use std::sync::Arc;
use std::time::{Duration, Instant};

use atropos::{AtroposConfig, AtroposRuntime};
use atropos_live::{live_atropos_config, run, ControlMode, CulpritKind, LiveConfig, TracedLock};
use atropos_sim::SystemClock;

fn emit(id: &str, ns: f64, iters: u64) {
    println!("BENCHRESULT {{\"id\":\"{id}\",\"ns_per_iter\":{ns},\"iters\":{iters}}}");
}

fn smoke_config() -> LiveConfig {
    LiveConfig {
        workers: 4,
        run_for: Duration::from_millis(700),
        interarrival: Duration::from_millis(2),
        culprit_after: Duration::from_millis(200),
        culprit_every: None,
        culprit_kind: CulpritKind::LockHog,
        // Longer than the run: without control the convoy lasts until the
        // harness raises the stop flag (~500 ms of blocked victims).
        culprit_hold: Duration::from_secs(2),
        checkpoint: Duration::from_millis(1),
        tick_period: Duration::from_millis(50),
        ..LiveConfig::default()
    }
}

fn main() {
    // Per-op floor: an uncontended traced-lock roundtrip (two tracing
    // events + the real mutex).
    let rt = Arc::new(AtroposRuntime::new(
        AtroposConfig::default(),
        Arc::new(SystemClock::new()),
    ));
    let lock = TracedLock::new(rt.clone(), "bench_lock", ());
    let task = rt.create_cancel(None);
    let iters = 100_000u64;
    let start = Instant::now();
    for _ in 0..iters {
        drop(lock.lock(task));
    }
    emit(
        "live/traced_lock_roundtrip",
        start.elapsed().as_nanos() as f64 / iters as f64,
        iters,
    );

    // End-to-end: identical overloaded runs, uncontrolled vs supervised.
    let baseline = run(smoke_config(), ControlMode::NoControl);
    emit(
        "live/victim_p99/no_control",
        baseline.victim.p99_ns as f64,
        baseline.victim.count,
    );

    let controlled = run(smoke_config(), ControlMode::Atropos(live_atropos_config()));
    emit(
        "live/victim_p99/atropos",
        controlled.victim.p99_ns as f64,
        controlled.victim.count,
    );
    if let Some(ttc) = controlled.time_to_cancel {
        emit("live/time_to_cancel", ttc.as_nanos() as f64, 1);
    }

    eprintln!(
        "live smoke: victim p99 {:.1} ms (no control) vs {:.1} ms (atropos), \
         {} of {} culprits canceled",
        baseline.victim.p99_ns as f64 / 1e6,
        controlled.victim.p99_ns as f64 / 1e6,
        controlled.culprits_canceled,
        controlled.culprits_started,
    );
}
