//! Criterion bench: the detector and window-accounting hot path.
//!
//! The runtime ticks at the detector window period (10 ms default), and
//! every tick rolls the accounting window of every live task. These
//! benches bound the control loop's cost per tick as live-task counts
//! grow — the quantity that determines how fine the detection granularity
//! can be.

use atropos::accounting::UsageStats;
use atropos::config::DetectorConfig;
use atropos::detect::Detector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_detector(c: &mut Criterion) {
    let mut g = c.benchmark_group("detector");
    // A detector with populated windows: 100 completions per 10 ms window
    // over 16 windows of history.
    let mut d = Detector::new(DetectorConfig::default(), 0);
    for w in 0..32u64 {
        for i in 0..100u64 {
            d.record_completion(w * 10_000_000 + i * 90_000, 2_000_000);
        }
    }
    g.bench_function("evaluate_populated", |b| {
        let mut now = 320_000_000u64;
        b.iter(|| {
            now += 1;
            black_box(d.evaluate(now, 50))
        })
    });
    g.bench_function("record_completion", |b| {
        let mut now = 320_000_000u64;
        b.iter(|| {
            now += 1_000;
            d.record_completion(now, black_box(2_000_000));
        })
    });
    g.finish();
}

fn bench_accounting(c: &mut Criterion) {
    let mut g = c.benchmark_group("accounting");
    g.bench_function("get_free_cycle", |b| {
        let mut s = UsageStats::default();
        let mut now = 0u64;
        b.iter(|| {
            now += 100;
            s.on_get(now, 4);
            s.on_free(now + 50, 4);
        })
    });
    g.bench_function("wait_get_free_cycle", |b| {
        let mut s = UsageStats::default();
        let mut now = 0u64;
        b.iter(|| {
            now += 100;
            s.on_slow(now, 1);
            s.on_get(now + 30, 1);
            s.on_free(now + 80, 1);
        })
    });
    for &n in &[64usize, 1024] {
        g.bench_with_input(BenchmarkId::new("roll_window", n), &n, |b, &n| {
            let mut stats: Vec<UsageStats> = (0..n)
                .map(|i| {
                    let mut s = UsageStats::default();
                    s.on_get(i as u64, 1 + i as u64 % 7);
                    s
                })
                .collect();
            let mut now = 1_000u64;
            b.iter(|| {
                now += 10_000_000;
                for s in &mut stats {
                    s.roll_window(now);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detector, bench_accounting);
criterion_main!(benches);
