//! Async-harness smoke benchmark: the future-drop substrate's wall-clock
//! victim tail latency with and without Atropos on an identical overload,
//! plus the per-op cost of a spawned async traced-lock roundtrip.
//!
//! Mirrors `benches/live.rs` for the thread substrate: end-to-end
//! outcomes, one short serving run per mode, machine-readable lines —
//!   BENCHRESULT {"id":...,"ns_per_iter":...,"iters":N}
//! — that `scripts/bench_snapshot.sh` distills into the `async_live`
//! section of BENCH_live.json.

use std::sync::Arc;
use std::time::{Duration, Instant};

use atropos::{AtroposConfig, AtroposRuntime};
use atropos_async::{run, AsyncTracedLock, Executor};
use atropos_live::{live_atropos_config, ControlMode, CulpritKind, LiveConfig};
use atropos_sim::SystemClock;

fn emit(id: &str, ns: f64, iters: u64) {
    println!("BENCHRESULT {{\"id\":\"{id}\",\"ns_per_iter\":{ns},\"iters\":{iters}}}");
}

fn smoke_config() -> LiveConfig {
    LiveConfig {
        workers: 4,
        run_for: Duration::from_millis(700),
        interarrival: Duration::from_millis(2),
        culprit_after: Duration::from_millis(200),
        culprit_every: None,
        culprit_kind: CulpritKind::LockHog,
        // Longer than the run: without control the convoy lasts until the
        // harness raises the stop flag (~500 ms of blocked victims).
        culprit_hold: Duration::from_secs(2),
        checkpoint: Duration::from_millis(1),
        tick_period: Duration::from_millis(50),
        ..LiveConfig::default()
    }
}

fn main() {
    // Per-op floor: spawn a task that takes and releases an uncontended
    // async traced lock, then drive it to completion on an inline
    // executor — one spawn, one poll, two tracing events, one wake-free
    // guard drop. This is the substrate's smallest unit of useful work.
    let rt = Arc::new(AtroposRuntime::new(
        AtroposConfig::default(),
        Arc::new(SystemClock::new()),
    ));
    let lock = Arc::new(AsyncTracedLock::new(rt.clone(), "bench_lock"));
    let task = rt.create_cancel(None);
    let ex = Executor::inline();
    let iters = 100_000u64;
    let start = Instant::now();
    for _ in 0..iters {
        let l = lock.clone();
        ex.spawn(async move {
            drop(l.lock(task).await);
        });
        ex.poll_one();
    }
    emit(
        "async_live/spawned_lock_roundtrip",
        start.elapsed().as_nanos() as f64 / iters as f64,
        iters,
    );
    ex.shutdown();

    // End-to-end: identical overloaded runs, uncontrolled vs supervised.
    // In the supervised run the cancellation is a future drop through the
    // abort registry — no cooperative token exists in this substrate.
    let baseline = run(smoke_config(), ControlMode::NoControl);
    emit(
        "async_live/victim_p99/no_control",
        baseline.victim.p99_ns as f64,
        baseline.victim.count,
    );

    let controlled = run(smoke_config(), ControlMode::Atropos(live_atropos_config()));
    emit(
        "async_live/victim_p99/atropos",
        controlled.victim.p99_ns as f64,
        controlled.victim.count,
    );
    if let Some(ttc) = controlled.time_to_cancel {
        emit("async_live/time_to_cancel", ttc.as_nanos() as f64, 1);
    }

    eprintln!(
        "async smoke: victim p99 {:.1} ms (no control) vs {:.1} ms (atropos), \
         {} of {} culprits aborted",
        baseline.victim.p99_ns as f64 / 1e6,
        controlled.victim.p99_ns as f64 / 1e6,
        controlled.culprits_canceled,
        controlled.culprits_started,
    );
}
