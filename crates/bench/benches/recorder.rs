//! Criterion bench: the cost of the decision-trace observability layer.
//!
//! Two questions matter. First, the *disabled* cost: a runtime with no
//! recorder attached must emit trace events exactly as fast as before the
//! recorder hooks existed (the `RecorderHandle` is a `None` branch on the
//! control path and the emit path never touches it at all). Second, the
//! *enabled* cost: `FlightRecorder::record` and `MetricsRegistry::observe`
//! are paid per decision event — a handful per tick, not per trace event —
//! so tens of nanoseconds are irrelevant in absolute terms, but they must
//! never block.

use std::sync::Arc;

use atropos::record::{CancelOrigin, DecisionEvent, Recorder};
use atropos::trace::{PushOutcome, ShardedIngest};
use atropos::{AtroposConfig, AtroposRuntime, IngestMode, ResourceType};
use atropos_obs::{FlightRecorder, MetricsRegistry, Observer};
use atropos_sim::{Clock, SystemClock};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn runtime(mode: IngestMode) -> Arc<AtroposRuntime> {
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let cfg = AtroposConfig {
        ingest_mode: mode,
        ..AtroposConfig::default()
    };
    Arc::new(AtroposRuntime::new(cfg, clock))
}

fn sample_event() -> DecisionEvent {
    DecisionEvent::CancelIssued {
        tick: 3,
        key: atropos::TaskKey(9000),
        now_ns: 123_456_789,
        origin: CancelOrigin::Policy,
    }
}

/// The PR 1 emit path, re-measured with recorder support compiled in: a
/// stripe-local push and the direct-mode apply, neither touching the
/// recorder. These are the numbers the overhead guard test compares
/// against `BENCH_trace.json`.
fn bench_emit_path_with_recorder_support(c: &mut Criterion) {
    let mut g = c.benchmark_group("recorder_emit");
    let ing = ShardedIngest::new(8, 1 << 14);
    let task = atropos::TaskId(1);
    let rid = atropos::ResourceId(0);
    g.bench_function("sharded_push/no_recorder", |b| {
        b.iter(|| {
            match ing.push(
                black_box(task),
                black_box(rid),
                1,
                atropos::trace::EventKind::Get,
                0,
            ) {
                PushOutcome::Buffered => {}
                PushOutcome::Full(_) => {
                    let _ = ing.drain();
                }
            }
        })
    });
    for (name, install) in [("no_recorder", false), ("with_recorder", true)] {
        let rt = runtime(IngestMode::Direct);
        let rid = rt.register_resource("bench", ResourceType::Memory);
        let task = rt.create_cancel(Some(1));
        rt.unit_started(task);
        if install {
            let _obs = Observer::install(&rt, 4096);
        }
        g.bench_function(format!("direct_apply/{name}"), |b| {
            b.iter(|| rt.get_resource(black_box(task), black_box(rid), 1))
        });
    }
    g.finish();
}

/// Per-decision-event costs of the enabled observer: the lock-free ring
/// write, the relaxed-atomic counter update, and the composed
/// `Observer::record` the runtime actually calls.
fn bench_enabled_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("recorder_record");
    let ev = sample_event();
    let ring = FlightRecorder::new(4096);
    g.bench_function("ring_record", |b| b.iter(|| ring.record(black_box(ev))));
    let registry = MetricsRegistry::new();
    g.bench_function("registry_observe", |b| {
        b.iter(|| registry.observe(black_box(&ev)))
    });
    let obs = Observer::new(4096);
    g.bench_function("observer_record", |b| b.iter(|| obs.record(black_box(ev))));
    // Saturated ring: every write lands on an occupied slot and sheds via
    // overwrite — the worst case must stay flat, not degrade.
    let tiny = FlightRecorder::new(2);
    for _ in 0..4 {
        tiny.record(ev);
    }
    g.bench_function("ring_record_saturated", |b| {
        b.iter(|| tiny.record(black_box(ev)))
    });
    g.finish();
}

/// The task-lifecycle path (`create`/`started`/`finished`/`free_cancel`)
/// with and without an attached recorder: `free_cancel` is the one
/// lifecycle call that consults the recorder (for cancel-completion
/// latency), so this isolates the disabled-branch cost in context.
fn bench_lifecycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("recorder_lifecycle");
    for (name, install) in [("no_recorder", false), ("with_recorder", true)] {
        let rt = runtime(IngestMode::Direct);
        rt.register_resource("bench", ResourceType::Memory);
        if install {
            let _obs = Observer::install(&rt, 4096);
        }
        g.bench_function(format!("task_lifecycle/{name}"), |b| {
            b.iter(|| {
                let t = rt.create_cancel(None);
                rt.unit_started(t);
                rt.unit_finished(t);
                rt.free_cancel(t);
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_emit_path_with_recorder_support,
    bench_enabled_record,
    bench_lifecycle
);
criterion_main!(benches);
