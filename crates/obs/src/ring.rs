//! The flight recorder: a bounded, non-blocking ring of decision events.
//!
//! Writers ([`FlightRecorder::record`], called from inside the runtime's
//! tick and cancel paths) never block: each event claims a slot with a
//! relaxed atomic sequence counter and takes the slot's lock with
//! `try_lock`. If a drain holds the slot at that instant the event is
//! *dropped* (counted, never waited for); if the ring wrapped before a
//! drain, the old event is *overwritten* (counted). Both counters are
//! exposed so tests can assert the recorder sheds rather than stalls.

use std::sync::atomic::{AtomicU64, Ordering};

use atropos::{DecisionEvent, Recorder};
use parking_lot::Mutex;

/// Default ring capacity: comfortably holds every event of a 16-case
/// scenario sweep (a decision tick emits ~a dozen events; see DESIGN.md
/// §11 for the sizing arithmetic).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

type Slot = Mutex<Option<(u64, DecisionEvent)>>;

/// A bounded ring buffer of [`DecisionEvent`]s with never-blocking writes.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    /// Next sequence number; `seq % capacity` is the slot index.
    head: AtomicU64,
    dropped: AtomicU64,
    overwritten: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder holding up to `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends one event without ever blocking; sheds on contention.
    pub fn record(&self, event: DecisionEvent) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Some(mut guard) => {
                if guard.is_some() {
                    self.overwritten.fetch_add(1, Ordering::Relaxed);
                }
                *guard = Some((seq, event));
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Removes and returns every buffered event in emission (sequence)
    /// order. Concurrent writers shed to the drop counter only for the
    /// instant their specific slot is held.
    pub fn drain(&self) -> Vec<DecisionEvent> {
        let mut out: Vec<(u64, DecisionEvent)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            if let Some(entry) = slot.lock().take() {
                out.push(entry);
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, ev)| ev).collect()
    }

    /// Events recorded so far (including dropped and overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events shed because the slot was held by a drain at write time.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events lost to ring wraparound before a drain collected them.
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }
}

impl Recorder for FlightRecorder {
    fn record(&self, event: DecisionEvent) {
        FlightRecorder::record(self, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64) -> DecisionEvent {
        DecisionEvent::RegularOverload { tick }
    }

    #[test]
    fn drain_returns_events_in_emission_order() {
        let ring = FlightRecorder::new(8);
        for i in 0..5 {
            ring.record(ev(i));
        }
        let out = ring.drain();
        let ticks: Vec<u64> = out.iter().map(|e| e.tick()).collect();
        assert_eq!(ticks, vec![0, 1, 2, 3, 4]);
        assert!(ring.drain().is_empty(), "drain must consume");
    }

    #[test]
    fn wraparound_overwrites_oldest_and_counts_it() {
        let ring = FlightRecorder::new(4);
        for i in 0..10 {
            ring.record(ev(i));
        }
        assert_eq!(ring.overwritten(), 6);
        assert_eq!(ring.dropped(), 0);
        let out = ring.drain();
        let ticks: Vec<u64> = out.iter().map(|e| e.tick()).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9], "newest events survive");
    }

    #[test]
    fn writers_shed_instead_of_blocking_on_a_held_slot() {
        let ring = FlightRecorder::new(1);
        let guard = ring.slots[0].lock(); // simulate a drain holding the slot
        ring.record(ev(1));
        drop(guard);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.recorded(), 1);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn concurrent_hammer_accounts_for_every_event() {
        use std::sync::Arc;
        let ring = Arc::new(FlightRecorder::new(64));
        let mut drained = 0u64;
        std::thread::scope(|s| {
            let writers: Vec<_> = (0..4)
                .map(|_| {
                    let r = ring.clone();
                    s.spawn(move || {
                        for i in 0..1000 {
                            r.record(ev(i));
                        }
                    })
                })
                .collect();
            for _ in 0..50 {
                drained += ring.drain().len() as u64;
            }
            for w in writers {
                w.join().unwrap();
            }
        });
        drained += ring.drain().len() as u64;
        assert_eq!(
            drained + ring.dropped() + ring.overwritten(),
            4000,
            "every recorded event is either drained, dropped, or overwritten"
        );
    }
}
