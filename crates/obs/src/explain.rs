//! The episode explainer: folds raw decision events into human-readable
//! [`DecisionEpisode`]s.
//!
//! A decision *episode* is everything the runtime concluded in one
//! overloaded tick: the detection signal, the scored resources, the
//! ranked candidates, the blame (with its per-term score breakdown), and
//! the cancellation outcome. Completion events from later ticks are
//! matched back to the episode that issued the cancellation, so each
//! episode tells the whole story of one decision — this is the record
//! the golden regression suite snapshots and chaos invariant I8 audits.

use std::collections::HashMap;

use atropos::{BackoffReason, CancelOrigin, DebugSnapshot, DecisionEvent};
use serde::{Deserialize, Serialize};

/// Resource id → (name, type) lookup used to render episodes.
#[derive(Debug, Clone, Default)]
pub struct ResourceNames {
    names: HashMap<u32, (String, String)>,
}

impl ResourceNames {
    /// Builds the lookup from explicit `(id, name, type)` entries.
    pub fn new(entries: impl IntoIterator<Item = (u32, String, String)>) -> Self {
        Self {
            names: entries.into_iter().map(|(id, n, t)| (id, (n, t))).collect(),
        }
    }

    /// Builds the lookup from a runtime debug snapshot.
    pub fn from_snapshot(snap: &DebugSnapshot) -> Self {
        Self::new(
            snap.resources
                .iter()
                .map(|r| (r.id.0, r.name.clone(), r.rtype.to_string())),
        )
    }

    fn name(&self, id: u32) -> String {
        self.names
            .get(&id)
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| format!("resource-{id}"))
    }

    fn rtype(&self, id: u32) -> String {
        self.names
            .get(&id)
            .map(|(_, t)| t.clone())
            .unwrap_or_else(|| "UNKNOWN".to_string())
    }
}

/// One term of an episode's score breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeTerm {
    /// Resource name.
    pub resource: String,
    /// Contention weight.
    pub weight: f64,
    /// Estimated gain.
    pub gain: f64,
    /// `weight × gain`.
    pub contribution: f64,
}

/// One ranked cancellation candidate of an episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeCandidate {
    /// Task id.
    pub task: u64,
    /// Application key.
    pub key: u64,
    /// Scalarized score.
    pub score: f64,
}

/// A fully folded decision episode. All fields are plain data so the
/// episode serializes to JSON for golden snapshots and log dumps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionEpisode {
    /// Tick the decision happened on.
    pub tick: u64,
    /// Observed latency at detection (ns; `u64::MAX` encodes a stall).
    pub latency_ns: u64,
    /// Observed throughput at detection (qps).
    pub throughput_qps: f64,
    /// How the episode started: `"detection"` or `"operator"`.
    pub origin: String,
    /// Blamed resource name (empty if the episode assigned no blame).
    pub resource: String,
    /// Blamed resource type (`LOCK`/`MEMORY`/`QUEUE`/`SYSTEM`).
    pub resource_type: String,
    /// Culprit task id (`None` if no blame was assigned).
    pub culprit_task: Option<u64>,
    /// Culprit application key (`None` if no blame was assigned).
    pub culprit_key: Option<u64>,
    /// Winning scalarized score.
    pub score: f64,
    /// Per-resource score breakdown, highest contribution first.
    pub terms: Vec<EpisodeTerm>,
    /// The ranked candidate set the culprit won against.
    pub candidates: Vec<EpisodeCandidate>,
    /// Tasks observed waiting on the blamed resource at decision time.
    pub victims_waiting: u64,
    /// Outcome: `"issued"`, `"rate_limited"`, `"already_canceled"`,
    /// `"no_initiator"`, `"no_target"`, or `"regular_overload"`.
    pub outcome: String,
    /// Key whose cancellation this episode issued, if any.
    pub canceled_key: Option<u64>,
    /// Whether the issued cancellation completed (`free_cancel` reached).
    pub completed: bool,
    /// Issue-to-completion latency (ns), once completed.
    pub time_to_cancel_ns: Option<u64>,
}

impl DecisionEpisode {
    fn empty(tick: u64, origin: &str) -> Self {
        Self {
            tick,
            latency_ns: 0,
            throughput_qps: 0.0,
            origin: origin.to_string(),
            resource: String::new(),
            resource_type: String::new(),
            culprit_task: None,
            culprit_key: None,
            score: 0.0,
            terms: Vec::new(),
            candidates: Vec::new(),
            victims_waiting: 0,
            outcome: "no_target".to_string(),
            canceled_key: None,
            completed: false,
            time_to_cancel_ns: None,
        }
    }
}

impl std::fmt::Display for DecisionEpisode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tick {:>3} [{}] ", self.tick, self.origin)?;
        if self.outcome == "regular_overload" {
            return write!(f, "regular overload (no bottlenecked resource)");
        }
        if self.latency_ns == u64::MAX {
            write!(f, "stall (no completions) ")?;
        } else if self.latency_ns > 0 {
            write!(
                f,
                "p-latency {:.1}ms @ {:.1}qps ",
                self.latency_ns as f64 / 1e6,
                self.throughput_qps
            )?;
        }
        match (self.culprit_key, self.resource.is_empty()) {
            (Some(key), _) => {
                write!(
                    f,
                    "→ blamed key {key} on {} ({}) score {:.3}",
                    self.resource, self.resource_type, self.score
                )?;
                if !self.terms.is_empty() {
                    let terms: Vec<String> = self
                        .terms
                        .iter()
                        .map(|t| format!("{}: {:.2}×{:.2}", t.resource, t.weight, t.gain))
                        .collect();
                    write!(f, " [{}]", terms.join(", "))?;
                }
                write!(f, "; {} victims waiting", self.victims_waiting)?;
            }
            (None, false) => {
                write!(f, "→ {} bottlenecked, no cancellable target", self.resource)?;
            }
            (None, true) => {}
        }
        write!(f, "; outcome: {}", self.outcome)?;
        if self.completed {
            write!(
                f,
                " (completed in {:.1}ms)",
                self.time_to_cancel_ns.unwrap_or(0) as f64 / 1e6
            )?;
        }
        Ok(())
    }
}

/// Folds an emission-ordered event stream into episodes.
///
/// Grouping is by tick: a `OverloadDetected` (or an operator
/// `CancelIssued`) opens an episode, subsequent same-tick events fill it
/// in, and `CancelCompleted` events from any later tick are matched back
/// to the episode that issued that key. Stray events that fit no open
/// episode open a synthetic one, so no event is silently discarded.
pub fn fold_episodes(events: &[DecisionEvent], names: &ResourceNames) -> Vec<DecisionEpisode> {
    let mut episodes: Vec<DecisionEpisode> = Vec::new();
    // Key → index of the episode that issued its cancellation.
    let mut issued_by: HashMap<u64, usize> = HashMap::new();
    // Index of the episode currently accepting pipeline events per tick.
    let mut open: Option<(u64, usize)> = None;

    let target = |episodes: &mut Vec<DecisionEpisode>,
                  open: &mut Option<(u64, usize)>,
                  tick: u64|
     -> usize {
        match open {
            Some((t, idx)) if *t == tick => *idx,
            _ => {
                episodes.push(DecisionEpisode::empty(tick, "detection"));
                let idx = episodes.len() - 1;
                *open = Some((tick, idx));
                idx
            }
        }
    };

    for ev in events {
        match *ev {
            DecisionEvent::OverloadDetected {
                tick,
                latency_ns,
                throughput_qps,
            } => {
                episodes.push(DecisionEpisode::empty(tick, "detection"));
                let idx = episodes.len() - 1;
                episodes[idx].latency_ns = latency_ns;
                episodes[idx].throughput_qps = throughput_qps;
                open = Some((tick, idx));
            }
            DecisionEvent::ResourceScored { tick, resource, .. } => {
                let idx = target(&mut episodes, &mut open, tick);
                // The hottest resource is scored first; keep it as the
                // episode's blamed resource until BlameAssigned confirms.
                if episodes[idx].resource.is_empty() {
                    episodes[idx].resource = names.name(resource.0);
                    episodes[idx].resource_type = names.rtype(resource.0);
                }
            }
            DecisionEvent::CandidateRanked {
                tick,
                task,
                key,
                score,
            } => {
                let idx = target(&mut episodes, &mut open, tick);
                episodes[idx].candidates.push(EpisodeCandidate {
                    task: task.0,
                    key: key.0,
                    score,
                });
            }
            DecisionEvent::BlameAssigned {
                tick,
                resource,
                task,
                key,
                score,
                terms,
                victims_waiting,
            } => {
                let idx = target(&mut episodes, &mut open, tick);
                let e = &mut episodes[idx];
                e.resource = names.name(resource.0);
                e.resource_type = names.rtype(resource.0);
                e.culprit_task = Some(task.0);
                e.culprit_key = Some(key.0);
                e.score = score;
                e.victims_waiting = victims_waiting;
                e.terms = terms
                    .iter()
                    .flatten()
                    .map(|t| EpisodeTerm {
                        resource: names.name(t.resource.0),
                        weight: t.weight,
                        gain: t.gain,
                        contribution: t.contribution(),
                    })
                    .collect();
            }
            DecisionEvent::CancelIssued {
                tick, key, origin, ..
            } => {
                let idx = match origin {
                    CancelOrigin::Policy => target(&mut episodes, &mut open, tick),
                    CancelOrigin::Operator => {
                        episodes.push(DecisionEpisode::empty(tick, "operator"));
                        episodes.len() - 1
                    }
                };
                episodes[idx].outcome = "issued".to_string();
                episodes[idx].canceled_key = Some(key.0);
                if episodes[idx].culprit_key.is_none() {
                    episodes[idx].culprit_key = Some(key.0);
                }
                issued_by.insert(key.0, idx);
            }
            DecisionEvent::Backoff { tick, key, reason } => {
                let idx = target(&mut episodes, &mut open, tick);
                episodes[idx].outcome = match reason {
                    BackoffReason::RateLimited => "rate_limited",
                    BackoffReason::AlreadyCanceled => "already_canceled",
                    BackoffReason::NoInitiator => "no_initiator",
                }
                .to_string();
                if episodes[idx].culprit_key.is_none() {
                    episodes[idx].culprit_key = Some(key.0);
                }
            }
            DecisionEvent::CancelCompleted {
                key,
                time_to_cancel_ns,
                ..
            } => {
                if let Some(&idx) = issued_by.get(&key.0) {
                    episodes[idx].completed = true;
                    episodes[idx].time_to_cancel_ns = Some(time_to_cancel_ns);
                }
            }
            DecisionEvent::RegularOverload { tick } => {
                let idx = target(&mut episodes, &mut open, tick);
                episodes[idx].outcome = "regular_overload".to_string();
            }
        }
    }
    episodes
}

/// Renders episodes as a line-per-episode log.
pub fn render_episodes(episodes: &[DecisionEpisode]) -> String {
    let mut out = String::new();
    for e in episodes {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos::{GainTerm, ResourceId, ResourceType, TaskId, TaskKey, MAX_GAIN_TERMS};

    fn names() -> ResourceNames {
        ResourceNames::new([(0, "table_lock".to_string(), "LOCK".to_string())])
    }

    fn episode_events() -> Vec<DecisionEvent> {
        let mut terms = [None; MAX_GAIN_TERMS];
        terms[0] = Some(GainTerm {
            resource: ResourceId(0),
            weight: 1.0,
            gain: 3.0,
        });
        vec![
            DecisionEvent::OverloadDetected {
                tick: 4,
                latency_ns: 90_000_000,
                throughput_qps: 12.0,
            },
            DecisionEvent::ResourceScored {
                tick: 4,
                resource: ResourceId(0),
                rtype: ResourceType::Lock,
                contention: 0.8,
                weight: 1.0,
                wait_ns: 70_000_000,
                hold_ns: 95_000_000,
            },
            DecisionEvent::CandidateRanked {
                tick: 4,
                task: TaskId(1),
                key: TaskKey(9000),
                score: 3.0,
            },
            DecisionEvent::BlameAssigned {
                tick: 4,
                resource: ResourceId(0),
                task: TaskId(1),
                key: TaskKey(9000),
                score: 3.0,
                terms,
                victims_waiting: 6,
            },
            DecisionEvent::CancelIssued {
                tick: 4,
                key: TaskKey(9000),
                now_ns: 400_000_000,
                origin: CancelOrigin::Policy,
            },
            DecisionEvent::CancelCompleted {
                tick: 5,
                key: TaskKey(9000),
                time_to_cancel_ns: 101_000_000,
            },
        ]
    }

    #[test]
    fn one_decision_folds_into_one_complete_episode() {
        let eps = fold_episodes(&episode_events(), &names());
        assert_eq!(eps.len(), 1);
        let e = &eps[0];
        assert_eq!(e.tick, 4);
        assert_eq!(e.resource, "table_lock");
        assert_eq!(e.resource_type, "LOCK");
        assert_eq!(e.culprit_key, Some(9000));
        assert_eq!(e.outcome, "issued");
        assert_eq!(e.canceled_key, Some(9000));
        assert!(e.completed);
        assert_eq!(e.time_to_cancel_ns, Some(101_000_000));
        assert_eq!(e.victims_waiting, 6);
        assert_eq!(e.terms.len(), 1);
        assert!((e.terms[0].contribution - 3.0).abs() < 1e-9);
        assert_eq!(e.candidates.len(), 1);
    }

    #[test]
    fn rendered_episode_reads_like_a_sentence() {
        let eps = fold_episodes(&episode_events(), &names());
        let line = eps[0].to_string();
        assert!(line.contains("blamed key 9000"), "{line}");
        assert!(line.contains("table_lock"), "{line}");
        assert!(line.contains("outcome: issued"), "{line}");
        assert!(line.contains("completed in 101.0ms"), "{line}");
    }

    #[test]
    fn regular_overload_is_its_own_episode() {
        let evs = vec![
            DecisionEvent::OverloadDetected {
                tick: 2,
                latency_ns: 40_000_000,
                throughput_qps: 5.0,
            },
            DecisionEvent::RegularOverload { tick: 2 },
        ];
        let eps = fold_episodes(&evs, &names());
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].outcome, "regular_overload");
        assert!(eps[0].to_string().contains("regular overload"));
    }

    #[test]
    fn operator_cancel_opens_a_separate_episode() {
        let evs = vec![DecisionEvent::CancelIssued {
            tick: 0,
            key: TaskKey(7),
            now_ns: 1,
            origin: CancelOrigin::Operator,
        }];
        let eps = fold_episodes(&evs, &names());
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].origin, "operator");
        assert_eq!(eps[0].canceled_key, Some(7));
    }

    #[test]
    fn distinct_ticks_never_share_an_episode() {
        let evs = vec![
            DecisionEvent::OverloadDetected {
                tick: 2,
                latency_ns: u64::MAX,
                throughput_qps: 0.0,
            },
            DecisionEvent::OverloadDetected {
                tick: 3,
                latency_ns: u64::MAX,
                throughput_qps: 0.0,
            },
        ];
        let eps = fold_episodes(&evs, &names());
        assert_eq!(eps.len(), 2);
        assert!(eps[0].to_string().contains("stall"));
    }

    #[test]
    fn episodes_serialize_to_json_and_back() {
        let eps = fold_episodes(&episode_events(), &names());
        let json = serde_json::to_string(&eps[0]).unwrap();
        let back: DecisionEpisode = serde_json::from_str(&json).unwrap();
        assert_eq!(back, eps[0]);
    }
}
