#![warn(missing_docs)]

//! # atropos-obs: decision-trace observability for Atropos
//!
//! Atropos's value is *explainable* cancellation: which task was blamed,
//! on which resource, and why, at the moment of cancellation. This crate
//! turns the runtime's [`DecisionEvent`](atropos::DecisionEvent) stream
//! (emitted through the zero-cost [`Recorder`](atropos::Recorder) hook)
//! into three consumable forms:
//!
//! - [`FlightRecorder`] — a bounded, never-blocking ring buffer of raw
//!   events, drained after the fact;
//! - [`MetricsRegistry`] — always-on relaxed-atomic counters, gauges and
//!   histograms with [`MetricsSnapshot::prometheus_text`] / JSON export;
//! - [`fold_episodes`] — the explainer that folds events into
//!   human-readable [`DecisionEpisode`]s (culprit key, blamed resource,
//!   per-term score breakdown, victims, outcome).
//!
//! [`Observer`] bundles the ring and the registry behind one hook:
//!
//! ```
//! use std::sync::Arc;
//! use atropos::{AtroposConfig, AtroposRuntime};
//! use atropos_obs::{Observer, ResourceNames};
//! use atropos_sim::VirtualClock;
//!
//! let rt = AtroposRuntime::new(AtroposConfig::default(), Arc::new(VirtualClock::new()));
//! let obs = Observer::install(&rt, 4096);
//! // ... drive the workload, tick the runtime ...
//! let metrics = obs.metrics();
//! let names = ResourceNames::from_snapshot(&rt.debug_snapshot());
//! for episode in obs.drain_episodes(&names) {
//!     println!("{episode}");
//! }
//! ```

pub mod explain;
pub mod observer;
pub mod registry;
pub mod ring;

pub use explain::{
    fold_episodes, render_episodes, DecisionEpisode, EpisodeCandidate, EpisodeTerm, ResourceNames,
};
pub use observer::Observer;
pub use registry::{
    MetricsRegistry, MetricsSnapshot, ResourceOccupancy, MAX_RESOURCES, TTC_BUCKETS,
};
pub use ring::{FlightRecorder, DEFAULT_RING_CAPACITY};
