//! The metrics registry: always-on relaxed-atomic counters, gauges and
//! histograms over the decision trace, with Prometheus-text and JSON
//! snapshot export.
//!
//! Everything on the record path is a relaxed atomic add/store on a
//! fixed-size structure — no locks, no allocation — so the registry can
//! sit behind the runtime's [`Recorder`](atropos::Recorder) hook without
//! perturbing the tick path it measures.

use std::sync::atomic::{AtomicU64, Ordering};

use atropos::{BackoffReason, CancelOrigin, DecisionEvent};
use serde::{Deserialize, Serialize};

/// Number of log2 buckets in the time-to-cancel histogram: bucket `i`
/// counts completions with `time_to_cancel_ns` in `[2^i, 2^(i+1))`
/// (bucket 0 also holds zero).
pub const TTC_BUCKETS: usize = 64;

/// Per-resource gauges are kept in fixed arrays of this many slots;
/// resources with higher ids are folded into the last slot (and flagged
/// in the snapshot). Far above any workload in this repository.
pub const MAX_RESOURCES: usize = 64;

const REL: Ordering = Ordering::Relaxed;

/// Lock-free counters/gauges/histograms fed by [`MetricsRegistry::observe`].
pub struct MetricsRegistry {
    // Counters, one per event kind (plus outcome splits).
    events_ingested: AtomicU64,
    detections: AtomicU64,
    resources_scored: AtomicU64,
    candidates_ranked: AtomicU64,
    blames: AtomicU64,
    cancels_issued_policy: AtomicU64,
    cancels_issued_operator: AtomicU64,
    backoff_rate_limited: AtomicU64,
    backoff_already_canceled: AtomicU64,
    backoff_no_initiator: AtomicU64,
    cancels_completed: AtomicU64,
    regular_overloads: AtomicU64,
    /// Deliveries confirmed by the application side (see
    /// [`MetricsRegistry::observe_cancel_delivered`]); not an event.
    cancels_delivered: AtomicU64,
    // Gauges.
    last_tick: AtomicU64,
    // Time-to-cancel histogram (log2 buckets) + sum.
    ttc_buckets: [AtomicU64; TTC_BUCKETS],
    ttc_sum_ns: AtomicU64,
    // Per-resource hold/wait occupancy from the latest `ResourceScored`.
    res_seen: [AtomicU64; MAX_RESOURCES],
    res_hold_ns: [AtomicU64; MAX_RESOURCES],
    res_wait_ns: [AtomicU64; MAX_RESOURCES],
    res_weight_bits: [AtomicU64; MAX_RESOURCES],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    // The interior-mutable const is the intended pattern here: it exists
    // only as a repeat-initializer for the atomic arrays (each use site
    // copies a fresh zero atomic; none is ever read through the const).
    #[allow(clippy::declare_interior_mutable_const)]
    pub fn new() -> Self {
        const Z: AtomicU64 = AtomicU64::new(0);
        Self {
            events_ingested: Z,
            detections: Z,
            resources_scored: Z,
            candidates_ranked: Z,
            blames: Z,
            cancels_issued_policy: Z,
            cancels_issued_operator: Z,
            backoff_rate_limited: Z,
            backoff_already_canceled: Z,
            backoff_no_initiator: Z,
            cancels_completed: Z,
            regular_overloads: Z,
            cancels_delivered: Z,
            last_tick: Z,
            ttc_buckets: [Z; TTC_BUCKETS],
            ttc_sum_ns: Z,
            res_seen: [Z; MAX_RESOURCES],
            res_hold_ns: [Z; MAX_RESOURCES],
            res_wait_ns: [Z; MAX_RESOURCES],
            res_weight_bits: [Z; MAX_RESOURCES],
        }
    }

    /// Folds one decision event into the counters. Relaxed atomics only.
    pub fn observe(&self, event: &DecisionEvent) {
        self.events_ingested.fetch_add(1, REL);
        self.last_tick.fetch_max(event.tick(), REL);
        match *event {
            DecisionEvent::OverloadDetected { .. } => {
                self.detections.fetch_add(1, REL);
            }
            DecisionEvent::ResourceScored {
                resource,
                weight,
                wait_ns,
                hold_ns,
                ..
            } => {
                self.resources_scored.fetch_add(1, REL);
                let i = (resource.index()).min(MAX_RESOURCES - 1);
                self.res_seen[i].store(1, REL);
                self.res_hold_ns[i].store(hold_ns, REL);
                self.res_wait_ns[i].store(wait_ns, REL);
                self.res_weight_bits[i].store(weight.to_bits(), REL);
            }
            DecisionEvent::CandidateRanked { .. } => {
                self.candidates_ranked.fetch_add(1, REL);
            }
            DecisionEvent::BlameAssigned { .. } => {
                self.blames.fetch_add(1, REL);
            }
            DecisionEvent::CancelIssued { origin, .. } => {
                match origin {
                    CancelOrigin::Policy => self.cancels_issued_policy.fetch_add(1, REL),
                    CancelOrigin::Operator => self.cancels_issued_operator.fetch_add(1, REL),
                };
            }
            DecisionEvent::Backoff { reason, .. } => {
                match reason {
                    BackoffReason::RateLimited => self.backoff_rate_limited.fetch_add(1, REL),
                    BackoffReason::AlreadyCanceled => {
                        self.backoff_already_canceled.fetch_add(1, REL)
                    }
                    BackoffReason::NoInitiator => self.backoff_no_initiator.fetch_add(1, REL),
                };
            }
            DecisionEvent::CancelCompleted {
                time_to_cancel_ns, ..
            } => {
                self.cancels_completed.fetch_add(1, REL);
                self.ttc_sum_ns.fetch_add(time_to_cancel_ns, REL);
                let bucket = if time_to_cancel_ns == 0 {
                    0
                } else {
                    (63 - time_to_cancel_ns.leading_zeros() as usize).min(TTC_BUCKETS - 1)
                };
                self.ttc_buckets[bucket].fetch_add(1, REL);
            }
            DecisionEvent::RegularOverload { .. } => {
                self.regular_overloads.fetch_add(1, REL);
            }
        }
    }

    /// Records that the application's initiator actually received one
    /// cancellation signal. Called by the integration (the runtime cannot
    /// know whether a delivery was swallowed downstream); the snapshot
    /// derives `cancels_failed = issued − delivered` from it.
    pub fn observe_cancel_delivered(&self) {
        self.cancels_delivered.fetch_add(1, REL);
    }

    /// A plain-data copy of every metric at this instant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let issued_policy = self.cancels_issued_policy.load(REL);
        let issued_operator = self.cancels_issued_operator.load(REL);
        let delivered = self.cancels_delivered.load(REL);
        MetricsSnapshot {
            events_ingested: self.events_ingested.load(REL),
            ticks: self.last_tick.load(REL),
            detections: self.detections.load(REL),
            resources_scored: self.resources_scored.load(REL),
            candidates_ranked: self.candidates_ranked.load(REL),
            blames: self.blames.load(REL),
            cancels_issued_policy: issued_policy,
            cancels_issued_operator: issued_operator,
            backoff_rate_limited: self.backoff_rate_limited.load(REL),
            backoff_already_canceled: self.backoff_already_canceled.load(REL),
            backoff_no_initiator: self.backoff_no_initiator.load(REL),
            cancels_completed: self.cancels_completed.load(REL),
            cancels_delivered: delivered,
            cancels_failed: (issued_policy + issued_operator).saturating_sub(delivered),
            regular_overloads: self.regular_overloads.load(REL),
            time_to_cancel_sum_ns: self.ttc_sum_ns.load(REL),
            time_to_cancel_buckets: self.ttc_buckets.iter().map(|b| b.load(REL)).collect(),
            resources: (0..MAX_RESOURCES)
                .filter(|&i| self.res_seen[i].load(REL) != 0)
                .map(|i| ResourceOccupancy {
                    resource: i as u32,
                    hold_ns: self.res_hold_ns[i].load(REL),
                    wait_ns: self.res_wait_ns[i].load(REL),
                    weight: f64::from_bits(self.res_weight_bits[i].load(REL)),
                })
                .collect(),
        }
    }
}

/// One resource's occupancy gauges from its latest `ResourceScored` event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceOccupancy {
    /// Resource id (ids ≥ [`MAX_RESOURCES`] fold into the last slot).
    pub resource: u32,
    /// Holding time attributed in the scored window (ns).
    pub hold_ns: u64,
    /// Waiting time attributed in the scored window (ns).
    pub wait_ns: u64,
    /// Contention weight at scoring time.
    pub weight: f64,
}

/// A plain-data export of the registry; serializable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Total events folded in.
    pub events_ingested: u64,
    /// Highest tick index observed (equals the runtime's tick count while
    /// any event was emitted on the latest tick).
    pub ticks: u64,
    /// `OverloadDetected` events.
    pub detections: u64,
    /// `ResourceScored` events.
    pub resources_scored: u64,
    /// `CandidateRanked` events.
    pub candidates_ranked: u64,
    /// `BlameAssigned` events.
    pub blames: u64,
    /// Cancellations issued by the tick pipeline.
    pub cancels_issued_policy: u64,
    /// Cancellations issued through the operator entry point.
    pub cancels_issued_operator: u64,
    /// Requests suppressed by the rate limiter.
    pub backoff_rate_limited: u64,
    /// Requests suppressed by cancel-once fairness.
    pub backoff_already_canceled: u64,
    /// Requests suppressed for lack of an initiator.
    pub backoff_no_initiator: u64,
    /// Canceled tasks that reached `free_cancel`.
    pub cancels_completed: u64,
    /// Deliveries confirmed by the application (0 unless wired).
    pub cancels_delivered: u64,
    /// `issued − delivered`; meaningful only when delivery is wired.
    pub cancels_failed: u64,
    /// `RegularOverload` events.
    pub regular_overloads: u64,
    /// Sum of time-to-cancel over completed cancellations (ns).
    pub time_to_cancel_sum_ns: u64,
    /// Log2 histogram of time-to-cancel: bucket `i` counts completions in
    /// `[2^i, 2^(i+1))` ns (bucket 0 includes zero).
    pub time_to_cancel_buckets: Vec<u64>,
    /// Per-resource occupancy gauges.
    pub resources: Vec<ResourceOccupancy>,
}

impl MetricsSnapshot {
    /// Internal-consistency audit. Returns one message per violated
    /// relation; an empty vector means the snapshot is coherent:
    ///
    /// - every policy cancel follows a blame, every blame a detection, and
    ///   at most one detection fires per tick,
    /// - the time-to-cancel histogram agrees with the completion counter,
    /// - per-kind counters sum to the ingestion counter.
    pub fn consistency_errors(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if self.cancels_issued_policy > self.blames {
            errs.push(format!(
                "cancels_issued_policy {} > blames {}",
                self.cancels_issued_policy, self.blames
            ));
        }
        if self.blames > self.detections {
            errs.push(format!(
                "blames {} > detections {}",
                self.blames, self.detections
            ));
        }
        if self.detections > self.ticks {
            errs.push(format!(
                "detections {} > ticks {}",
                self.detections, self.ticks
            ));
        }
        let hist_count: u64 = self.time_to_cancel_buckets.iter().sum();
        if hist_count != self.cancels_completed {
            errs.push(format!(
                "time_to_cancel histogram count {} != cancels_completed {}",
                hist_count, self.cancels_completed
            ));
        }
        let by_kind = self.detections
            + self.resources_scored
            + self.candidates_ranked
            + self.blames
            + self.cancels_issued_policy
            + self.cancels_issued_operator
            + self.backoff_rate_limited
            + self.backoff_already_canceled
            + self.backoff_no_initiator
            + self.cancels_completed
            + self.regular_overloads;
        if by_kind != self.events_ingested {
            errs.push(format!(
                "per-kind counters sum to {} but events_ingested is {}",
                by_kind, self.events_ingested
            ));
        }
        errs
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP atropos_{name} {help}\n# TYPE atropos_{name} counter\natropos_{name} {v}\n"
            ));
        };
        counter(
            "events_ingested_total",
            "Decision events ingested",
            self.events_ingested,
        );
        counter(
            "detections_total",
            "Candidate overloads detected",
            self.detections,
        );
        counter(
            "resources_scored_total",
            "Bottlenecked resources scored",
            self.resources_scored,
        );
        counter(
            "candidates_ranked_total",
            "Cancellation candidates ranked",
            self.candidates_ranked,
        );
        counter("blames_total", "Blame assignments", self.blames);
        counter(
            "cancels_issued_policy_total",
            "Cancellations issued by the policy pipeline",
            self.cancels_issued_policy,
        );
        counter(
            "cancels_issued_operator_total",
            "Cancellations issued by operators",
            self.cancels_issued_operator,
        );
        counter(
            "backoff_rate_limited_total",
            "Cancellations suppressed by the rate limiter",
            self.backoff_rate_limited,
        );
        counter(
            "backoff_already_canceled_total",
            "Cancellations suppressed by cancel-once fairness",
            self.backoff_already_canceled,
        );
        counter(
            "backoff_no_initiator_total",
            "Cancellations suppressed for lack of an initiator",
            self.backoff_no_initiator,
        );
        counter(
            "cancels_completed_total",
            "Cancellations completed",
            self.cancels_completed,
        );
        counter(
            "cancels_delivered_total",
            "Cancellations confirmed delivered",
            self.cancels_delivered,
        );
        counter(
            "regular_overloads_total",
            "Regular (non-resource) overloads",
            self.regular_overloads,
        );
        out.push_str(&format!(
            "# HELP atropos_ticks Highest tick index observed\n# TYPE atropos_ticks gauge\natropos_ticks {}\n",
            self.ticks
        ));
        out.push_str(
            "# HELP atropos_time_to_cancel_ns Issue-to-completion latency of cancellations\n\
             # TYPE atropos_time_to_cancel_ns histogram\n",
        );
        let mut cumulative = 0u64;
        for (i, count) in self.time_to_cancel_buckets.iter().enumerate() {
            cumulative += count;
            if *count > 0 {
                out.push_str(&format!(
                    "atropos_time_to_cancel_ns_bucket{{le=\"{}\"}} {cumulative}\n",
                    (1u128 << (i + 1)) - 1
                ));
            }
        }
        out.push_str(&format!(
            "atropos_time_to_cancel_ns_bucket{{le=\"+Inf\"}} {}\n\
             atropos_time_to_cancel_ns_sum {}\natropos_time_to_cancel_ns_count {}\n",
            self.cancels_completed, self.time_to_cancel_sum_ns, self.cancels_completed
        ));
        for r in &self.resources {
            out.push_str(&format!(
                "atropos_resource_hold_ns{{resource=\"{id}\"}} {hold}\n\
                 atropos_resource_wait_ns{{resource=\"{id}\"}} {wait}\n\
                 atropos_resource_weight{{resource=\"{id}\"}} {weight}\n",
                id = r.resource,
                hold = r.hold_ns,
                wait = r.wait_ns,
                weight = r.weight
            ));
        }
        out
    }

    /// The snapshot as a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("MetricsSnapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos::{ResourceId, ResourceType, TaskId, TaskKey};

    fn feed_episode(reg: &MetricsRegistry) {
        reg.observe(&DecisionEvent::OverloadDetected {
            tick: 3,
            latency_ns: 50_000_000,
            throughput_qps: 10.0,
        });
        reg.observe(&DecisionEvent::ResourceScored {
            tick: 3,
            resource: ResourceId(0),
            rtype: ResourceType::Lock,
            contention: 0.9,
            weight: 1.0,
            wait_ns: 80_000_000,
            hold_ns: 90_000_000,
        });
        reg.observe(&DecisionEvent::CandidateRanked {
            tick: 3,
            task: TaskId(1),
            key: TaskKey(9),
            score: 2.0,
        });
        reg.observe(&DecisionEvent::BlameAssigned {
            tick: 3,
            resource: ResourceId(0),
            task: TaskId(1),
            key: TaskKey(9),
            score: 2.0,
            terms: [None; atropos::MAX_GAIN_TERMS],
            victims_waiting: 4,
        });
        reg.observe(&DecisionEvent::CancelIssued {
            tick: 3,
            key: TaskKey(9),
            now_ns: 300_000_000,
            origin: CancelOrigin::Policy,
        });
        reg.observe(&DecisionEvent::CancelCompleted {
            tick: 4,
            key: TaskKey(9),
            time_to_cancel_ns: 100_000_000,
        });
    }

    #[test]
    fn a_full_episode_yields_a_consistent_snapshot() {
        let reg = MetricsRegistry::new();
        feed_episode(&reg);
        reg.observe_cancel_delivered();
        let snap = reg.snapshot();
        assert_eq!(snap.events_ingested, 6);
        assert_eq!(snap.detections, 1);
        assert_eq!(snap.cancels_issued_policy, 1);
        assert_eq!(snap.cancels_completed, 1);
        assert_eq!(snap.cancels_failed, 0);
        assert_eq!(snap.ticks, 4);
        assert_eq!(snap.time_to_cancel_sum_ns, 100_000_000);
        assert_eq!(snap.time_to_cancel_buckets.iter().sum::<u64>(), 1);
        assert_eq!(snap.resources.len(), 1);
        assert_eq!(snap.resources[0].hold_ns, 90_000_000);
        assert!(
            snap.consistency_errors().is_empty(),
            "{:?}",
            snap.consistency_errors()
        );
    }

    #[test]
    fn undelivered_cancels_surface_as_failed() {
        let reg = MetricsRegistry::new();
        feed_episode(&reg); // issued, never observe_cancel_delivered()
        assert_eq!(reg.snapshot().cancels_failed, 1);
    }

    #[test]
    fn consistency_audit_is_falsifiable() {
        let reg = MetricsRegistry::new();
        feed_episode(&reg);
        let mut snap = reg.snapshot();
        snap.cancels_completed += 1; // lie: completion without histogram entry
        assert!(!snap.consistency_errors().is_empty());
    }

    #[test]
    fn zero_time_to_cancel_lands_in_bucket_zero() {
        let reg = MetricsRegistry::new();
        reg.observe(&DecisionEvent::CancelCompleted {
            tick: 1,
            key: TaskKey(1),
            time_to_cancel_ns: 0,
        });
        assert_eq!(reg.snapshot().time_to_cancel_buckets[0], 1);
    }

    #[test]
    fn prometheus_text_contains_counters_and_histogram() {
        let reg = MetricsRegistry::new();
        feed_episode(&reg);
        let text = reg.snapshot().prometheus_text();
        assert!(text.contains("atropos_detections_total 1"));
        assert!(text.contains("atropos_cancels_issued_policy_total 1"));
        assert!(text.contains("atropos_time_to_cancel_ns_count 1"));
        assert!(text.contains("atropos_resource_hold_ns{resource=\"0\"} 90000000"));
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let reg = MetricsRegistry::new();
        feed_episode(&reg);
        let snap = reg.snapshot();
        let back: MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }
}
