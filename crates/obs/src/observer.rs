//! The [`Observer`]: the reference [`Recorder`] implementation wiring the
//! flight-recorder ring and the metrics registry behind one hook.

use std::sync::Arc;

use atropos::{AtroposRuntime, DecisionEvent, Recorder};

use crate::explain::{fold_episodes, DecisionEpisode, ResourceNames};
use crate::registry::{MetricsRegistry, MetricsSnapshot};
use crate::ring::{FlightRecorder, DEFAULT_RING_CAPACITY};

/// Flight recorder + metrics registry behind a single [`Recorder`].
///
/// Install with [`Observer::install`] (or `rt.set_recorder(obs)` on an
/// `Arc<Observer>`); both halves are fed every event: the registry folds
/// it into counters immediately, the ring buffers it for the episode
/// explainer.
pub struct Observer {
    ring: FlightRecorder,
    registry: MetricsRegistry,
}

impl Default for Observer {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

impl Observer {
    /// Creates an observer whose ring holds up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: FlightRecorder::new(capacity),
            registry: MetricsRegistry::new(),
        }
    }

    /// Creates the observer and attaches it to `rt` in one step.
    pub fn install(rt: &AtroposRuntime, capacity: usize) -> Arc<Self> {
        let obs = Arc::new(Self::new(capacity));
        rt.set_recorder(obs.clone());
        obs
    }

    /// The buffered-event ring.
    pub fn ring(&self) -> &FlightRecorder {
        &self.ring
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Convenience: current metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Drains the ring and folds the events into episodes, resolving
    /// resource names from `names`.
    pub fn drain_episodes(&self, names: &ResourceNames) -> Vec<DecisionEpisode> {
        fold_episodes(&self.ring.drain(), names)
    }
}

impl Recorder for Observer {
    fn record(&self, event: DecisionEvent) {
        self.registry.observe(&event);
        self.ring.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos::{AtroposConfig, ResourceType, TaskKey};
    use atropos_sim::VirtualClock;

    #[test]
    fn observer_feeds_both_ring_and_registry_from_a_runtime() {
        let clock = Arc::new(VirtualClock::new());
        let rt = AtroposRuntime::new(AtroposConfig::default(), clock);
        let obs = Observer::install(&rt, 128);
        rt.set_cancel_action(|_| {});
        let _t = rt.create_cancel(Some(5));
        rt.register_resource("pool", ResourceType::Memory);
        // Operator cancel: the one emission path that needs no overload.
        rt.cancel_key(TaskKey(5));
        let snap = obs.metrics();
        assert_eq!(snap.cancels_issued_operator, 1);
        let eps = obs.drain_episodes(&ResourceNames::default());
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].canceled_key, Some(5));
        assert_eq!(eps[0].origin, "operator");
    }
}
