#!/usr/bin/env python3
"""Inserts a recorded `repro all` console log into EXPERIMENTS.md.

Usage: python3 scripts/record_results.py /tmp/repro_final.txt
Replaces the text between the RESULTS-BEGIN/RESULTS-END markers (or the
placeholder block) with the cleaned console output.
"""

import re
import sys

PLACEHOLDER = "(RESULTS PLACEHOLDER — replaced by the recorded run)"


def clean(log: str) -> str:
    lines = []
    for line in log.splitlines():
        if line.startswith(("   Compiling", "    Finished", "     Running")):
            continue
        lines.append(line.rstrip())
    return "\n".join(lines).strip()


def main() -> None:
    log_path = sys.argv[1] if len(sys.argv) > 1 else "/tmp/repro_final.txt"
    log = clean(open(log_path).read())
    exp = open("EXPERIMENTS.md").read()
    block = f"<!-- RESULTS-BEGIN -->\n```text\n{log}\n```\n<!-- RESULTS-END -->"
    if "<!-- RESULTS-BEGIN -->" in exp:
        exp = re.sub(
            r"<!-- RESULTS-BEGIN -->.*<!-- RESULTS-END -->",
            block,
            exp,
            flags=re.S,
        )
    else:
        exp = exp.replace(f"```text\n{PLACEHOLDER}\n```", block)
    open("EXPERIMENTS.md", "w").write(exp)
    print(f"recorded {len(log.splitlines())} lines into EXPERIMENTS.md")


if __name__ == "__main__":
    main()
