#!/usr/bin/env bash
# Runs the tracing and policy criterion benches and distills the
# BENCHRESULT lines into BENCH_trace.json, the perf trajectory record
# later PRs compare against; then runs the live-harness smoke bench and
# distills it into BENCH_live.json; then sweeps the capacity_smoke
# descriptor's offered-load ramp into BENCH_capacity.json (knee rps per
# substrate, static vs adaptive controller delta).
#
# Usage: scripts/bench_snapshot.sh [output.json] [live_output.json] [capacity.json]
#
# Each bench harness prints one machine-readable line per benchmark:
#   BENCHRESULT {"id":"group/name","ns_per_iter":X,"iters":N[,"elements_per_sec":Y]}

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_trace.json}"
live_out="${2:-BENCH_live.json}"
capacity_out="${3:-BENCH_capacity.json}"
raw="$(mktemp)"
live_raw="$(mktemp)"
trap 'rm -f "$raw" "$live_raw"' EXIT

# Runs one bench and appends its BENCHRESULT lines to $2. Fails the whole
# script (so no partial BENCH_*.json is ever written) if the bench binary
# fails to build/run or emits no results.
run_bench() {
    local bench="$1" dest="$2" lines
    echo "== cargo bench --bench $bench" >&2
    if ! lines="$(cargo bench -p atropos-bench --bench "$bench" | tee /dev/stderr)"; then
        echo "error: cargo bench --bench $bench failed" >&2
        exit 1
    fi
    if ! grep '^BENCHRESULT ' <<<"$lines" >>"$dest"; then
        echo "error: bench $bench emitted no BENCHRESULT lines" >&2
        exit 1
    fi
}

run_bench tracing "$raw"
run_bench policy "$raw"
run_bench live "$live_raw"
run_bench async_live "$live_raw"

python3 - "$raw" "$out" <<'PY'
import json
import os
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
rows = {}
with open(raw_path) as f:
    for line in f:
        if line.startswith("BENCHRESULT "):
            rec = json.loads(line[len("BENCHRESULT "):])
            rows[rec["id"]] = rec


def ns(bench_id):
    return rows[bench_id]["ns_per_iter"] if bench_id in rows else None


def eps(bench_id):
    return rows.get(bench_id, {}).get("elements_per_sec")


def ratio(num, den):
    return round(num / den, 2) if num and den else None


contended = {
    mode: {
        ts: {t: eps(f"contended_ingest/{mode}/{ts}/{t}threads") for t in (1, 4, 8)}
        for ts in ("sampled", "precise")
    }
    for mode in ("direct", "sharded", "lockfree")
}

push_ns = ns("ingest_emit/sharded_push")
lockfree_push_ns = ns("ingest_emit/lockfree_push")
apply_ns = ns("ingest_emit/direct_apply")
drain = rows.get("tick_drain/emit_and_drain_1024", {})
drain_ns_per_event = round(drain["ns_per_iter"] / 1024, 2) if drain else None

cores = os.cpu_count()

# Multi-core emit-phase scaling curves (persistent producer teams, emit
# phase only, background drainer — see atropos_bench::scaling). Parallel
# efficiency eps(N)/(N*eps(1)) only means anything when each producer
# (plus the drainer) can have its own core, so every entry carries a
# degenerate flag; the ingest_scaling guard test applies the same gate.
PRODUCER_COUNTS = (1, 2, 4, 8)
emit_scaling = {"cores": cores, "degenerate_below_producers_plus_one_cores": True}
for mode in ("sharded", "lockfree"):
    base = eps(f"emit_scaling/{mode}/1producers")
    curve = {}
    for n in PRODUCER_COUNTS:
        e = eps(f"emit_scaling/{mode}/{n}producers")
        curve[f"{n}_producers"] = {
            "events_per_sec": e,
            "efficiency_vs_1": (
                round(e / (n * base), 3) if e and base else None
            ),
            "degenerate": cores is None or cores < n + 1,
        }
    emit_scaling[mode] = curve

notes = (
    "Measured on a {}-core container. The structural win recorded here is "
    "emit_path_speedup: per-event work on the producer-visible path drops "
    "from the full accounting update under a global lock to a bounded "
    "append — stripe-locked under sharded, a wait-free seqlock-cell claim "
    "under lockfree — and the lock-free emit path shares no lock at all "
    "(producers serialize only on their own lane's cursor)."
).format(cores)
if cores is None or cores < 2:
    notes += (
        " With a single core no lock is ever actually contended and no "
        "two producers ever run in parallel (they timeslice instead of "
        "colliding), so every contended_* and emit_scaling figure below "
        "is marked degenerate: they understate the buffered designs' "
        "benefit and say nothing about parallel efficiency. Regenerate "
        "on a multi-core host for meaningful scaling curves."
    )

snapshot = {
    "schema": "bench_trace/v2",
    "hardware": {"cores": cores},
    "contended_ingest_events_per_sec": contended,
    # Degenerate when cores < 2: a single core cannot create contention,
    # so these ratios measure timeslicing, not the parallel win.
    "contended_speedup_degenerate": cores is None or cores < 2,
    "contended_speedup_sharded_vs_direct": {
        f"{t}_producers": ratio(
            contended["sharded"]["sampled"][t], contended["direct"]["sampled"][t]
        )
        for t in (1, 4, 8)
    },
    "contended_speedup_lockfree_vs_direct": {
        f"{t}_producers": ratio(
            contended["lockfree"]["sampled"][t], contended["direct"]["sampled"][t]
        )
        for t in (1, 4, 8)
    },
    "emit_path_ns_per_event": {
        "sharded_push": push_ns,
        "lockfree_push": lockfree_push_ns,
        "direct_apply": apply_ns,
    },
    # Per-event work on the producer-visible path: a bounded lane append
    # vs the direct path's global-lock inline accounting.
    "emit_path_speedup": ratio(apply_ns, push_ns),
    "emit_path_speedup_lockfree": ratio(apply_ns, lockfree_push_ns),
    "emit_scaling": emit_scaling,
    "tick_drain": {
        "ns_per_event": drain_ns_per_event,
        "events_per_sec": eps("tick_drain/emit_and_drain_1024"),
    },
    "single_thread_api_ns": {
        k.split("/", 1)[1]: ns(k)
        for k in rows
        if k.startswith("tracing/")
    },
    "policy_ns": {k.split("/", 1)[1]: ns(k) for k in rows if k.startswith("policy/")},
    "policy_index_ns": {
        k.split("/", 1)[1]: ns(k) for k in rows if k.startswith("policy_index/")
    },
    # Scaling record for the indexed engine: the skyline keeps Algorithm 1
    # within a constant factor of the single-resource greedy scan (the
    # policy_scaling guard test enforces <= 10x at 1024), and the delta
    # refresh shows steady-state tick cost tracking the churn rate, not
    # the population.
    "policy_scaling": {
        "multi_objective_vs_heuristic_1024": ratio(
            ns("policy/multi_objective/1024"), ns("policy/heuristic/1024")
        ),
        "multi_objective_vs_heuristic_16384": ratio(
            ns("policy/multi_objective/16384"), ns("policy/heuristic/16384")
        ),
        "full_build_vs_delta_refresh_16384_k16": ratio(
            ns("policy_index/full_build/16384"), ns("policy_index/delta_refresh/16")
        ),
    },
    "notes": notes,
}

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}", file=sys.stderr)
PY

python3 - "$live_raw" "$live_out" <<'PY'
import json
import os
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
rows = {}
with open(raw_path) as f:
    for line in f:
        if line.startswith("BENCHRESULT "):
            rec = json.loads(line[len("BENCHRESULT "):])
            rows[rec["id"]] = rec


def ns(bench_id):
    return rows[bench_id]["ns_per_iter"] if bench_id in rows else None


cores = os.cpu_count()
baseline_p99 = ns("live/victim_p99/no_control")
atropos_p99 = ns("live/victim_p99/atropos")
async_baseline_p99 = ns("async_live/victim_p99/no_control")
async_atropos_p99 = ns("async_live/victim_p99/atropos")
snapshot = {
    "schema": "bench_live/v2",
    "hardware": {"cores": cores},
    "traced_lock_roundtrip_ns": ns("live/traced_lock_roundtrip"),
    "victim_p99_ns": {"no_control": baseline_p99, "atropos": atropos_p99},
    "victim_p99_improvement": (
        round(baseline_p99 / atropos_p99, 2) if baseline_p99 and atropos_p99 else None
    ),
    "time_to_cancel_ns": ns("live/time_to_cancel"),
    # Same overload on the future-drop substrate: cancellation is an
    # executor-delivered future drop instead of a cooperative token flip.
    "async_live": {
        "spawned_lock_roundtrip_ns": ns("async_live/spawned_lock_roundtrip"),
        "victim_p99_ns": {
            "no_control": async_baseline_p99,
            "atropos": async_atropos_p99,
        },
        "victim_p99_improvement": (
            round(async_baseline_p99 / async_atropos_p99, 2)
            if async_baseline_p99 and async_atropos_p99
            else None
        ),
        "time_to_cancel_ns": ns("async_live/time_to_cancel"),
    },
    "notes": (
        "Wall-clock smoke runs of the atropos-live (thread) and "
        "atropos-async (future-drop) harnesses (a ~500 req/s 4-worker "
        "server with one lock-hog culprit): victim p99 with the convoy "
        "running to the stop flag vs cut short by a supervised "
        "cancellation. Auto-detected a {}-core host; absolute numbers are "
        "scheduling-sensitive, the improvement ratios are the stable "
        "signal."
    ).format(cores),
}

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}", file=sys.stderr)
PY

# Capacity sweep: the capacity binary writes the final JSON itself
# (schema bench_capacity/v1); set -e fails the script if the sweep dies.
# The validation pass after it fails loud if the payload is missing the
# knee curves or the static-vs-adaptive comparison, so a truncated or
# schema-drifted artifact can never pass silently.
echo "== capacity --workload capacity_smoke" >&2
cargo run --release -p atropos-bench --bin capacity -- \
    --workload capacity_smoke --quick --out "$capacity_out"

python3 - "$capacity_out" <<'PY'
import json
import sys

path = sys.argv[1]
snap = json.load(open(path))
if snap.get("schema") != "bench_capacity/v1":
    sys.exit(f"error: {path}: unexpected schema {snap.get('schema')!r}")
subs = snap.get("substrates") or []
if not subs:
    sys.exit(f"error: {path}: no substrate knee curves")
print(f"capacity knees ({snap['workload']}):", file=sys.stderr)
for curve in subs:
    for key in ("substrate", "knee_rps", "steps"):
        if key not in curve:
            sys.exit(f"error: {path}: substrate curve missing {key!r}")
    print(f"  {curve['substrate']:>7}: knee {curve['knee_rps']} rps "
          f"({len(curve['steps'])} steps)", file=sys.stderr)
avs = snap.get("adaptive_vs_static")
if avs is None:
    sys.exit(f"error: {path}: missing adaptive_vs_static section")
for key in ("best_static_knee_rps", "adaptive_knee_rps", "adaptive_delta_rps"):
    if key not in avs:
        sys.exit(f"error: {path}: adaptive_vs_static missing {key!r}")
print(f"  adaptive: knee {avs['adaptive_knee_rps']} rps "
      f"(best static {avs['best_static_knee_rps']}, "
      f"delta {avs['adaptive_delta_rps']})", file=sys.stderr)
print(f"wrote {path}", file=sys.stderr)
PY
