#![warn(missing_docs)]

//! Facade crate for the Atropos reproduction workspace.
//!
//! Re-exports every member crate under one roof so the examples and
//! integration tests at the repository root can reach the whole system,
//! and so a downstream user can depend on a single crate:
//!
//! - [`atropos`] — the framework itself (the paper's contribution),
//! - [`atropos_sim`] — the deterministic discrete-event kernel,
//! - [`atropos_metrics`] — histograms, series, run summaries,
//! - [`atropos_app`] — the simulated applications and resources,
//! - [`atropos_baselines`] — Protego, pBox, DARC, PARTIES, Breakwater,
//!   SEDA, DAGOR,
//! - [`atropos_scenarios`] — the 16 cases and the experiment harness,
//! - [`atropos_study`] — the Table 1 survey dataset.
//!
//! See `README.md` for a tour and `DESIGN.md` for the architecture and
//! the substitutions this reproduction makes.

pub use atropos;
pub use atropos_app;
pub use atropos_baselines;
pub use atropos_metrics;
pub use atropos_scenarios;
pub use atropos_sim;
pub use atropos_study;

/// Convenience prelude with the types most integrations need.
pub mod prelude {
    pub use atropos::{
        AtroposConfig, AtroposRuntime, PolicyKind, ResourceId, ResourceType, TaskId, TaskKey,
    };
    pub use atropos_sim::{Clock, SimTime, SystemClock, VirtualClock};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_integration_surface() {
        use super::prelude::*;
        let clock = std::sync::Arc::new(VirtualClock::new());
        let rt = AtroposRuntime::new(AtroposConfig::default(), clock);
        let rid = rt.register_resource("r", ResourceType::Lock);
        let task = rt.create_cancel(Some(1));
        rt.get_resource(task, rid, 1);
        rt.free_cancel(task);
        assert_eq!(rt.stats().trace_events, 1);
    }
}
