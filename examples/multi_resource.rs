//! The §3.5 worked example, live: two contended resources, two candidate
//! hogs with different gain profiles, and Algorithm 1 choosing by
//! contention-weighted scalarization over the non-dominated set.
//!
//! Task A offers most of its gain on the buffer pool; task B offers a
//! balanced gain on pool + lock. Depending on which resource is more
//! contended, the policy picks a different culprit — the behaviour the
//! single-resource heuristic cannot reproduce.
//!
//! Run with: `cargo run --release --example multi_resource`

use atropos::estimator::{EstimatorSnapshot, ResourceSnapshot, TaskGainSnapshot};
use atropos::policy::{CancellationPolicy, HeuristicPolicy, MultiObjectivePolicy};
use atropos::{ResourceId, ResourceType, TaskId, TaskKey};

fn snapshot(c_mem: f64, c_lock: f64) -> EstimatorSnapshot {
    let total = c_mem + c_lock;
    let resources = vec![
        ResourceSnapshot {
            id: ResourceId(0),
            rtype: ResourceType::Memory,
            contention: c_mem,
            normalized: c_mem,
            weight: c_mem / total,
            wait_ns: 0,
            hold_ns: 0,
            acquired: 0,
            slow_amount: 0,
        },
        ResourceSnapshot {
            id: ResourceId(1),
            rtype: ResourceType::Lock,
            contention: c_lock,
            normalized: c_lock,
            weight: c_lock / total,
            wait_ns: 0,
            hold_ns: 0,
            acquired: 0,
            slow_amount: 0,
        },
    ];
    // The paper's example: task A = (3, 1), task B = (2, 2), normalized
    // per resource to [0, 1].
    let tasks = vec![
        TaskGainSnapshot {
            task: TaskId(1),
            key: TaskKey(1),
            cancellable: true,
            gains: vec![1.0, 0.5],
            current: vec![1.0, 0.5],
            progress: Some(0.1),
        },
        TaskGainSnapshot {
            task: TaskId(2),
            key: TaskKey(2),
            cancellable: true,
            gains: vec![2.0 / 3.0, 1.0],
            current: vec![2.0 / 3.0, 1.0],
            progress: Some(0.1),
        },
    ];
    EstimatorSnapshot {
        resources,
        tasks,
        t_exec_ns: 1,
    }
}

fn main() {
    println!("task A gains (pool, lock) = (1.00, 0.50)   [the paper's (3, 1)]");
    println!("task B gains (pool, lock) = (0.67, 1.00)   [the paper's (2, 2)]\n");
    println!(
        "{:<28} {:>14} {:>12}",
        "contention (pool, lock)", "multi-objective", "heuristic"
    );
    for (c_mem, c_lock) in [(0.6, 0.4), (0.4, 0.6), (0.9, 0.1), (0.1, 0.9)] {
        let snap = snapshot(c_mem, c_lock);
        let multi = MultiObjectivePolicy
            .select(&snap)
            .map(|s| format!("task {}", s.task.0))
            .unwrap_or_else(|| "-".into());
        let heur = HeuristicPolicy
            .select(&snap)
            .map(|s| format!("task {}", s.task.0))
            .unwrap_or_else(|| "-".into());
        println!("({c_mem:.1}, {c_lock:.1}) {:>32} {:>12}", multi, heur);
    }
    println!(
        "\nWith the paper's weights (0.6, 0.4) the multi-objective policy\n\
         picks task A (score 0.6·1.0 + 0.4·0.5 = 0.80 vs B's 0.6·0.67 +\n\
         0.4·1.0 = 0.80 — a near-tie broken deterministically); as lock\n\
         contention rises the choice flips to task B. The heuristic only\n\
         ever looks at the single most contended resource."
    );
}
