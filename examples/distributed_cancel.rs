//! The distributed extension sketched in the paper's §4: a root request
//! fans out to child tasks (as a scatter-gather query would fan out to
//! shards), and canceling the root propagates the cancellation signal to
//! every descendant through the same initiator.
//!
//! This example runs three "shard worker" threads under one root task,
//! overloads a shared lock through the root's shard on node 0, and shows
//! all three shards' cancel flags flipping when Atropos cancels the root.
//!
//! Run with: `cargo run --release --example distributed_cancel`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atropos::{AtroposConfig, AtroposRuntime, ResourceType};
use atropos_sim::SystemClock;
use parking_lot::Mutex;

fn main() {
    let mut cfg = AtroposConfig::default().with_slo_ns(5_000_000);
    cfg.cancel_min_interval_ns = 20_000_000;
    let rt = Arc::new(AtroposRuntime::new(cfg, Arc::new(SystemClock::new())));
    let lock_rsc = rt.register_resource("shard_lock", ResourceType::Lock);

    // One cancel flag per "node"; keys 100..103 identify root + shards.
    let flags: Arc<Vec<AtomicBool>> = Arc::new((0..4).map(|_| AtomicBool::new(false)).collect());
    {
        let flags = flags.clone();
        rt.set_cancel_action(move |key| {
            if (100..104).contains(&key.0) {
                println!("[initiator] cancel signal for key {}", key.0);
                flags[(key.0 - 100) as usize].store(true, Ordering::SeqCst);
            }
        });
    }

    // Root + three shard tasks, linked into a tree.
    let root = rt.create_cancel(Some(100));
    rt.unit_started(root);
    rt.report_progress(root, 1, 100);
    let shards: Vec<_> = (1..4)
        .map(|i| {
            let t = rt.create_cancel(Some(100 + i));
            rt.unit_started(t);
            rt.link_child(root, t);
            t
        })
        .collect();

    // The root's work monopolizes the shard lock; fast requests convoy.
    let table = Arc::new(Mutex::new(()));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let rt = rt.clone();
            let table = table.clone();
            let flags = flags.clone();
            s.spawn(move || {
                rt.slow_by_resource(root, lock_rsc, 1);
                let guard = table.lock();
                rt.get_resource(root, lock_rsc, 1);
                let t0 = Instant::now();
                while !flags[0].load(Ordering::SeqCst) && t0.elapsed() < Duration::from_secs(5) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                drop(guard);
                rt.free_resource(root, lock_rsc, 1);
            });
        }
        for w in 0..3u64 {
            let rt = rt.clone();
            let table = table.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t = rt.create_cancel(Some(w));
                    rt.unit_started(t);
                    rt.slow_by_resource(t, lock_rsc, 1);
                    let _g = table.lock();
                    rt.get_resource(t, lock_rsc, 1);
                    std::thread::sleep(Duration::from_micros(100));
                    rt.free_resource(t, lock_rsc, 1);
                    rt.unit_finished(t);
                    rt.free_cancel(t);
                }
            });
        }
        {
            let rt = rt.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                    rt.tick();
                }
            });
        }
        std::thread::sleep(Duration::from_secs(2));
        stop.store(true, Ordering::SeqCst);
    });

    for shard in shards {
        rt.free_cancel(shard);
    }
    let stats = rt.stats();
    println!(
        "cancellations: issued={} propagated={}",
        stats.cancel.issued, stats.cancel.propagated
    );
    let canceled: Vec<bool> = flags.iter().map(|f| f.load(Ordering::SeqCst)).collect();
    println!("cancel flags (root, shard1..3): {canceled:?}");
    assert_eq!(
        canceled,
        vec![true, true, true, true],
        "root cancellation must reach every shard"
    );
}
