//! Async overload demo: the same wall-clock serving workload as
//! `live_overload`, but on the hand-rolled async substrate — run twice,
//! once uncontrolled and once under an Atropos supervisor.
//!
//! A four-slot task pool serves ~500 short requests/s over a shared
//! async table lock, a ticket semaphore and an LRU buffer pool, all
//! multiplexed onto a small executor. Half a second in, a lock-hog
//! "culprit" task arrives and would hold the table lock for 1.2 s,
//! convoying every victim continuation behind it. In the controlled run
//! the supervisor ticks the runtime every 50 ms, the detector spots the
//! stalled windows, the policy blames the lock holder — and the
//! cancellation initiator is an **abort registry**: the culprit's future
//! is dropped by the executor, its RAII guards release the lock on the
//! way down, and the convoy dissolves. No cooperative cancellation token
//! exists anywhere in this substrate.
//!
//! Run with: `cargo run --release --example async_overload`

use std::time::Duration;

use atropos_async::run;
use atropos_live::{live_atropos_config, ControlMode, LiveConfig, LiveReport};

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn print_report(label: &str, r: &LiveReport) {
    println!("== {label} ==");
    println!(
        "  victims: {} completed | p50 {:7.2} ms | p99 {:8.2} ms | max {:8.2} ms",
        r.victim.count,
        ms(r.victim.p50_ns),
        ms(r.victim.p99_ns),
        ms(r.victim.max_ns),
    );
    println!(
        "  culprits: {} started, {} aborted (future dropped) | ticks: {} | cancels issued: {}",
        r.culprits_started, r.culprits_canceled, r.ticks, r.runtime.cancel.issued,
    );
    match r.time_to_cancel {
        Some(ttc) => println!("  time to abort: {:.0} ms", ttc.as_secs_f64() * 1e3),
        None => println!("  time to abort: - (no abort delivered)"),
    }
    println!();
}

fn main() {
    let cfg = LiveConfig {
        run_for: Duration::from_millis(1800),
        culprit_after: Duration::from_millis(500),
        culprit_hold: Duration::from_millis(1200),
        ..LiveConfig::default()
    };

    println!(
        "serving ~{:.0} req/s on a {}-slot async task pool; lock-hog culprit at {:?} holding for {:?}\n",
        1.0 / cfg.interarrival.as_secs_f64(),
        cfg.workers,
        cfg.culprit_after,
        cfg.culprit_hold,
    );

    let baseline = run(cfg.clone(), ControlMode::NoControl);
    print_report("no control (convoy runs to completion)", &baseline);

    let controlled = run(cfg, ControlMode::Atropos(live_atropos_config()));
    print_report("atropos (supervisor ticks every 50 ms)", &controlled);

    if controlled.victim.p99_ns > 0 {
        println!(
            "victim p99 improvement: {:.1}x ({:.0} ms -> {:.0} ms)",
            baseline.victim.p99_ns as f64 / controlled.victim.p99_ns as f64,
            ms(baseline.victim.p99_ns),
            ms(controlled.victim.p99_ns),
        );
    }
}
