//! The paper's headline scenario (case c1): a MySQL backup stuck behind a
//! long table scan convoys every other request.
//!
//! Runs the simulated database three ways — uncontrolled, under Protego
//! (victim shedding), and under Atropos (culprit cancellation) — and
//! prints the throughput/latency/drop comparison of Figure 4.
//!
//! Run with: `cargo run --release --example backup_convoy`

use atropos_metrics::Table;
use atropos_scenarios::{all_cases, calibrate, run_with, ControllerKind, RunConfig};

fn main() {
    let case = all_cases().into_iter().next().expect("c1");
    println!("case {}: {}\n", case.id, case.trigger);

    let rc = RunConfig::full(42);
    println!("calibrating baseline (no noisy classes, no control)…");
    let baseline = calibrate(&case, &rc);
    println!(
        "baseline: {:.1} kQPS, p99 {:.2} ms; derived SLO = {:.2} ms\n",
        baseline.summary.throughput_qps() / 1000.0,
        baseline.summary.p99_ns as f64 / 1e6,
        baseline.slo_ns as f64 / 1e6
    );

    let mut table = Table::new(vec![
        "controller",
        "norm tput",
        "norm p99",
        "drop rate",
        "cancels",
    ]);
    for kind in [
        ControllerKind::None,
        ControllerKind::Protego,
        ControllerKind::Atropos,
    ] {
        println!("running under {}…", kind.label());
        let r = run_with(&case, kind, &rc, &baseline);
        table.row(vec![
            kind.label().into(),
            format!("{:.2}", r.normalized.throughput),
            format!("{:.2}", r.normalized.p99),
            format!("{:.3}%", r.normalized.drop_rate * 100.0),
            r.summary.canceled.to_string(),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "Atropos cancels the scan (and, if needed, the backup) instead of\n\
         shedding thousands of victims — throughput stays at baseline with\n\
         a drop rate orders of magnitude below Protego's."
    );
}
