//! Quickstart: Atropos in a real multi-threaded program (no simulator).
//!
//! A pool of worker threads serves fast requests that briefly use a shared
//! "table lock" resource; one hog thread grabs the same resource and sits
//! on it. The Atropos runtime — fed by the Figure 6 tracing calls and
//! ticked from a control thread — detects the lock overload, identifies
//! the hog as the culprit, and invokes the registered cancellation
//! initiator, which sets the hog's cancel flag (the application-level
//! checkpoint pattern of §2.4).
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atropos::{AtroposConfig, AtroposRuntime, ResourceType};
use atropos_sim::{Clock, SystemClock};
use parking_lot::Mutex;

const HOG_KEY: u64 = 999;

fn main() {
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let mut cfg = AtroposConfig::default().with_slo_ns(5_000_000); // 5 ms SLO
    cfg.cancel_min_interval_ns = 20_000_000;
    let rt = Arc::new(AtroposRuntime::new(cfg, clock));
    let lock_rsc = rt.register_resource("table_lock", ResourceType::Lock);

    // The application's cancellation initiator: set the hog's cancel flag
    // (its `sql_kill` analog). Real applications map key -> session here.
    let hog_cancel = Arc::new(AtomicBool::new(false));
    {
        let flag = hog_cancel.clone();
        rt.set_cancel_action(move |key| {
            println!("[atropos] cancel initiator invoked for task key {}", key.0);
            if key.0 == HOG_KEY {
                flag.store(true, Ordering::SeqCst);
            }
        });
    }

    // The shared application resource.
    let table = Arc::new(Mutex::new(()));
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Fast workers: lock briefly, do 100 µs of "work", report to Atropos.
        for w in 0..4u64 {
            let rt = rt.clone();
            let table = table.clone();
            let stop = stop.clone();
            let served = served.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let task = rt.create_cancel(Some(w));
                    rt.unit_started(task);
                    {
                        rt.slow_by_resource(task, lock_rsc, 1);
                        let _g = table.lock();
                        rt.get_resource(task, lock_rsc, 1);
                        std::thread::sleep(Duration::from_micros(100));
                        rt.free_resource(task, lock_rsc, 1);
                    }
                    rt.unit_finished(task);
                    rt.free_cancel(task);
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The hog: takes the lock and holds it, polling its cancel flag at
        // checkpoints — the cancellation pattern of §2.4.
        {
            let rt = rt.clone();
            let table = table.clone();
            let flag = hog_cancel.clone();
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(300));
                let task = rt.create_cancel(Some(HOG_KEY));
                rt.unit_started(task);
                rt.report_progress(task, 1, 100); // barely started
                println!("[hog] acquiring the table lock…");
                rt.slow_by_resource(task, lock_rsc, 1);
                let guard = table.lock();
                rt.get_resource(task, lock_rsc, 1);
                let t0 = Instant::now();
                while !flag.load(Ordering::SeqCst) && t0.elapsed() < Duration::from_secs(10) {
                    std::thread::sleep(Duration::from_millis(5)); // checkpoint
                }
                drop(guard);
                rt.free_resource(task, lock_rsc, 1);
                if flag.load(Ordering::SeqCst) {
                    println!(
                        "[hog] canceled after {:?}; rolling back and releasing the lock",
                        t0.elapsed()
                    );
                } else {
                    println!("[hog] finished uncancelled (?)");
                }
                rt.free_cancel(task);
            });
        }

        // The control loop: tick the detector every 20 ms.
        {
            let rt = rt.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                    let outcome = rt.tick();
                    if !matches!(outcome, atropos::runtime::TickOutcome::Idle) {
                        println!("[atropos] tick -> {outcome:?}");
                    }
                }
            });
        }

        std::thread::sleep(Duration::from_secs(2));
        stop.store(true, Ordering::SeqCst);
    });

    let stats = rt.stats();
    println!(
        "served {} requests; cancellations issued: {}; hog canceled: {}",
        served.load(Ordering::Relaxed),
        stats.cancel.issued,
        hog_cancel.load(Ordering::SeqCst)
    );
    assert!(
        hog_cancel.load(Ordering::SeqCst),
        "the hog should have been canceled"
    );
}
