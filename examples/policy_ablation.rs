//! The §5.4 policy ablation on a handful of cases: multi-objective
//! (Algorithm 1) vs the single-resource greedy heuristic vs current-usage
//! gains.
//!
//! Run with: `cargo run --release --example policy_ablation`

use atropos_metrics::Table;
use atropos_scenarios::{all_cases, calibrate, run_with, ControllerKind, RunConfig};

fn main() {
    let picks = ["c1", "c5", "c11", "c12"];
    let cases: Vec<_> = all_cases()
        .into_iter()
        .filter(|c| picks.contains(&c.id))
        .collect();
    let rc = RunConfig::full(42);
    let kinds = [
        ControllerKind::Atropos,
        ControllerKind::AtroposHeuristic,
        ControllerKind::AtroposCurrentUsage,
    ];
    let mut table = Table::new(vec![
        "case",
        "multi-objective",
        "heuristic",
        "current-usage",
    ]);
    for case in &cases {
        println!("running {} under all three policies…", case.id);
        let baseline = calibrate(case, &rc);
        let mut row = vec![case.id.to_string()];
        for kind in kinds {
            let r = run_with(case, kind, &rc, &baseline);
            row.push(format!(
                "{:.2} / p99 {:.1}x",
                r.normalized.throughput, r.normalized.p99
            ));
        }
        table.row(row);
    }
    println!("\nnormalized throughput / normalized p99 per policy:\n");
    println!("{}", table.render());
}
