//! Buffer-pool thrashing (case c5 / the Figure 2 mechanism): rare dump
//! queries sweep the whole dataset through the pool, evicting the hot
//! working set, so every lightweight query starts missing.
//!
//! Shows the per-window throughput timeline with and without Atropos, so
//! you can watch the dump hit at ~2.5 s and the recovery (or lack of it).
//!
//! Run with: `cargo run --release --example cache_thrash`

use atropos::AtroposConfig;
use atropos_app::apps::minidb::{MiniDb, MiniDbConfig};
use atropos_app::glue::AtroposController;
use atropos_app::ids::ClassId;
use atropos_app::server::{ServerMetrics, SimServer};
use atropos_app::workload::WorkloadSpec;
use atropos_app::NoControl;
use atropos_sim::SimTime;

fn workload(db: &MiniDb) -> WorkloadSpec {
    WorkloadSpec::new(
        vec![
            db.point_select(0.65),
            db.row_update(0.35),
            db.dump(0.0, 120_000), // ~2 GB sweep
        ],
        8_000.0,
    )
    .inject(SimTime::from_millis(2_500), ClassId(2))
    .inject(SimTime::from_millis(5_500), ClassId(2))
}

fn timeline(label: &str, m: &ServerMetrics) {
    println!(
        "\n{label}: completed={} canceled={} dropped={}",
        m.completed, m.canceled, m.dropped
    );
    println!("  t(s)  tput(kQPS)  p99(ms)");
    for w in m
        .series
        .windows()
        .iter()
        .filter(|w| w.start % 500_000_000 == 0)
    {
        // One row per 0.5 s (windows are 100 ms wide).
        let t = w.start as f64 / 1e9;
        if t < 1.0 {
            continue;
        }
        println!(
            "  {:4.1}  {:9.1}  {:7.2}",
            t,
            w.throughput_qps(100_000_000) / 1000.0,
            w.latency.p99() as f64 / 1e6
        );
    }
}

fn main() {
    let duration = SimTime::from_secs(9);
    let warmup = SimTime::from_secs(1);

    let db = MiniDb::new(MiniDbConfig::default());
    let uncontrolled = SimServer::new(db.server_config(), workload(&db), Box::new(NoControl))
        .run(duration, warmup);
    timeline("uncontrolled", &uncontrolled);

    let db = MiniDb::new(MiniDbConfig::default());
    let mitigated = SimServer::new_with(db.server_config(), workload(&db), |clock, groups| {
        Box::new(AtroposController::new(
            AtroposConfig::default().with_slo_ns(3_000_000),
            clock,
            groups,
            true,
        ))
    })
    .run(duration, warmup);
    timeline("with atropos", &mitigated);

    println!(
        "\nthroughput kept: uncontrolled {:.0}%, atropos {:.0}%",
        uncontrolled.completed as f64 / mitigated.completed.max(1) as f64 * 100.0,
        100.0
    );
}
